"""Experiment E9 — the Section 4.2/5 cycle-time analysis.

Regenerates the paper's closing argument: the delay-model anchors (+18% at
0.35um, +82% at 0.18um for 4->8 issue), the 20% break-even for a 25%
slowdown, and the per-benchmark net run-time outcome at both feature
sizes.
"""

import pytest

from repro.experiments.cycle_time import (
    format_cycle_time_analysis,
    run_cycle_time_analysis,
)
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.timing.analysis import break_even_clock_reduction, format_cycle_time_report
from repro.timing.palacharla import (
    MachineShape,
    TECH_018,
    TECH_035,
    calibrated_technologies,
    width_penalty,
)

from conftest import BENCH_TRACE_LENGTH


def test_delay_model_anchors(benchmark):
    """Calibration reproduces the published 18%/82% width penalties."""

    def run():
        techs = calibrated_technologies()
        return {name: width_penalty(t) for name, t in techs.items()}

    penalties = benchmark(run)
    assert penalties["0.35um"] == pytest.approx(0.18, abs=0.01)
    assert penalties["0.18um"] == pytest.approx(0.82, abs=0.01)


def test_break_even_worked_example(benchmark):
    """Section 4.2: 25% slowdown <-> 20% clock reduction."""
    value = benchmark(lambda: break_even_clock_reduction(25.0))
    assert value == pytest.approx(20.0)
    print("\n" + format_cycle_time_report())


def test_net_performance_analysis(benchmark):
    """The paper's conclusion: no net win at 0.35um, clear win at 0.18um."""

    def run():
        table2 = run_table2(
            ["compress", "ora", "tomcatv"],
            EvaluationOptions(trace_length=BENCH_TRACE_LENGTH // 3),
        )
        return run_cycle_time_analysis(table2)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_cycle_time_analysis(report))
    assert report.wins_at_018 >= report.wins_at_035
    # At 0.18um the multicluster machine wins on most benchmarks.
    assert report.wins_at_018 >= 2
    # Every benchmark gains more (or loses less) at 0.18um than 0.35um.
    for row in report.rows:
        assert row.net_018 > row.net_035
