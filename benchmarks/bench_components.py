"""Component micro-benchmarks (performance tracking, not a paper artifact).

Times the hot substrate components in isolation: the data cache, the
McFarling predictor, web construction, graph-colouring allocation, and
trace generation.  Regressions here show up as slow experiment turnaround.
"""

import random

from repro.compiler.interference import InterferenceGraph
from repro.compiler.pipeline import compile_program
from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.registers import RegisterAssignment
from repro.uarch.branch_predictor import McFarlingPredictor
from repro.uarch.caches import Cache
from repro.uarch.config import CacheConfig, PredictorConfig
from repro.workloads.spec92 import build_compress
from repro.workloads.tracegen import TraceGenerator


def test_cache_access_throughput(benchmark):
    cache = Cache(CacheConfig(), 16)
    rng = random.Random(1)
    addresses = [rng.randrange(0, 1 << 22) & ~0x7 for _ in range(20_000)]

    def run():
        for t, a in enumerate(addresses):
            cache.access(a, t)
        return cache.stats.accesses

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_predictor_throughput(benchmark):
    predictor = McFarlingPredictor(PredictorConfig())
    rng = random.Random(2)
    branches = [(rng.randrange(0, 1 << 16) << 2, rng.random() < 0.7) for _ in range(20_000)]

    def run():
        for tag, (pc, taken) in enumerate(branches):
            predictor.predict(pc, taken, tag)
            predictor.resolve(tag)
        return predictor.stats.predictions

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_web_construction_on_gcc_sized_program(benchmark):
    workload = build_compress()
    program = workload.program

    def run():
        lrs = build_live_ranges(program)
        designate_global_candidates(lrs)
        return len(lrs)

    benchmark(run)


def test_interference_graph_build(benchmark):
    workload = build_compress()
    program = workload.program
    lrs = build_live_ranges(program)

    def run():
        return InterferenceGraph.build(program, lrs).edge_count()

    benchmark(run)


def test_full_compile_native(benchmark):
    workload = build_compress()

    def run():
        return compile_program(
            workload.program, RegisterAssignment.single_cluster()
        ).machine.instruction_count()

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_trace_generation_throughput(benchmark):
    workload = build_compress()
    compiled = compile_program(workload.program, RegisterAssignment.single_cluster())
    generator = TraceGenerator(
        compiled.machine, workload.streams, workload.behaviors, seed=1
    )

    def run():
        return len(generator.generate(30_000))

    benchmark.pedantic(run, rounds=2, iterations=1)
