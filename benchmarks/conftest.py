"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one paper artifact (see DESIGN.md §5
for the experiment index).  Benchmarks use reduced trace lengths so the
whole suite completes in minutes; the ``repro.experiments`` modules expose
the same harnesses with the full-size defaults.
"""

import pytest

#: Trace length used by benchmark-scale simulations.
BENCH_TRACE_LENGTH = 15_000


@pytest.fixture(scope="session")
def bench_trace_length():
    return BENCH_TRACE_LENGTH
