"""Experiments E4-E7 — Figures 2-5: the dual-execution scenario timelines.

Each benchmark regenerates one figure's execution timeline and asserts the
protocol orderings the figure depicts.
"""

from repro.core.distribution import Scenario
from repro.experiments.scenarios import SCENARIOS, format_timeline, run_scenario


def test_figure2_operand_forward(benchmark):
    timeline = benchmark.pedantic(lambda: run_scenario(2), rounds=1, iterations=1)
    print("\n" + format_timeline(timeline))
    assert timeline.plan_scenario is Scenario.DUAL_OPERAND
    assert timeline.issue_cycle("slave") < timeline.issue_cycle("master")
    assert timeline.issue_cycle("master") == timeline.issue_cycle("slave") + 1


def test_figure3_result_forward(benchmark):
    timeline = benchmark.pedantic(lambda: run_scenario(3), rounds=1, iterations=1)
    print("\n" + format_timeline(timeline))
    assert timeline.plan_scenario is Scenario.DUAL_RESULT
    assert timeline.issue_cycle("slave") == timeline.issue_cycle("master") + 1


def test_figure4_global_destination(benchmark):
    timeline = benchmark.pedantic(lambda: run_scenario(4), rounds=1, iterations=1)
    print("\n" + format_timeline(timeline))
    assert timeline.plan_scenario is Scenario.DUAL_GLOBAL
    assert timeline.completion_cycle("slave") >= timeline.completion_cycle("master")


def test_figure5_operand_and_global(benchmark):
    timeline = benchmark.pedantic(lambda: run_scenario(5), rounds=1, iterations=1)
    print("\n" + format_timeline(timeline))
    assert timeline.plan_scenario is Scenario.DUAL_OPERAND_GLOBAL
    slave_issues = [c for c, r, _cl in timeline.issues if r == "slave"]
    assert len(slave_issues) == 2  # operand phase + result phase


def test_all_scenarios_sweep(benchmark):
    def run():
        return [run_scenario(n) for n in sorted(SCENARIOS)]

    timelines = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [t.plan_scenario for t in timelines] == [
        Scenario.SINGLE,
        Scenario.DUAL_OPERAND,
        Scenario.DUAL_RESULT,
        Scenario.DUAL_GLOBAL,
        Scenario.DUAL_OPERAND_GLOBAL,
    ]
