"""Experiment E8 — Figure 6: the local scheduler's worked example.

Regenerates the paper's block-traversal and live-range-assignment orders
and times the local scheduler on the Figure 6 CFG and on a larger
generated program (partitioner throughput).
"""

from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.partition.local import LocalScheduler
from repro.experiments.figure6 import (
    PAPER_ASSIGNMENT_ORDER,
    PAPER_BLOCK_ORDER,
    build_figure6_program,
    run_figure6,
)
from repro.workloads.spec92 import build_gcc1


def test_figure6_orders(benchmark):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    print(f"\nblocks: {result.block_order}")
    print(f"ranges: {result.assignment_order}")
    assert result.block_order == PAPER_BLOCK_ORDER
    assert result.assignment_order == PAPER_ASSIGNMENT_ORDER
    assert result.matches_paper


def test_local_scheduler_throughput_small(benchmark):
    """Partitioning the Figure 6 program (latency tracking)."""
    program = build_figure6_program()
    lrs = build_live_ranges(program)
    designate_global_candidates(lrs)

    def run():
        return LocalScheduler().partition(program, lrs)

    partition = benchmark(run)
    assert len(partition) == len(PAPER_ASSIGNMENT_ORDER)


def test_local_scheduler_throughput_large(benchmark):
    """Partitioning a gcc-sized program (~1600 static instructions)."""
    workload = build_gcc1()
    program = workload.program
    lrs = build_live_ranges(program)
    designate_global_candidates(lrs)

    def run():
        return LocalScheduler().partition(program, lrs)

    partition = benchmark.pedantic(run, rounds=1, iterations=1)
    assert partition
