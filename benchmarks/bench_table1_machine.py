"""Experiment E1 — Table 1: the machine configurations.

Table 1 is configuration, not results; this bench drives micro-workloads
that make each configured limit *observable* in cycle counts — issue
widths, per-class limits, functional-unit latencies, and the unpipelined
divider — and times the simulator on them.
"""

from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import fp_reg, int_reg
from repro.ir.machine_program import MachineProgram
from repro.uarch.config import (
    default_assignment_for,
    dual_cluster_config,
    single_cluster_config,
)
from repro.uarch.processor import Processor
from repro.workloads.trace import DynamicInstruction


def _loop_trace(instructions, repetitions):
    machine = MachineProgram("t1")
    block = machine.add_block("b0")
    for instr in instructions:
        block.add(instr)
    machine.assign_pcs()
    pairs = list(machine.all_instructions())
    trace = []
    for _ in range(repetitions):
        for instr, meta in pairs:
            address = 0x9000 if instr.opcode.is_memory else None
            trace.append(DynamicInstruction(instr, meta, len(trace), address))
    return trace


def _run(trace, config):
    return Processor(config, default_assignment_for(config)).run(trace)


def _steady_cycles_per_group(instructions, config, repetitions=400):
    result = _run(_loop_trace(instructions, repetitions), config)
    return result.cycles / repetitions


def test_integer_issue_width_single_vs_cluster(benchmark):
    """8 independent adds: 1 issue group at 8-wide, 2 at 4-wide."""
    adds = [
        MachineInstruction(Opcode.ADDQ, dest=int_reg(2 * i), srcs=(int_reg(28), int_reg(28)))
        for i in range(8)
    ]

    def run():
        single = _steady_cycles_per_group(adds, single_cluster_config())
        # All even destinations: everything lands on cluster 0 of the dual
        # machine, exposing the per-cluster width of 4.
        dual = _steady_cycles_per_group(adds, dual_cluster_config())
        return single, dual

    single, dual = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0.9 < single <= 1.6
    assert dual >= 2 * single * 0.8


def test_fp_issue_limit(benchmark):
    """Table 1: at most 4 FP per cycle on the 8-way machine."""
    fps = [
        MachineInstruction(Opcode.ADDT, dest=fp_reg(2 * i), srcs=(fp_reg(28), fp_reg(28)))
        for i in range(8)
    ]

    def run():
        return _steady_cycles_per_group(fps, single_cluster_config())

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles >= 1.9  # needs two issue groups


def test_functional_unit_latencies(benchmark):
    """Chained ops are spaced by their Table 1 latencies."""
    def run():
        chain_mul = [
            MachineInstruction(Opcode.MULQ, dest=int_reg(0), srcs=(int_reg(0), int_reg(0)))
        ]
        chain_fp = [
            MachineInstruction(Opcode.ADDT, dest=fp_reg(0), srcs=(fp_reg(0), fp_reg(0)))
        ]
        mul = _steady_cycles_per_group(chain_mul, single_cluster_config())
        fp = _steady_cycles_per_group(chain_fp, single_cluster_config())
        return mul, fp

    mul, fp = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 5.9 < mul < 6.5   # integer multiply: 6
    assert 2.9 < fp < 3.5    # FP other: 3


def test_unpipelined_divider(benchmark):
    """Back-to-back independent divides serialize on the divider."""
    divs = [
        MachineInstruction(Opcode.DIVS, dest=fp_reg(2 * i), srcs=(fp_reg(28), fp_reg(28)))
        for i in range(2)
    ]

    def run():
        # Dual cluster has one divider per cluster; both divides land on
        # cluster 0 (even destinations).
        return _steady_cycles_per_group(divs, dual_cluster_config(), repetitions=100)

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles >= 15  # two 8-cycle divides through one divider


def test_simulator_throughput(benchmark):
    """Raw simulation speed on a simple integer stream (tracking metric)."""
    adds = [
        MachineInstruction(Opcode.ADDQ, dest=int_reg(2 * (i % 12)), srcs=(int_reg(28), int_reg(28)))
        for i in range(12)
    ]
    trace = _loop_trace(adds, 500)

    def run():
        return _run(trace, single_cluster_config()).cycles

    benchmark(run)
