"""Experiment E10 — the 4-way companion evaluation plus design ablations.

Section 4 of the paper: "the evaluation was done for both four-way and
eight-way issue processors" (only the 8-way numbers are printed).  This
bench regenerates the 4-way comparison and the DESIGN.md §6 ablations:
transfer-buffer depth and the imbalance threshold.
"""

from repro.experiments.ablations import (
    run_buffer_depth_ablation,
    run_issue_width_ablation,
    run_threshold_ablation,
)
from repro.workloads.spec92 import build_compress, build_su2cor

from conftest import BENCH_TRACE_LENGTH

TRACE = BENCH_TRACE_LENGTH // 2


def test_issue_width_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_issue_width_ablation(build_su2cor, trace_length=TRACE),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    assert [p.label for p in result.points] == ["8-way vs 2x4-way", "4-way vs 2x2-way"]
    # Both machine pairs run to completion and produce finite ratios.
    for point in result.points:
        assert -100 < point.pct_none < 100
        assert -100 < point.pct_local < 100


def test_buffer_depth_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_buffer_depth_ablation(
            build_compress, depths=(2, 8, 32), trace_length=TRACE
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    shallow, paper, deep = result.points
    # Deeper buffers never hurt; very shallow buffers never help.
    assert deep.pct_local >= shallow.pct_local - 1.0
    assert deep.replays <= shallow.replays


def test_imbalance_threshold_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_threshold_ablation(
            build_compress, thresholds=(0, 2, 16), trace_length=TRACE
        ),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    # Threshold changes move the dual-distribution rate.
    fractions = {p.label: p.dual_fraction for p in result.points}
    assert fractions["threshold=16"] <= fractions["threshold=0"] + 0.02
