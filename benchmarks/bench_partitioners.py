"""Partitioner comparison (DESIGN.md §6 ablation).

Races the paper's local scheduler against the alternative live-range
partitioners on one integer and one FP benchmark: the affinity-graph
Kernighan-Lin partitioner (globally informed, balance-blind at the
instruction level), round-robin, and random.  The local scheduler's edge
is the paper's core compiler claim.
"""

from repro.experiments.ablations import run_partitioner_ablation
from repro.workloads.spec92 import build_compress, build_su2cor

TRACE = 8_000


def _best_is_competitive(result):
    """The local scheduler must be at or near the best observed point."""
    best = max(p.pct_local for p in result.points)
    local = next(p for p in result.points if p.label == "local")
    return local.pct_local >= best - 5.0


def test_partitioners_on_compress(benchmark):
    result = benchmark.pedantic(
        lambda: run_partitioner_ablation(build_compress, trace_length=TRACE),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    assert [p.label for p in result.points] == [
        "local",
        "affinity-kl",
        "round-robin",
        "random",
    ]
    assert _best_is_competitive(result)


def test_partitioners_on_su2cor(benchmark):
    result = benchmark.pedantic(
        lambda: run_partitioner_ablation(build_su2cor, trace_length=TRACE),
        rounds=1,
        iterations=1,
    )
    print("\n" + result.format())
    # Balance-blind baselines never beat the local scheduler by much on
    # the high-ILP benchmark, where balance is everything.
    assert _best_is_competitive(result)


def test_local_scheduler_cuts_duals_most(benchmark):
    def run():
        return run_partitioner_ablation(build_compress, trace_length=TRACE // 2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    fractions = {p.label: p.dual_fraction for p in result.points}
    # Random/round-robin scatter related ranges; the informed partitioners
    # produce materially less dual-distribution.
    assert fractions["local"] < fractions["random"]
    assert fractions["affinity-kl"] < fractions["random"]
