"""Experiment E2 — Table 2: speedup ratios for the six SPEC92 stand-ins.

Regenerates the paper's headline table at benchmark scale (reduced trace
length) and checks the reproduction's target *shape*:

* the dual-cluster machine costs cycles on almost every benchmark (the
  ratios are slowdowns);
* the local scheduler reduces the slowdown relative to the unscheduled
  native binary on the benchmarks the paper improves (all but ora);
* the local scheduler reduces dual-distribution everywhere.

``repro.experiments.table2`` runs the same harness at full scale.
"""

import pytest

from repro.experiments.harness import EvaluationOptions, evaluate_workload
from repro.experiments.table2 import format_table2, run_table2
from repro.workloads.spec92 import SPEC92

from conftest import BENCH_TRACE_LENGTH

#: Benchmarks the paper's local scheduler improves (all but ora).
IMPROVED = ["compress", "doduc", "gcc1", "su2cor", "tomcatv"]


@pytest.mark.parametrize("name", sorted(SPEC92))
def test_table2_row(benchmark, name):
    """One row of Table 2."""

    def run():
        workload = SPEC92[name]()
        return evaluate_workload(
            workload, EvaluationOptions(trace_length=BENCH_TRACE_LENGTH)
        )

    evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n{name}: none={evaluation.pct_none:+.1f}% local={evaluation.pct_local:+.1f}% "
        f"(paper: see PAPER_TABLE2)"
    )
    # Every run retires the whole trace.
    for sim in (evaluation.single, evaluation.dual_none, evaluation.dual_local):
        assert sim.stats.instructions == BENCH_TRACE_LENGTH
    # The local scheduler always cuts dual-distribution sharply.
    assert (
        evaluation.dual_local.stats.dual_fraction
        < evaluation.dual_none.stats.dual_fraction
    )
    if name in IMPROVED:
        # Shape: rescheduling must not be materially worse than native.
        assert evaluation.pct_local >= evaluation.pct_none - 3.0


def test_table2_full(benchmark):
    """The whole table in one shot (printed in paper format)."""

    def run():
        return run_table2(options=EvaluationOptions(trace_length=BENCH_TRACE_LENGTH // 3))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + format_table2(result, detailed=True))
    assert len(result.rows) == 6
    improved = sum(1 for r in result.rows if r.pct_local >= r.pct_none)
    assert improved >= 4  # the local scheduler wins on most benchmarks
