"""Tests of the Figure 2-5 scenario timelines (experiments E4-E7)."""

import pytest

from repro.experiments.scenarios import (
    SCENARIOS,
    format_timeline,
    run_all_scenarios,
    run_scenario,
)


@pytest.fixture(scope="module")
def timelines():
    return {n: run_scenario(n) for n in SCENARIOS}


class TestClassification:
    def test_all_scenarios_classified_as_expected(self, timelines):
        for number, timeline in timelines.items():
            assert timeline.plan_scenario is SCENARIOS[number].expected

    def test_scenario1_single_copy(self, timelines):
        t = timelines[1]
        assert t.issue_cycle("master") is not None
        assert t.issue_cycle("slave") is None


class TestFigure2OperandForward:
    def test_slave_issues_before_master(self, timelines):
        t = timelines[2]
        assert t.issue_cycle("slave") < t.issue_cycle("master")

    def test_master_one_cycle_after_slave(self, timelines):
        """Figure 2's timing: inter-copy dependence removed at slave
        issue, master issues the next cycle."""
        t = timelines[2]
        assert t.issue_cycle("master") == t.issue_cycle("slave") + 1

    def test_master_completes_last(self, timelines):
        t = timelines[2]
        assert t.completion_cycle("master") >= t.completion_cycle("slave")


class TestFigure3ResultForward:
    def test_master_issues_first(self, timelines):
        t = timelines[3]
        assert t.issue_cycle("master") < t.issue_cycle("slave")

    def test_slave_one_cycle_after_master_for_one_cycle_op(self, timelines):
        """Figure 3: 'the slave copy can be issued as soon as one cycle
        after the master copy is issued' for one-cycle-latency adds."""
        t = timelines[3]
        assert t.issue_cycle("slave") == t.issue_cycle("master") + 1

    def test_slave_writes_after_master_done(self, timelines):
        t = timelines[3]
        assert t.completion_cycle("slave") >= t.completion_cycle("master")


class TestFigure4GlobalDest:
    def test_same_protocol_as_figure3(self, timelines):
        t = timelines[4]
        assert t.issue_cycle("master") < t.issue_cycle("slave")

    def test_both_copies_complete(self, timelines):
        t = timelines[4]
        assert t.completion_cycle("master") is not None
        assert t.completion_cycle("slave") is not None


class TestFigure5OperandAndGlobal:
    def test_slave_issues_twice(self, timelines):
        """The slave forwards the operand, suspends, and wakes to write
        the global copy (Figure 5)."""
        t = timelines[5]
        issues = [(c, r) for c, r, _cl in t.issues if r == "slave"]
        assert len(issues) == 2

    def test_slave_operand_phase_before_master(self, timelines):
        t = timelines[5]
        first_slave = t.issue_cycle("slave", first=True)
        assert first_slave < t.issue_cycle("master")

    def test_slave_result_phase_after_master_issue(self, timelines):
        t = timelines[5]
        second_slave = t.issue_cycle("slave", first=False)
        assert second_slave > t.issue_cycle("master")

    def test_slave_completes_after_master(self, timelines):
        t = timelines[5]
        assert t.completion_cycle("slave") > t.completion_cycle("master")


class TestFormatting:
    def test_format_mentions_figure(self, timelines):
        text = format_timeline(timelines[2])
        assert "Figure 2" in text
        assert "DUAL_OPERAND" in text

    def test_run_all(self):
        all_timelines = run_all_scenarios()
        assert len(all_timelines) == 5
        assert [t.spec.number for t in all_timelines] == [1, 2, 3, 4, 5]
