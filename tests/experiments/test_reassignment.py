"""Tests for the dynamic register reassignment extension (Section 6)."""

import pytest

from repro.core.registers import RegisterAssignment
from repro.experiments.reassignment import (
    build_two_phase_trace,
    format_reassignment_result,
    run_reassignment_demo,
)
from repro.uarch.config import default_assignment_for, dual_cluster_config
from repro.uarch.processor import Processor


@pytest.fixture(scope="module")
def result():
    return run_reassignment_demo(phase_length=1500)


class TestDemo:
    def test_dynamic_beats_both_statics(self, result):
        assert result.dynamic_wins

    def test_exactly_one_reassignment(self, result):
        assert result.reassignments == 1

    def test_switch_has_a_cost(self, result):
        assert result.reassignment_stall_cycles > 0

    def test_statics_pay_dual_distribution(self, result):
        assert result.dual_even_odd > 0.4
        assert result.dual_low_high > 0.4
        assert result.dual_dynamic < 0.01

    def test_format(self, result):
        text = format_reassignment_result(result)
        assert "dynamic wins: True" in text


class TestMechanism:
    def test_reassignment_drains_first(self):
        """The switch must not happen while older work is in flight: every
        instruction still retires exactly once."""
        trace = build_two_phase_trace(600, dynamic=True)
        config = dual_cluster_config()
        processor = Processor(config, RegisterAssignment.even_odd_dual())
        res = processor.run(trace)
        assert res.stats.instructions == len(trace)
        assert res.stats.reassignments == 1

    def test_assignment_actually_switches(self):
        trace = build_two_phase_trace(400, dynamic=True)
        config = dual_cluster_config()
        processor = Processor(config, RegisterAssignment.even_odd_dual())
        processor.run(trace)
        from repro.isa.registers import int_reg

        # After the run, the live assignment is low/high.
        assert processor.assignment.home_cluster(int_reg(1)) == 0
        assert processor.assignment.home_cluster(int_reg(17)) == 1

    def test_no_hint_no_switch(self):
        trace = build_two_phase_trace(400, dynamic=False)
        config = dual_cluster_config()
        processor = Processor(config, default_assignment_for(config))
        res = processor.run(trace)
        assert res.stats.reassignments == 0

    def test_same_assignment_hint_still_charged(self):
        """Hinting a switch to a *different* object with identical maps is
        still a switch (the hardware can't diff them for free) — but the
        machine keeps working."""
        trace = build_two_phase_trace(300, dynamic=False)
        trace[len(trace) // 2].reassign = RegisterAssignment.even_odd_dual()
        config = dual_cluster_config()
        processor = Processor(config, RegisterAssignment.even_odd_dual())
        res = processor.run(trace)
        assert res.stats.instructions == len(trace)
        assert res.stats.reassignments == 1
