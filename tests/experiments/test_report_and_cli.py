"""Tests for the report generator and the CLI plumbing."""

import pytest

from repro.cli import build_parser
from repro.experiments.report import generate_report, write_report


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(trace_length=2500, benchmarks=["ora"])

    def test_all_artifacts_present(self, report):
        assert len(report.table2.rows) == 1
        assert len(report.scenarios) == 5
        assert report.figure6.matches_paper
        assert report.cycle_time.rows

    def test_markdown_sections(self, report):
        md = report.markdown
        assert "# Multicluster Architecture" in md
        assert "Table 2" in md
        assert "Figure 6" in md
        assert "Cycle-time analysis" in md

    def test_write_report(self, tmp_path):
        path = tmp_path / "REPORT.md"
        report = write_report(str(path), trace_length=2000, benchmarks=["ora"])
        assert path.exists()
        assert path.read_text() == report.markdown


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        for command in ("table2", "scenarios", "figure6", "cycle-time", "ablations", "report"):
            args = parser.parse_args([command] if command != "ablations" else [command])
            assert args.command == command

    def test_table2_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table2", "--trace-length", "5000", "--benchmarks", "ora", "gcc1"]
        )
        assert args.trace_length == 5000
        assert args.benchmarks == ["ora", "gcc1"]

    def test_ablation_sweep_choices_validated(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["ablations", "--sweeps", "bogus"])

    def test_figure6_command_runs(self, capsys):
        from repro.cli import main

        main(["figure6"])
        out = capsys.readouterr().out
        assert "matches paper         : True" in out

    def test_scenarios_command_runs(self, capsys):
        from repro.cli import main

        main(["scenarios"])
        out = capsys.readouterr().out
        assert "Scenario 5" in out
