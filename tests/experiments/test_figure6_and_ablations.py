"""Tests for the Figure 6 experiment wrapper and the ablation harnesses."""

from repro.experiments.ablations import (
    run_assignment_ablation,
    run_partitioner_ablation,
)
from repro.experiments.cycle_time import (
    format_cycle_time_analysis,
    run_cycle_time_analysis,
)
from repro.experiments.figure6 import run_figure6
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    WorkloadSpec,
    generate_workload,
)


def tiny():
    spec = WorkloadSpec(
        name="tiny",
        seed=8,
        arrays=[ArraySpec("a", kind="strided", size=1 << 14)],
        loops=[LoopSpec(body_blocks=2, block_size=10, trip_count=8, arrays=("a",))],
    )
    return generate_workload(spec)


class TestFigure6Experiment:
    def test_reproduces_paper(self):
        assert run_figure6().matches_paper


class TestCycleTimeAnalysis:
    def test_analysis_from_small_table2(self):
        table2 = run_table2(["ora"], EvaluationOptions(trace_length=3000))
        report = run_cycle_time_analysis(table2)
        assert len(report.rows) == 1
        # At 0.18um the clustered machine must win for a mild slowdown.
        assert report.rows[0].net_018 > report.rows[0].net_035
        text = format_cycle_time_analysis(report)
        assert "0.18um" in text

    def test_available_reductions_ordered(self):
        table2 = run_table2(["ora"], EvaluationOptions(trace_length=2000))
        report = run_cycle_time_analysis(table2)
        assert report.available_018 > report.available_035


class TestAblations:
    def test_partitioner_ablation_runs_all(self):
        result = run_partitioner_ablation(tiny, trace_length=2500)
        labels = [p.label for p in result.points]
        assert labels == ["local", "affinity-kl", "round-robin", "random"]
        text = result.format()
        assert "local" in text

    def test_assignment_ablation(self):
        result = run_assignment_ablation(tiny, trace_length=2500)
        assert [p.label for p in result.points] == ["even/odd", "low/high"]
        # The 'none' column is the same binary on the same machine shape,
        # but a different register map changes its distribution.
        assert result.points[0].pct_none != 0 or result.points[1].pct_none != 0
