"""Tests for the queue-size and imbalance-scope ablations."""

from repro.experiments.ablations import (
    run_imbalance_scope_ablation,
    run_queue_size_ablation,
)
from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    WorkloadSpec,
    generate_workload,
)


def tiny():
    spec = WorkloadSpec(
        name="tiny",
        seed=17,
        arrays=[ArraySpec("a", kind="hotcold", size=1 << 16)],
        loops=[
            LoopSpec(
                body_blocks=2,
                block_size=8,
                trip_count=12,
                diamond_prob=0.6,
                diamond_taken_prob=0.7,
                arrays=("a",),
            )
        ],
    )
    return generate_workload(spec)


class TestQueueSizeAblation:
    def test_sweeps_all_sizes(self):
        result = run_queue_size_ablation(tiny, queue_sizes=(32, 128), trace_length=4000)
        assert [p.entries for p in result.points] == [32, 128]
        text = result.format()
        assert "dispatch-queue size" in text

    def test_same_trace_same_branch_stream(self):
        """Only the queue differs, so prediction counts match across points
        (accuracy may differ through update-at-execute staleness)."""
        result = run_queue_size_ablation(tiny, queue_sizes=(16, 256), trace_length=4000)
        assert all(p.cycles > 0 for p in result.points)
        # A 16-entry queue cannot be faster than a 256-entry one here.
        assert result.points[0].cycles >= result.points[1].cycles

    def test_disorder_grows_with_queue(self):
        result = run_queue_size_ablation(tiny, queue_sizes=(16, 256), trace_length=4000)
        assert result.points[1].issue_disorder >= result.points[0].issue_disorder


class TestImbalanceScopeAblation:
    def test_both_scopes_run(self):
        result = run_imbalance_scope_ablation(tiny, trace_length=3000)
        assert [p.label for p in result.points] == ["scope=block", "scope=prefix"]

    def test_both_scopes_complete_the_trace(self):
        result = run_imbalance_scope_ablation(tiny, trace_length=3000)
        for p in result.points:
            assert -100 < p.pct_local < 100
