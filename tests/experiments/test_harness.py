"""Tests for the experiment harness and Table 2 machinery."""

import pytest

from repro.errors import ConfigError
from repro.experiments.harness import (
    EvaluationOptions,
    evaluate_workload,
    speedup_percent,
)
from repro.experiments.table2 import Table2Result, Table2Row, format_table2, run_table2
from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    WorkloadSpec,
    generate_workload,
)


def tiny_workload():
    spec = WorkloadSpec(
        name="tiny",
        seed=3,
        arrays=[ArraySpec("a", kind="strided", size=1 << 14)],
        loops=[LoopSpec(body_blocks=2, block_size=8, trip_count=10, arrays=("a",))],
    )
    return generate_workload(spec)


class TestSpeedupPercent:
    def test_equal_cycles_zero(self):
        assert speedup_percent(100, 100) == pytest.approx(0.0)

    def test_slowdown_negative(self):
        """Table 2 footnote: 14% more cycles -> -14."""
        assert speedup_percent(100, 114) == pytest.approx(-14.0)

    def test_speedup_positive(self):
        assert speedup_percent(100, 94) == pytest.approx(6.0)


class TestEvaluateWorkload:
    @pytest.fixture(scope="class")
    def evaluation(self):
        return evaluate_workload(tiny_workload(), EvaluationOptions(trace_length=4000))

    def test_three_runs_present(self, evaluation):
        assert evaluation.single.cycles > 0
        assert evaluation.dual_none.cycles > 0
        assert evaluation.dual_local.cycles > 0

    def test_all_instructions_retired(self, evaluation):
        assert evaluation.single.stats.instructions == 4000
        assert evaluation.dual_none.stats.instructions == 4000
        assert evaluation.dual_local.stats.instructions == 4000

    def test_single_cluster_never_dual_distributes(self, evaluation):
        assert evaluation.single.stats.dual_distributed == 0

    def test_local_reduces_dual_distribution(self, evaluation):
        assert (
            evaluation.dual_local.stats.dual_fraction
            <= evaluation.dual_none.stats.dual_fraction
        )

    def test_percentages_derived_from_cycles(self, evaluation):
        expected = speedup_percent(evaluation.single.cycles, evaluation.dual_none.cycles)
        assert evaluation.pct_none == pytest.approx(expected)

    def test_compilations_attached(self, evaluation):
        assert evaluation.native_compile.partitioner_name == "none"
        assert evaluation.local_compile.partitioner_name == "local"

    def test_deterministic(self):
        e1 = evaluate_workload(tiny_workload(), EvaluationOptions(trace_length=2000))
        e2 = evaluate_workload(tiny_workload(), EvaluationOptions(trace_length=2000))
        assert e1.single.cycles == e2.single.cycles
        assert e1.dual_local.cycles == e2.dual_local.cycles


class TestTable2Formatting:
    def test_format_contains_paper_reference(self):
        row = Table2Row("compress", -20.0, -10.0, -14, 6, None)
        text = format_table2(Table2Result([row]))
        assert "compress" in text
        assert "-20.0" in text
        assert "+6" in text

    def test_run_table2_single_benchmark(self):
        result = run_table2(["ora"], EvaluationOptions(trace_length=3000))
        assert len(result.rows) == 1
        row = result.row("ora")
        assert row.paper_none == -5
        text = format_table2(result, detailed=True)
        assert "ora" in text and "dual%" in text

    def test_unknown_row_lookup_raises(self):
        result = Table2Result([])
        with pytest.raises(ConfigError):
            result.row("nope")
