"""The length-prefixed wire protocol: framing, limits, addresses."""

import socket
import struct

import pytest

from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    ProtocolError,
    encode_frame,
    parse_address,
    recv_message,
    send_message,
)
from repro.dist.worker import resolve_task_fn
from repro.errors import ConfigError


class TestFrameDecoder:
    def test_roundtrip_single_frame(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame("task", {"ticket": 7, "payload": "x"}))
        assert frames == [("task", {"ticket": 7, "payload": "x"})]

    def test_byte_at_a_time_reassembly(self):
        data = encode_frame("result", {"value": [1, 2, 3]})
        decoder = FrameDecoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i:i + 1]))
        assert frames == [("result", {"value": [1, 2, 3]})]

    def test_several_frames_in_one_feed(self):
        blob = encode_frame("ping", {}) + encode_frame("heartbeat", {"host": "h0"})
        frames = FrameDecoder().feed(blob)
        assert [kind for kind, _ in frames] == ["ping", "heartbeat"]

    def test_oversized_frame_rejected(self):
        header = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="frame"):
            FrameDecoder().feed(header)

    def test_garbage_payload_rejected(self):
        blob = struct.pack("!I", 4) + b"\x00\x01\x02\x03"
        with pytest.raises(ProtocolError):
            FrameDecoder().feed(blob)


class TestSocketTransport:
    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            send_message(a, "task", ticket=1, benchmark="compress")
            kind, data = recv_message(b)
            assert kind == "task"
            assert data == {"ticket": 1, "benchmark": "compress"}
        finally:
            a.close()
            b.close()

    def test_orderly_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_message(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_is_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame("ping", {})[:3])  # torn header
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_message(b)
        finally:
            b.close()


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize("bad", ["localhost", "host:", ":123", "h:0", "h:-1", "h:notaport"])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_address(bad)


class TestResolveTaskFn:
    def test_resolves_module_level_callable(self):
        fn = resolve_task_fn("repro.dist.worker:echo_task")
        assert fn(("a", 1)) == ("a", 1)

    @pytest.mark.parametrize(
        "spec",
        ["no-colon", "missing.module:fn", "repro.dist.worker:nope",
         "repro.dist.worker:DEFAULT_CONNECT_RETRIES"],
    )
    def test_bad_specs_are_typed_errors(self, spec):
        with pytest.raises(ProtocolError):
            resolve_task_fn(spec)
