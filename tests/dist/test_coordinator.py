"""DistributedExecutor: leases, host loss, dedup, cascade, bit identity."""

import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.dist.coordinator import (
    DistributedExecutor,
    task_fingerprint,
    task_row_key,
)
from repro.dist.protocol import recv_message, send_message
from repro.dist.worker import WorkerDaemon, echo_task
from repro.errors import ConfigError
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.perf.executor import SweepTask
from repro.perf.fingerprint import fingerprint
from repro.robustness.faultinject import FaultPlan, FaultSpec
from repro.robustness.journal import RunJournal, merge_journals

TL = 600
SRC_DIR = Path(repro.__file__).resolve().parent.parent


def _tasks(n=3):
    return [SweepTask(benchmark=f"b{i}", part="single") for i in range(n)]


def _run_all(executor, tasks):
    with executor:
        for task in tasks:
            executor.submit(task)
        out = {}
        while executor.outstanding:
            for result in executor.poll():
                out[result.task.token] = result
    return out


def _thread_worker(port, host, **kwargs):
    daemon = WorkerDaemon(f"127.0.0.1:{port}", host=host, **kwargs)
    thread = threading.Thread(target=daemon.serve, daemon=True)
    thread.start()
    return thread


def _spawn_worker(port, host, run_dir=None, plan_file=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro", "worker", "serve",
        "--connect", f"127.0.0.1:{port}", "--host", host,
        "--connect-retries", "120", "--quiet",
    ]
    if run_dir is not None:
        cmd += ["--run-dir", str(run_dir)]
    if plan_file is not None:
        cmd += ["--fault-plan", str(plan_file)]
    return subprocess.Popen(cmd, env=env)


def _reap(workers):
    for proc in workers:
        if proc.poll() is None:
            proc.kill()
    for proc in workers:
        proc.wait(timeout=10.0)


def _write_plan(tmp_path, *specs):
    plan = FaultPlan(specs=tuple(specs))
    plan_file = tmp_path / "host-fault-plan.json"
    plan_file.write_text(json.dumps(plan.as_dict()), encoding="utf-8")
    return plan_file


class TestRowKeys:
    def test_row_key_is_part_scoped(self):
        assert task_row_key(_tasks(1)[0]) == "part:b0:single"

    def test_fingerprint_is_deterministic_and_options_sensitive(self):
        plain = SweepTask(benchmark="b0", part="single")
        assert task_fingerprint(plain) == task_fingerprint(
            SweepTask(benchmark="b0", part="single")
        )
        sized = SweepTask(
            benchmark="b0",
            part="single",
            options=EvaluationOptions(trace_length=123),
        )
        assert task_fingerprint(plain) != task_fingerprint(sized)


class TestConfigValidation:
    def test_bad_knobs_rejected(self):
        for kwargs in (
            {"min_hosts": 0},
            {"task_timeout": 0.0},
            {"redispatch_budget": -1},
            {"fallback": "threads"},
        ):
            with pytest.raises(ConfigError):
                DistributedExecutor(echo_task, jobs=1, **kwargs)

    def test_unbindable_port_is_typed(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(ConfigError, match="bind"):
                DistributedExecutor(echo_task, jobs=1, port=port)
        finally:
            blocker.close()


class TestHappyPath:
    def test_two_hosts_deliver_every_task_once(self):
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=2, wait_for_hosts_s=30.0
        )
        port = ex.address[1]
        _thread_worker(port, "h0")
        _thread_worker(port, "h1")
        results = _run_all(ex, _tasks(6))
        assert len(results) == 6
        assert all(r.dispatches == 1 for r in results.values())
        assert ex.degradations == []
        assert ex.host_losses == 0
        snapshot = ex.metrics.snapshot()
        assert snapshot["dist_tasks_completed"] == 6
        assert snapshot["dist_hosts_registered"] == 2

    def test_results_echo_their_payloads(self):
        ex = DistributedExecutor(
            echo_task, jobs=1, min_hosts=1, wait_for_hosts_s=30.0
        )
        _thread_worker(ex.address[1], "h0")
        results = _run_all(ex, _tasks(2))
        assert results["b1:single"].value == ("b1", "single", None)


class TestVersionSkew:
    def test_skewed_worker_gets_goodbye(self):
        ex = DistributedExecutor(
            echo_task, jobs=1, min_hosts=1, wait_for_hosts_s=30.0
        )
        rogue = socket.create_connection(ex.address, timeout=10.0)
        rogue.settimeout(10.0)
        send_message(rogue, "register", host="rogue", pid=0, version=999)
        _thread_worker(ex.address[1], "h0")
        try:
            results = _run_all(ex, _tasks(2))
            assert len(results) == 2
            kind, data = recv_message(rogue)
            assert kind == "goodbye"
            assert "version" in data["reason"]
        finally:
            rogue.close()


class TestDegradationCascade:
    def test_no_hosts_falls_back_to_supervised(self):
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=1, wait_for_hosts_s=0.2
        )
        results = _run_all(ex, _tasks(4))
        assert len(results) == 4
        reasons = [d.reason for d in ex.degradations]
        assert reasons == ["no-hosts"]

    def test_no_hosts_serial_fallback(self):
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=1, wait_for_hosts_s=0.2,
            fallback="serial",
        )
        results = _run_all(ex, _tasks(3))
        assert len(results) == 3
        assert [d.reason for d in ex.degradations] == ["no-hosts"]


class TestHostFaults:
    """Each host fault kind, deterministically, with real subprocesses."""

    def test_host_kill_is_survived(self, tmp_path):
        plan_file = _write_plan(
            tmp_path,
            FaultSpec(kind="host_kill", benchmark="b0", clear_after=1),
        )
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=2, wait_for_hosts_s=60.0,
            task_timeout=60.0,
        )
        workers = [
            _spawn_worker(ex.address[1], f"h{i}", plan_file=plan_file)
            for i in range(2)
        ]
        try:
            results = _run_all(ex, _tasks(4))
        finally:
            _reap(workers)
        assert len(results) == 4
        assert results["b0:single"].dispatches == 2
        assert ex.host_losses >= 1
        assert ex.degradations == []

    def test_host_stall_hits_task_deadline(self, tmp_path):
        plan_file = _write_plan(
            tmp_path,
            FaultSpec(kind="host_stall", benchmark="b0", clear_after=1),
        )
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=2, wait_for_hosts_s=60.0,
            task_timeout=1.5,
        )
        workers = [
            _spawn_worker(ex.address[1], f"h{i}", plan_file=plan_file)
            for i in range(2)
        ]
        try:
            results = _run_all(ex, _tasks(4))
        finally:
            _reap(workers)  # the stalled host is wedged by design
        assert len(results) == 4
        assert results["b0:single"].dispatches == 2
        assert ex.host_losses >= 1
        assert ex.degradations == []

    def test_host_partition_journals_before_dropping(self, tmp_path):
        # The partitioned host completes AND journals the row, then
        # drops the socket: the re-dispatch duplicates the work, and the
        # shard merge must fold both copies into one row.
        plan_file = _write_plan(
            tmp_path,
            FaultSpec(kind="host_partition", benchmark="b0", clear_after=1),
        )
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=2, wait_for_hosts_s=60.0,
            task_timeout=60.0,
        )
        workers = [
            _spawn_worker(
                ex.address[1], f"h{i}", run_dir=tmp_path, plan_file=plan_file
            )
            for i in range(2)
        ]
        try:
            results = _run_all(ex, _tasks(3))
        finally:
            _reap(workers)
        assert len(results) == 3
        assert results["b0:single"].dispatches == 2
        assert ex.host_losses >= 1
        # Both hosts journaled the partitioned row; the merge dedups it.
        shard_rows = []
        for shard_file in tmp_path.glob("journal-h*.jsonl"):
            shard = RunJournal(tmp_path, shard=shard_file.stem.split("-", 1)[1])
            shard_rows.extend(
                entry.key for entry in shard.entries() if entry.completed
            )
            shard.close()
        assert shard_rows.count("part:b0:single") == 2
        report = merge_journals([tmp_path], tmp_path / "merged")
        assert report.duplicates_dropped == 1
        merged = RunJournal(tmp_path / "merged")
        try:
            assert merged.entry("part:b0:single").completed
        finally:
            merged.close()

    def test_persistent_fault_exhausts_hosts_then_falls_back(self, tmp_path):
        # clear_after=None: b0 takes down every host that leases it.
        # With two hosts the coordinator must reach all-hosts-lost and
        # still deliver everything through the local fallback.
        plan_file = _write_plan(
            tmp_path, FaultSpec(kind="host_kill", benchmark="b0")
        )
        ex = DistributedExecutor(
            echo_task, jobs=2, min_hosts=2, wait_for_hosts_s=60.0,
            task_timeout=60.0,
        )
        workers = [
            _spawn_worker(ex.address[1], f"h{i}", plan_file=plan_file)
            for i in range(2)
        ]
        try:
            results = _run_all(ex, _tasks(3))
        finally:
            _reap(workers)
        assert len(results) == 3
        assert ex.host_losses == 2
        reasons = [d.reason for d in ex.degradations]
        assert reasons and reasons[0] in (
            "all-hosts-lost", "host-circuit-breaker"
        )


class TestAcceptanceDistributed:
    def test_table2_survives_kill_and_partition_bit_identically(self, tmp_path):
        """ISSUE 8 acceptance: a Table 2 sweep across two localhost
        workers — one SIGKILLed, one partitioned mid-run — produces a
        merged journal and stats bit-identical to the serial run."""
        serial = run_table2(["compress"], EvaluationOptions(trace_length=TL))
        plan_file = _write_plan(
            tmp_path,
            FaultSpec(kind="host_kill", benchmark="compress",
                      part="single", clear_after=1),
            FaultSpec(kind="host_partition", benchmark="compress",
                      part="dual_none", clear_after=1),
        )
        ex_port = _free_port()
        workers = [
            _spawn_worker(ex_port, f"h{i}", run_dir=tmp_path,
                          plan_file=plan_file)
            for i in range(2)
        ]
        journal = RunJournal(tmp_path, shard="coord")
        try:
            survived = run_table2(
                ["compress"],
                EvaluationOptions(
                    trace_length=TL,
                    jobs=2,
                    executor="distributed",
                    task_timeout=60.0,
                    dist_port=ex_port,
                    dist_min_hosts=2,
                    dist_wait_s=60.0,
                ),
                journal=journal,
            )
        finally:
            journal.close()
            _reap(workers)
        assert survived.failures == []
        row_s, row_d = serial.rows[0], survived.rows[0]
        for part in ("single", "dual_none", "dual_local"):
            want = fingerprint(getattr(row_s.evaluation, part).stats.as_dict())
            got = fingerprint(getattr(row_d.evaluation, part).stats.as_dict())
            assert got == want, f"compress/{part} diverged"
        merge_journals([tmp_path], tmp_path / "merged")
        merged = RunJournal(tmp_path / "merged")
        try:
            entry = merged.entry("table2:compress")
            assert entry is not None and entry.completed
            assert merged.load_artifact(entry) is not None
        finally:
            merged.close()


def _free_port():
    with socket.socket() as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
