"""Tests for the loop-unrolling pass (Section 6 future work)."""

from repro.compiler.passes.unroll import (
    find_self_loops,
    unroll_program,
    unroll_self_loop,
)
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def self_loop_program():
    b = ProgramBuilder("loop")
    b.block("pre")
    b.op(Opcode.LDA, "acc", imm=0)
    b.op(Opcode.LDA, "x", imm=3)
    b.block("body")
    b.op(Opcode.ADDQ, "t", "x", "x")          # iteration-private
    b.op(Opcode.ADDQ, "acc", "acc", "t")      # loop-carried
    b.branch(Opcode.BNE, "acc", "body", model="m")
    b.block("post")
    b.store("acc", "acc")
    b.ret()
    return b.build()


class TestDetection:
    def test_self_loop_found(self):
        assert find_self_loops(self_loop_program()) == ["body"]

    def test_non_loops_ignored(self):
        b = ProgramBuilder("p")
        b.block("a")
        b.op(Opcode.LDA, "x", imm=1)
        b.block("b")
        b.ret()
        assert find_self_loops(b.build()) == []


class TestUnrolling:
    def test_body_replicated(self):
        prog = self_loop_program()
        before = len(prog.cfg.block("body").body)
        assert unroll_self_loop(prog, "body", 3)
        after = len(prog.cfg.block("body").body)
        assert after == 3 * before

    def test_single_back_edge_branch_remains(self):
        prog = self_loop_program()
        unroll_self_loop(prog, "body", 4)
        branches = [
            i for i in prog.cfg.block("body").instructions if i.opcode.is_control
        ]
        assert len(branches) == 1
        assert branches[0].target == "body"
        assert branches[0].branch_model == "m"

    def test_loop_carried_values_thread_through_copies(self):
        prog = self_loop_program()
        unroll_self_loop(prog, "body", 2)
        adds = [
            i for i in prog.cfg.block("body").instructions
            if i.opcode is Opcode.ADDQ and i.dest is not None
        ]
        # Copy 1's accumulate reads copy 0's accumulator definition.
        acc_defs = [i for i in adds if "acc" in i.dest.name]
        assert len(acc_defs) == 2
        first, second = acc_defs
        assert first.dest in second.srcs

    def test_final_copy_writes_original_names(self):
        prog = self_loop_program()
        acc = prog.value_named("acc")
        unroll_self_loop(prog, "body", 3)
        defs = [
            i for i in prog.cfg.block("body").instructions if i.dest is acc
        ]
        assert len(defs) == 1  # only the last copy writes the original

    def test_uids_renumbered(self):
        prog = self_loop_program()
        unroll_self_loop(prog, "body", 2)
        uids = [i.uid for i in prog.all_instructions()]
        assert uids == list(range(len(uids)))

    def test_factor_one_is_noop(self):
        prog = self_loop_program()
        assert not unroll_self_loop(prog, "body", 1)

    def test_non_loop_block_rejected(self):
        prog = self_loop_program()
        assert not unroll_self_loop(prog, "pre", 2)

    def test_unroll_program_counts(self):
        prog = self_loop_program()
        assert unroll_program(prog, 2) == 1


class TestUnrolledCompilation:
    def test_unrolled_program_compiles_and_runs(self):
        from repro.compiler.pipeline import compile_program
        from repro.core import LocalScheduler, RegisterAssignment
        from repro.uarch import dual_cluster_config, simulate
        from repro.workloads.branch_models import LoopBranch
        from repro.workloads.tracegen import TraceGenerator

        prog = self_loop_program()
        unroll_program(prog, 2)
        compiled = compile_program(
            prog, RegisterAssignment.even_odd_dual(), LocalScheduler()
        )
        trace = TraceGenerator(
            compiled.machine, {}, {"m": LoopBranch(8)}, seed=1
        ).generate(4000)
        result = simulate(trace, dual_cluster_config())
        assert result.stats.instructions == 4000
