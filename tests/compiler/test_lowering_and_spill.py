"""Unit tests for lowering and spill-code insertion."""

import pytest

from repro.compiler.lowering import LoweringError, lower_program
from repro.compiler.pipeline import make_pool_resolver
from repro.compiler.regalloc import AllocationResult, allocate_registers
from repro.compiler.spill import SPILL_STREAM_PREFIX, SpillContext, insert_spill_code
from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.registers import RegisterAssignment
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def simple_program():
    b = ProgramBuilder("p")
    b.block("b0")
    b.op(Opcode.LDA, "a", imm=1)
    b.op(Opcode.ADDQ, "c", "a", "a")
    b.store("c", "c")
    b.branch(Opcode.BNE, "c", "b0", model="m")
    return b.build()


class TestLowering:
    def _compile(self, prog):
        resolver = make_pool_resolver(RegisterAssignment.single_cluster(), oblivious=True)
        allocation = allocate_registers(prog, resolver)
        return lower_program(prog, allocation)

    def test_one_to_one_lowering(self):
        prog = simple_program()
        machine = self._compile(prog)
        assert machine.instruction_count() == prog.instruction_count()

    def test_registers_substituted(self):
        prog = simple_program()
        machine = self._compile(prog)
        for instr, _meta in machine.all_instructions():
            for reg in instr.named_registers():
                assert reg.name.startswith(("r", "f"))

    def test_cfg_shape_mirrored(self):
        prog = simple_program()
        machine = self._compile(prog)
        assert machine.labels() == prog.cfg.labels()
        assert machine.block("b0").succ_labels == prog.cfg.block("b0").succ_labels

    def test_annotations_carried(self):
        prog = simple_program()
        machine = self._compile(prog)
        models = [m.branch_model for _i, m in machine.all_instructions() if m.branch_model]
        assert models == ["m"]

    def test_profile_counts_carried(self):
        prog = simple_program()
        prog.cfg.block("b0").profile_count = 77
        machine = self._compile(prog)
        assert machine.block("b0").profile_count == 77

    def test_missing_register_raises(self):
        prog = simple_program()
        resolver = make_pool_resolver(RegisterAssignment.single_cluster(), oblivious=True)
        allocation = allocate_registers(prog, resolver)
        broken = AllocationResult(
            coloring={},  # no registers at all
            lrs=allocation.lrs,
            cluster_of=allocation.cluster_of,
        )
        with pytest.raises(LoweringError):
            lower_program(prog, broken)


class TestSpillInsertion:
    def _spill_range(self, name="a"):
        prog = simple_program()
        prog.renumber()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        lr = lrs.range_named(name)
        context = SpillContext()
        insert_spill_code(prog, [lr], context, {}, {lr.lrid: 0})
        return prog, context

    def test_store_after_def_and_load_before_use(self):
        prog, context = self._spill_range("a")
        ops = [i.opcode for i in prog.cfg.block("b0").instructions]
        # lda a' ; store a' ; load a'' ; (load a''') addq ...
        assert ops[0] is Opcode.LDA
        assert ops[1] is Opcode.STQ
        assert Opcode.LDQ in ops

    def test_spill_counts(self):
        _prog, context = self._spill_range("a")
        assert context.total_stores == 1
        # The add uses 'a' twice; one rewrite pass shares a load per
        # src occurrence, so a single load covers both.
        assert context.total_loads == 1
        # Each use occurrence gets its own load; 'a' appears twice in one
        # instruction, so loads >= 1.
        assert context.records[0].loads_inserted >= 1

    def test_spill_streams_named_by_slot(self):
        prog, context = self._spill_range("a")
        streams = {
            i.mem_stream
            for i in prog.all_instructions()
            if i.mem_stream and i.mem_stream.startswith(SPILL_STREAM_PREFIX)
        }
        assert streams == {f"{SPILL_STREAM_PREFIX}{context.records[0].slot}"}

    def test_temp_vids_registered(self):
        _prog, context = self._spill_range("a")
        assert context.temp_vids

    def test_program_renumbered_after_spill(self):
        prog, _context = self._spill_range("a")
        uids = [i.uid for i in prog.all_instructions()]
        assert uids == list(range(len(uids)))

    def test_cluster_inherited_by_temps(self):
        prog = simple_program()
        prog.renumber()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        lr = lrs.range_named("c")
        context = SpillContext()
        cluster_by_value: dict[int, int] = {}
        insert_spill_code(prog, [lr], context, cluster_by_value, {lr.lrid: 1})
        for temp in context.records[0].temp_values:
            assert cluster_by_value[temp.vid] == 1
