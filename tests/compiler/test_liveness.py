"""Tests for dataflow liveness analysis."""

from repro.compiler.liveness import LivenessInfo
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def loop_program():
    """x defined before a loop that accumulates into acc and reads x."""
    b = ProgramBuilder("loop")
    b.block("pre")
    x = b.op(Opcode.LDA, "x", imm=1)
    acc = b.op(Opcode.LDA, "acc", imm=0)
    b.block("body")
    b.op(Opcode.ADDQ, acc, acc, x)
    b.branch(Opcode.BNE, acc, "body")
    b.block("post")
    b.op(Opcode.ADDQ, "out", acc, acc)
    b.ret()
    return b.build()


class TestStraightLine:
    def test_dead_value_not_live_out(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "dead", imm=1)
        b.block("b1")
        b.op(Opcode.LDA, "x", imm=2)
        prog = b.build()
        info = LivenessInfo(prog)
        assert prog.value_named("dead") not in info.live_out("b0")

    def test_used_value_live_across_block(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.block("b1")
        b.op(Opcode.ADDQ, "y", "x", "x")
        prog = b.build()
        info = LivenessInfo(prog)
        x = prog.value_named("x")
        assert x in info.live_out("b0")
        assert x in info.live_in("b1")


class TestLoops:
    def test_loop_invariant_live_around_loop(self):
        prog = loop_program()
        info = LivenessInfo(prog)
        x = prog.value_named("x")
        # x is read every iteration, so it is live into and out of the body.
        assert x in info.live_in("body")
        assert x in info.live_out("body")

    def test_accumulator_live_out_of_loop(self):
        prog = loop_program()
        info = LivenessInfo(prog)
        acc = prog.value_named("acc")
        assert acc in info.live_out("body")
        assert acc in info.live_in("post")

    def test_result_dead_at_exit(self):
        prog = loop_program()
        info = LivenessInfo(prog)
        assert prog.value_named("out") not in info.live_out("post")


class TestPerInstruction:
    def test_live_before_each(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)       # 0
        b.op(Opcode.LDA, "b", imm=2)       # 1
        b.op(Opcode.ADDQ, "c", "a", "b")   # 2
        b.op(Opcode.ADDQ, "d", "c", "c")   # 3
        prog = b.build()
        info = LivenessInfo(prog)
        live = info.live_before_each("b0")
        a, bb, c = (prog.value_named(n) for n in "abc")
        assert a in live[2] and bb in live[2]
        assert c in live[3]
        assert a not in live[3]  # a dies at instruction 2

    def test_diamond_merges_liveness(self):
        b = ProgramBuilder("p")
        b.block("entry")
        b.op(Opcode.LDA, "x", imm=1)
        b.op(Opcode.LDA, "y", imm=2)
        b.branch(Opcode.BNE, "x", "right")
        b.block("left")
        b.op(Opcode.ADDQ, "z", "x", "x")
        b.jump("join")
        b.block("right")
        b.op(Opcode.ADDQ, "z2", "y", "y")
        b.block("join")
        b.ret()
        prog = b.build()
        info = LivenessInfo(prog)
        # Both x and y must be live out of entry: each side uses one.
        assert prog.value_named("x") in info.live_out("entry")
        assert prog.value_named("y") in info.live_out("entry")
        # y is not live into the left arm.
        assert prog.value_named("y") not in info.live_in("left")
