"""Property-based tests over randomly generated IL programs."""

import random

from hypothesis import given, settings, strategies as st

from repro.compiler.liveness import LivenessInfo
from repro.compiler.passes import optimize_program
from repro.compiler.webs import build_live_ranges
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode

_OPS = [Opcode.ADDQ, Opcode.SUBQ, Opcode.XOR, Opcode.MULQ, Opcode.CMPLT]


def random_program(seed: int, blocks: int = 3, size: int = 8):
    """A random multi-block program with stores anchoring liveness."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"rand{seed}")
    sp = b.stack_pointer_value()
    names = ["v0"]
    b.block("b0")
    b.op(Opcode.LDA, "v0", imm=1)
    for bi in range(blocks):
        if bi:
            b.block(f"b{bi}")
        for i in range(size):
            choice = rng.random()
            if choice < 0.2:
                name = f"v{len(names)}"
                b.op(Opcode.LDA, name, imm=rng.randrange(64))
                names.append(name)
            elif choice < 0.3:
                b.store(rng.choice(names), sp)
            else:
                name = f"v{len(names)}"
                srcs = [rng.choice(names) for _ in range(2)]
                b.op(rng.choice(_OPS), name, *srcs)
                names.append(name)
        if bi + 1 < blocks and rng.random() < 0.5:
            b.branch(Opcode.BNE, rng.choice(names), f"b{bi + 1}")
    b.store(names[-1], sp)
    b.ret()
    return b.build()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_property_webs_resolve_every_operand(seed):
    """Every source/destination of every instruction maps to a live range."""
    prog = random_program(seed)
    lrs = build_live_ranges(prog)
    for instr in prog.all_instructions():
        for src in instr.srcs:
            assert (instr.uid, src) in lrs.use_map
        if instr.dest is not None:
            assert (instr.uid, instr.dest) in lrs.def_map


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_property_web_references_partition_program(seed):
    """Each (instruction, operand) reference belongs to exactly one range."""
    prog = random_program(seed)
    lrs = build_live_ranges(prog)
    seen_defs = set()
    for lr in lrs:
        for uid in lr.def_uids:
            key = (uid, lr.value.vid)
            assert key not in seen_defs
            seen_defs.add(key)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_property_optimization_preserves_effects(seed):
    """Optimization never drops stores or control flow, and the program
    still renumbers densely afterwards."""
    prog = random_program(seed)
    stores_before = sum(1 for i in prog.all_instructions() if i.opcode.is_store)
    branches_before = sum(1 for i in prog.all_instructions() if i.opcode.is_control)
    optimize_program(prog)
    stores_after = sum(1 for i in prog.all_instructions() if i.opcode.is_store)
    branches_after = sum(1 for i in prog.all_instructions() if i.opcode.is_control)
    assert stores_after == stores_before
    assert branches_after == branches_before
    uids = [i.uid for i in prog.all_instructions()]
    assert uids == list(range(len(uids)))


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_property_liveness_fixpoint(seed):
    """live_in == use | (live_out - def) at the fixpoint, every block."""
    prog = random_program(seed)
    info = LivenessInfo(prog)
    for label in prog.cfg.labels():
        block_info = info.blocks[label]
        expected_in = block_info.use | (block_info.live_out - block_info.defs)
        assert block_info.live_in == expected_in
        out = set()
        for succ in prog.cfg.block(label).succ_labels:
            out |= info.blocks[succ].live_in
        assert block_info.live_out == out
