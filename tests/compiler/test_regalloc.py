"""Tests for the Briggs-style register allocator."""

import pytest

from repro.compiler.pipeline import make_pool_resolver
from repro.compiler.regalloc import (
    AllocationError,
    Pool,
    allocate_registers,
)
from repro.core.registers import RegisterAssignment
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass, int_reg


def chain_program(n=5):
    b = ProgramBuilder("chain")
    b.block("b0")
    b.op(Opcode.LDA, "v0", imm=0)
    for i in range(1, n):
        b.op(Opcode.ADDQ, f"v{i}", f"v{i-1}", f"v{i-1}")
    b.store(f"v{n-1}", f"v{n-1}")
    return b.build()


def clique_program(n):
    """n values simultaneously live (forces n registers or spills)."""
    b = ProgramBuilder("clique")
    b.block("b0")
    for i in range(n):
        b.op(Opcode.LDA, f"v{i}", imm=i)
    prev = "v0"
    for i in range(1, n):
        b.op(Opcode.ADDQ, "acc", prev, f"v{i}")
        prev = "acc"
    return b.build()


def oblivious(program, **kw):
    resolver = make_pool_resolver(RegisterAssignment.single_cluster(), oblivious=True)
    return allocate_registers(program, resolver, **kw)


class TestBasicColoring:
    def test_no_two_interfering_ranges_share_a_register(self):
        prog = clique_program(8)
        result = oblivious(prog)
        # All 8 LDA temps are simultaneously live: their colours differ.
        colors = set()
        for lr in result.lrs:
            if lr.name.startswith("v"):
                colors.add(result.register_for(lr))
        assert len(colors) == 8

    def test_chain_reuses_registers(self):
        prog = chain_program(10)
        result = oblivious(prog)
        used = {result.register_for(lr) for lr in result.lrs if not lr.global_candidate}
        # A pure chain needs very few registers.
        assert len(used) <= 3

    def test_no_spills_for_small_programs(self):
        result = oblivious(chain_program(6))
        assert result.spills.total_loads == 0
        assert result.spills.total_stores == 0
        assert result.iterations == 1


class TestClusteredPools:
    def test_local_ranges_get_parity_registers(self):
        assignment = RegisterAssignment.even_odd_dual()
        prog = chain_program(4)
        resolver = make_pool_resolver(assignment, oblivious=False)
        # All ranges to cluster 1 -> odd registers.
        cluster_by_value = {v.vid: 1 for v in prog.values}
        result = allocate_registers(prog, resolver, cluster_by_value)
        for lr in result.lrs:
            if not lr.global_candidate and result.cluster_of[lr.lrid] == 1:
                assert result.register_for(lr).index % 2 == 1

    def test_other_cluster_fallback_when_pool_exhausted(self):
        # 20 simultaneously-live ints assigned to cluster 0: cluster 0 has
        # only 15 even registers, so some ranges must move to cluster 1.
        assignment = RegisterAssignment.even_odd_dual()
        prog = clique_program(20)
        resolver = make_pool_resolver(assignment, oblivious=False)
        cluster_by_value = {v.vid: 0 for v in prog.values}
        result = allocate_registers(prog, resolver, cluster_by_value)
        assert result.moved_ranges  # the multicluster spill policy engaged
        assert result.spills.total_loads == 0  # no memory spill needed

    def test_global_candidates_get_global_registers(self):
        assignment = RegisterAssignment.even_odd_dual()
        b = ProgramBuilder("p")
        sp = b.stack_pointer_value()
        b.block("b0")
        b.load("x", sp)
        prog = b.build()
        resolver = make_pool_resolver(assignment, oblivious=False)
        result = allocate_registers(prog, resolver, {})
        sp_range = next(lr for lr in result.lrs if lr.value.is_stack_pointer)
        assert result.register_for(sp_range) in assignment.global_registers(
            RegisterClass.INT
        )


def tiny_resolver(*registers):
    """A resolver with a tiny local pool; global candidates (the stack
    pointer that spill code addresses through) keep their own register."""
    from repro.isa.registers import GLOBAL_POINTER, STACK_POINTER

    local = Pool("tiny", registers)
    globals_ = Pool("globals", (STACK_POINTER, GLOBAL_POINTER))

    def resolver(lr, cluster):
        if lr.global_candidate:
            return globals_, None
        return local, None

    return resolver


class TestMemorySpills:
    def test_spill_inserted_when_pool_too_small(self):
        # Tiny two-register pool forces memory spills for a 5-clique.
        prog = clique_program(5)
        resolver = tiny_resolver(int_reg(0), int_reg(1))
        result = allocate_registers(prog, resolver)
        assert result.spills.total_stores > 0
        assert result.spills.total_loads > 0
        assert result.iterations > 1

    def test_spilled_program_still_colors(self):
        prog = clique_program(6)
        tiny = (int_reg(0), int_reg(1), int_reg(2))
        resolver = tiny_resolver(*tiny)
        result = allocate_registers(prog, resolver)
        # Every local range of the final iteration got a pool register.
        for lr in result.lrs:
            if not lr.global_candidate:
                assert result.register_for(lr) in tiny

    def test_impossible_allocation_raises(self):
        prog = clique_program(6)
        resolver = tiny_resolver(int_reg(0))
        with pytest.raises(AllocationError):
            allocate_registers(prog, resolver)


class TestSpillCodeShape:
    def test_spill_code_uses_spill_streams(self):
        from repro.compiler.spill import SPILL_STREAM_PREFIX

        prog = clique_program(5)
        resolver = tiny_resolver(int_reg(0), int_reg(1))
        allocate_registers(prog, resolver)
        spill_ops = [
            i
            for i in prog.all_instructions()
            if i.mem_stream and i.mem_stream.startswith(SPILL_STREAM_PREFIX)
        ]
        assert spill_ops
        assert any(i.opcode.is_store for i in spill_ops)
        assert any(i.opcode.is_load for i in spill_ops)
