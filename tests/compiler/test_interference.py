"""Tests for the interference graph."""

from hypothesis import given, settings, strategies as st

from repro.compiler.interference import InterferenceGraph
from repro.compiler.webs import build_live_ranges
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def graph_for(builder: ProgramBuilder):
    prog = builder.build()
    lrs = build_live_ranges(prog)
    return prog, lrs, InterferenceGraph.build(prog, lrs)


class TestBasicInterference:
    def test_simultaneously_live_values_interfere(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.LDA, "b", imm=2)
        b.op(Opcode.ADDQ, "c", "a", "b")
        _prog, lrs, graph = graph_for(b)
        assert graph.interferes(lrs.range_named("a"), lrs.range_named("b"))

    def test_sequential_values_do_not_interfere(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.ADDQ, "b", "a", "a")   # a dies here
        b.op(Opcode.ADDQ, "c", "b", "b")
        _prog, lrs, graph = graph_for(b)
        assert not graph.interferes(lrs.range_named("a"), lrs.range_named("c"))

    def test_different_classes_never_interfere(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "i", imm=1)
        b.op(Opcode.CVTQT, "f", "i")
        b.op(Opcode.ADDQ, "i2", "i", "i")
        b.op(Opcode.ADDT, "f2", "f", "f")
        _prog, lrs, graph = graph_for(b)
        assert not graph.interferes(lrs.range_named("i"), lrs.range_named("f"))

    def test_loop_carried_interference(self):
        b = ProgramBuilder("p")
        b.block("pre")
        b.op(Opcode.LDA, "inv", imm=1)
        b.op(Opcode.LDA, "acc", imm=0)
        b.block("body")
        b.op(Opcode.ADDQ, "acc", "acc", "inv")
        b.branch(Opcode.BNE, "acc", "body")
        b.block("post")
        b.op(Opcode.ADDQ, "out", "acc", "inv")
        b.ret()
        _prog, lrs, graph = graph_for(b)
        assert graph.interferes(lrs.range_named("inv"), lrs.range_named("acc"))


class TestGraphProperties:
    def test_adjacency_symmetric(self):
        b = ProgramBuilder("p")
        b.block("b0")
        names = [f"v{i}" for i in range(6)]
        for n in names:
            b.op(Opcode.LDA, n, imm=1)
        srcs = names
        b.op(Opcode.ADDQ, "sum", srcs[0], srcs[1])
        for n in srcs[2:]:
            b.op(Opcode.ADDQ, "sum", "sum", n)
        _prog, _lrs, graph = graph_for(b)
        for node, neighbors in graph.adjacency.items():
            for m in neighbors:
                assert node in graph.adjacency[m]

    def test_degree_matches_neighbors(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.LDA, "b", imm=2)
        b.op(Opcode.ADDQ, "c", "a", "b")
        _prog, lrs, graph = graph_for(b)
        a = lrs.range_named("a")
        assert graph.degree(a) == len(graph.neighbors(a))

    def test_edge_count_is_half_degree_sum(self):
        b = ProgramBuilder("p")
        b.block("b0")
        for i in range(5):
            b.op(Opcode.LDA, f"v{i}", imm=i)
        b.op(Opcode.ADDQ, "s", "v0", "v4")
        _prog, _lrs, graph = graph_for(b)
        assert graph.edge_count() * 2 == sum(
            len(v) for v in graph.adjacency.values()
        )


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 12), st.integers(0, 10_000))
def test_property_overlapping_chain_neighbors(n_live, seed):
    """N simultaneously-live integer values form a clique."""
    import random

    rng = random.Random(seed)
    b = ProgramBuilder("p")
    b.block("b0")
    names = [f"v{i}" for i in range(n_live)]
    for name in names:
        b.op(Opcode.LDA, name, imm=rng.randrange(100))
    # One final instruction that reads everything keeps them all live.
    acc = "v0"
    for name in names[1:]:
        b.op(Opcode.ADDQ, "acc", acc, name)
        acc = "acc"
    prog = b.build()
    lrs = build_live_ranges(prog)
    graph = InterferenceGraph.build(prog, lrs)
    ranges = [lrs.range_named(n) for n in names]
    for i, r1 in enumerate(ranges):
        for r2 in ranges[i + 1 :]:
            assert graph.interferes(r1, r2)
