"""End-to-end tests for the six-step compilation pipeline."""

import pytest

from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.core import LocalScheduler, RegisterAssignment
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass


def sample_program():
    b = ProgramBuilder("sample")
    sp = b.stack_pointer_value()
    b.block("entry", count=1)
    b.op(Opcode.LDA, "n", imm=100)
    b.op(Opcode.LDA, "acc", imm=0)
    b.block("body", count=100)
    b.load("x", sp, stream="arr")
    b.op(Opcode.ADDQ, "acc", "acc", "x")
    b.op(Opcode.SUBQ, "n", "n", imm=1)
    b.branch(Opcode.BNE, "n", "body")
    b.block("exit", count=1)
    b.store("acc", sp)
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(["body", "exit"], [0.99, 0.01])
    return prog


class TestNativeCompilation:
    def test_produces_machine_program(self):
        result = compile_program(sample_program(), RegisterAssignment.single_cluster())
        assert result.machine.instruction_count() > 0
        assert result.partitioner_name == "none"

    def test_annotations_preserved_into_machine_code(self):
        result = compile_program(sample_program(), RegisterAssignment.single_cluster())
        streams = [
            m.mem_stream for _i, m in result.machine.all_instructions() if m.mem_stream
        ]
        assert "arr" in streams

    def test_input_program_untouched_by_default(self):
        prog = sample_program()
        before = prog.format()
        compile_program(prog, RegisterAssignment.single_cluster())
        assert prog.format() == before

    def test_sp_gets_conventional_register(self):
        result = compile_program(sample_program(), RegisterAssignment.single_cluster())
        sp_regs = {
            i.srcs[-1].name
            for i, m in result.machine.all_instructions()
            if i.opcode.is_memory and m.mem_stream != "arr"
        }
        # Spill-free program: the stack pointer must be r29 or r30.
        assert sp_regs <= {"r29", "r30"}


class TestClusteredCompilation:
    def test_partition_respected_in_register_parity(self):
        assignment = RegisterAssignment.even_odd_dual()
        result = compile_program(sample_program(), assignment, LocalScheduler())
        # Every local int register used must obey its partition parity.
        for lr in result.lrs:
            if lr.global_candidate:
                continue
            cluster = result.allocation.cluster_of.get(lr.lrid)
            if cluster is None:
                continue
            reg = result.allocation.coloring[lr.lrid]
            assert reg.index % 2 == cluster

    def test_partition_by_value_nonempty(self):
        result = compile_program(
            sample_program(), RegisterAssignment.even_odd_dual(), LocalScheduler()
        )
        assert result.partition_by_value
        assert result.partitioner_name == "local"

    def test_distribution_stats_computed(self):
        result = compile_program(
            sample_program(), RegisterAssignment.even_odd_dual(), LocalScheduler()
        )
        assert result.distribution is not None
        assert result.distribution.total > 0

    def test_same_program_both_modes_equal_instruction_counts(self):
        prog = sample_program()
        native = compile_program(prog, RegisterAssignment.single_cluster())
        clustered = compile_program(
            prog, RegisterAssignment.even_odd_dual(), LocalScheduler()
        )
        # No spills expected in either mode for this small program.
        assert native.machine.instruction_count() == clustered.machine.instruction_count()


class TestOptions:
    def test_profile_modes(self):
        for mode in ("analytic", "walk", "keep"):
            result = compile_program(
                sample_program(),
                RegisterAssignment.single_cluster(),
                options=CompilerOptions(profile=mode),
            )
            assert result.machine.instruction_count() > 0

    def test_unknown_profile_mode_rejected(self):
        with pytest.raises(ValueError):
            compile_program(
                sample_program(),
                RegisterAssignment.single_cluster(),
                options=CompilerOptions(profile="bogus"),
            )

    def test_scheduling_can_be_disabled(self):
        options = CompilerOptions(
            optimize=False, prepass_schedule=False, postpass_schedule=False,
            profile="keep",
        )
        result = compile_program(
            sample_program(), RegisterAssignment.single_cluster(), options=options
        )
        # Without scheduling, machine code preserves source order per block.
        body = result.machine.block("body")
        opcodes = [i.opcode for i in body.instructions]
        assert opcodes == [Opcode.LDQ, Opcode.ADDQ, Opcode.SUBQ, Opcode.BNE]

    def test_optimization_counts_reported(self):
        b = ProgramBuilder("opt")
        b.block("b0")
        b.op(Opcode.LDA, "dead", imm=1)
        b.op(Opcode.LDA, "x", imm=2)
        b.store("x", "x")
        prog = b.build()
        result = compile_program(prog, RegisterAssignment.single_cluster())
        assert result.optimization_counts["dce"] >= 1


class TestLoweringErrors:
    def test_fp_program_compiles(self):
        b = ProgramBuilder("fp")
        b.block("b0")
        b.op(Opcode.LDA, "i", imm=1)
        b.op(Opcode.CVTQT, "f", "i")
        b.op(Opcode.ADDT, "g", "f", "f")
        b.op(Opcode.DIVT, "h", "g", "f")
        b.store("h", "i", opcode=Opcode.STT)
        prog = b.build()
        result = compile_program(prog, RegisterAssignment.even_odd_dual(), LocalScheduler())
        fp_dests = [
            i.dest for i, _m in result.machine.all_instructions()
            if i.dest is not None and i.dest.rclass is RegisterClass.FP
        ]
        assert fp_dests
