"""Tests for the conventional optimization passes."""

from repro.compiler.passes import (
    optimize_program,
    run_constant_propagation,
    run_copy_propagation,
    run_cse,
    run_dce,
)
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


class TestDce:
    def test_removes_dead_alu(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "dead", imm=1)
        b.op(Opcode.LDA, "live", imm=2)
        b.store("live", "live")
        prog = b.build()
        removed = run_dce(prog)
        assert removed == 1
        assert all(i.dest is None or i.dest.name != "dead" for i in prog.all_instructions())

    def test_removes_dead_chains_transitively(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.ADDQ, "b", "a", "a")
        b.op(Opcode.ADDQ, "c", "b", "b")  # c dead -> whole chain dead
        prog = b.build()
        assert run_dce(prog) == 3
        assert prog.instruction_count() == 0

    def test_keeps_stores_and_branches(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.store("x", "x")
        b.branch(Opcode.BNE, "x", "b0")
        prog = b.build()
        assert run_dce(prog) == 0
        assert prog.instruction_count() == 3

    def test_keeps_values_live_across_blocks(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.block("b1")
        b.store("x", "x")
        prog = b.build()
        assert run_dce(prog) == 0

    def test_keeps_loads_conservatively(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "base", imm=0)
        b.load("unused", "base")
        b.store("base", "base")
        prog = b.build()
        # Loads have architectural side-effect potential; DCE keeps them.
        counts_before = prog.instruction_count()
        run_dce(prog)
        assert prog.instruction_count() == counts_before


class TestCopyProp:
    def test_copy_source_propagated(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.op(Opcode.BIS, "y", "x")       # y = x
        b.op(Opcode.ADDQ, "z", "y", "y")  # -> z = x + x
        prog = b.build()
        rewrites = run_copy_propagation(prog)
        assert rewrites == 2
        add = [i for i in prog.all_instructions() if i.opcode is Opcode.ADDQ][0]
        assert all(s.name == "x" for s in add.srcs)

    def test_redefinition_kills_copy(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.op(Opcode.BIS, "y", "x")
        b.op(Opcode.LDA, "x", imm=2)      # x redefined: copy y=x dies
        b.op(Opcode.ADDQ, "z", "y", "y")
        prog = b.build()
        run_copy_propagation(prog)
        add = [i for i in prog.all_instructions() if i.opcode is Opcode.ADDQ][0]
        assert all(s.name == "y" for s in add.srcs)

    def test_transitive_copies(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.op(Opcode.BIS, "y", "x")
        b.op(Opcode.BIS, "z", "y")
        b.op(Opcode.ADDQ, "w", "z", "z")
        prog = b.build()
        run_copy_propagation(prog)
        add = [i for i in prog.all_instructions() if i.opcode is Opcode.ADDQ][0]
        assert all(s.name == "x" for s in add.srcs)


class TestCse:
    def test_redundant_computation_becomes_move(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.LDA, "b", imm=2)
        b.op(Opcode.ADDQ, "x", "a", "b")
        b.op(Opcode.ADDQ, "y", "a", "b")  # same expression
        prog = b.build()
        assert run_cse(prog) == 1
        ops = [i.opcode for i in prog.all_instructions()]
        assert Opcode.BIS in ops

    def test_redefinition_invalidates_expression(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.ADDQ, "x", "a", "a")
        b.op(Opcode.LDA, "a", imm=2)      # new version of a
        b.op(Opcode.ADDQ, "y", "a", "a")  # NOT the same expression
        prog = b.build()
        assert run_cse(prog) == 0

    def test_loads_never_cse(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "base", imm=0)
        b.load("x", "base")
        b.load("y", "base")
        prog = b.build()
        assert run_cse(prog) == 0


class TestConstProp:
    def test_folds_constant_add(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=3)
        b.op(Opcode.LDA, "b", imm=4)
        b.op(Opcode.ADDQ, "c", "a", "b")
        b.store("c", "c")
        prog = b.build()
        assert run_constant_propagation(prog) == 1
        folded = [i for i in prog.all_instructions() if i.dest and i.dest.name == "c"][0]
        assert folded.opcode is Opcode.LDA
        assert folded.imm == 7

    def test_folds_chains(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=2)
        b.op(Opcode.LDA, "b", imm=5)
        b.op(Opcode.MULQ, "c", "a", "b")
        b.op(Opcode.ADDQ, "d", "c", "c")
        b.store("d", "d")
        prog = b.build()
        assert run_constant_propagation(prog) == 2
        d = [i for i in prog.all_instructions() if i.dest and i.dest.name == "d"][0]
        assert d.imm == 20

    def test_unknown_inputs_not_folded(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "base", imm=0)
        b.load("x", "base")
        b.op(Opcode.ADDQ, "y", "x", "x")
        prog = b.build()
        assert run_constant_propagation(prog) == 0

    def test_comparison_folds(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=3)
        b.op(Opcode.LDA, "b", imm=4)
        b.op(Opcode.CMPLT, "c", "a", "b")
        b.store("c", "c")
        prog = b.build()
        run_constant_propagation(prog)
        c = [i for i in prog.all_instructions() if i.dest and i.dest.name == "c"][0]
        assert c.imm == 1


class TestPipelineOfPasses:
    def test_optimize_program_reaches_fixpoint(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.LDA, "b", imm=1)
        b.op(Opcode.ADDQ, "x", "a", "b")
        b.op(Opcode.ADDQ, "y", "a", "b")   # CSE -> move -> copyprop -> DCE
        b.store("x", "x")
        b.store("y", "x")
        prog = b.build()
        counts = optimize_program(prog)
        assert counts["cse"] >= 1
        # After optimization the redundant add is gone entirely.
        adds = [i for i in prog.all_instructions() if i.opcode is Opcode.ADDQ]
        assert len(adds) <= 1

    def test_annotations_survive_optimization(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "base", imm=0)
        b.load("x", "base", stream="arr")
        b.op(Opcode.LDA, "dead", imm=9)
        b.store("x", "base", stream="arr")
        b.branch(Opcode.BNE, "x", "b0", model="m")
        prog = b.build()
        optimize_program(prog)
        streams = [i.mem_stream for i in prog.all_instructions() if i.opcode.is_memory]
        assert streams == ["arr", "arr"]
        assert [i.branch_model for i in prog.all_instructions() if i.opcode.is_control] == ["m"]
