"""Tests for web construction (live ranges)."""

from repro.compiler.webs import (
    build_live_ranges,
    compute_spill_weights,
    designate_global_candidates,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import ILInstruction
from repro.isa.opcodes import Opcode


def build_two_web_program():
    """`t` has two independent webs: (def0,use0) and (def1,use1)."""
    b = ProgramBuilder("p")
    b.block("b0")
    t = b.value("t")
    b.emit(ILInstruction(Opcode.LDA, dest=t, imm=1))          # def web 0
    b.emit(ILInstruction(Opcode.ADDQ, dest=b.value("a"), srcs=(t, t)))  # use web 0
    b.emit(ILInstruction(Opcode.LDA, dest=t, imm=2))          # def web 1 (kills)
    b.emit(ILInstruction(Opcode.ADDQ, dest=b.value("c"), srcs=(t,)))    # use web 1
    return b.build()


class TestWebSplitting:
    def test_two_webs_for_disconnected_defs(self):
        prog = build_two_web_program()
        lrs = build_live_ranges(prog)
        t = prog.value_named("t")
        t_ranges = [lr for lr in lrs if lr.value is t]
        assert len(t_ranges) == 2

    def test_webs_have_disjoint_references(self):
        prog = build_two_web_program()
        lrs = build_live_ranges(prog)
        t = prog.value_named("t")
        r0, r1 = [lr for lr in lrs if lr.value is t]
        assert not (r0.reference_uids & r1.reference_uids)

    def test_merged_web_across_control_flow(self):
        # Defs on both arms of a diamond reaching a common use merge.
        b = ProgramBuilder("p")
        b.block("entry")
        cond = b.op(Opcode.LDA, "cond", imm=1)
        b.branch(Opcode.BNE, cond, "right")
        b.block("left")
        b.op(Opcode.LDA, "g", imm=1)
        b.jump("join")
        b.block("right")
        b.op(Opcode.LDA, "g", imm=2)
        b.block("join")
        b.op(Opcode.ADDQ, "use", "g", "g")
        prog = b.build()
        lrs = build_live_ranges(prog)
        g = prog.value_named("g")
        g_ranges = [lr for lr in lrs if lr.value is g]
        assert len(g_ranges) == 1
        assert len(g_ranges[0].def_uids) == 2

    def test_loop_carried_web_is_single(self):
        b = ProgramBuilder("p")
        b.block("pre")
        b.op(Opcode.LDA, "acc", imm=0)
        b.block("body")
        b.op(Opcode.ADDQ, "acc", "acc", "acc")
        b.branch(Opcode.BNE, "acc", "body")
        prog = b.build()
        lrs = build_live_ranges(prog)
        acc = prog.value_named("acc")
        assert len([lr for lr in lrs if lr.value is acc]) == 1


class TestMaps:
    def test_def_and_use_maps_resolve(self):
        prog = build_two_web_program()
        lrs = build_live_ranges(prog)
        t = prog.value_named("t")
        instrs = list(prog.all_instructions())
        web0 = lrs.range_for_def(instrs[0].uid, t)
        assert lrs.range_for_use(instrs[1].uid, t) is web0
        web1 = lrs.range_for_def(instrs[2].uid, t)
        assert lrs.range_for_use(instrs[3].uid, t) is web1
        assert web0 is not web1

    def test_entry_live_value_gets_a_range(self):
        # The stack pointer is never defined but is used: it still needs a web.
        b = ProgramBuilder("p")
        sp = b.stack_pointer_value()
        b.block("b0")
        b.load("x", sp)
        prog = b.build()
        lrs = build_live_ranges(prog)
        sp_ranges = [lr for lr in lrs if lr.value is sp]
        assert len(sp_ranges) == 1
        assert not sp_ranges[0].def_uids

    def test_range_named_lookup(self):
        prog = build_two_web_program()
        lrs = build_live_ranges(prog)
        assert lrs.range_named("a") is not None
        assert lrs.range_named("missing") is None


class TestDesignation:
    def test_sp_gp_are_global_candidates(self):
        b = ProgramBuilder("p")
        sp = b.stack_pointer_value()
        gp = b.global_pointer_value()
        b.block("b0")
        b.load("x", sp)
        b.load("y", gp)
        prog = b.build()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        for lr in lrs:
            expected = lr.value in (sp, gp)
            assert lr.global_candidate == expected

    def test_extra_values_widen_global_set(self):
        prog = build_two_web_program()
        lrs = build_live_ranges(prog)
        a = prog.value_named("a")
        designate_global_candidates(lrs, extra_values=[a])
        assert all(lr.global_candidate for lr in lrs if lr.value is a)

    def test_local_and_global_partitions(self):
        b = ProgramBuilder("p")
        sp = b.stack_pointer_value()
        b.block("b0")
        b.load("x", sp)
        prog = b.build()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        assert len(lrs.global_candidates()) == 1
        assert len(lrs.local_candidates()) == len(lrs) - 1


class TestSpillWeights:
    def test_weights_scale_with_profile(self):
        b = ProgramBuilder("p")
        b.block("cold", count=1)
        b.op(Opcode.LDA, "x", imm=1)
        b.block("hot", count=1000)
        b.op(Opcode.ADDQ, "y", "x", "x")
        prog = b.build()
        lrs = build_live_ranges(prog)
        compute_spill_weights(prog, lrs)
        x = lrs.range_named("x")
        y = lrs.range_named("y")
        assert x.spill_weight > 1000  # def in cold + use in hot
        assert y.spill_weight == 1000
