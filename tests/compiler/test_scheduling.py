"""Tests for prepass and postpass list scheduling."""

from hypothesis import given, settings, strategies as st

from repro.compiler.scheduling import (
    build_dependence_edges,
    critical_path_heights,
    schedule_block,
    schedule_machine_program,
    schedule_program,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.machine_program import MachineProgram
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg


def positions(block):
    return {id(instr): i for i, instr in enumerate(block.instructions)}


def assert_dependences_respected(before, after):
    """Every (producer, consumer) pair of `before` stays ordered in `after`."""
    succs = build_dependence_edges(before)
    pos = {id(instr): i for i, instr in enumerate(after)}
    for i, edges in enumerate(succs):
        for j, _lat in edges:
            assert pos[id(before[i])] < pos[id(before[j])]


class TestPrepassScheduling:
    def test_raw_dependences_preserved(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.MULQ, "b", "a", "a")
        b.op(Opcode.ADDQ, "c", "b", "b")
        prog = b.build()
        before = list(prog.cfg.block("b0").instructions)
        schedule_block(prog.cfg.block("b0"))
        assert_dependences_respected(before, prog.cfg.block("b0").instructions)

    def test_terminator_stays_last(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.LDA, "b", imm=2)
        b.branch(Opcode.BNE, "a", "b0")
        prog = b.build()
        schedule_block(prog.cfg.block("b0"))
        assert prog.cfg.block("b0").instructions[-1].opcode is Opcode.BNE

    def test_stores_keep_order_with_loads(self):
        b = ProgramBuilder("p")
        b.block("b0")
        base = b.op(Opcode.LDA, "base", imm=0)
        b.store("base", base)
        b.load("x", base)
        prog = b.build()
        before = list(prog.cfg.block("b0").instructions)
        schedule_block(prog.cfg.block("b0"))
        after = prog.cfg.block("b0").instructions
        store_pos = next(i for i, ins in enumerate(after) if ins.opcode.is_store)
        load_pos = next(i for i, ins in enumerate(after) if ins.opcode.is_load)
        assert store_pos < load_pos
        assert_dependences_respected(before, after)

    def test_long_latency_op_hoisted(self):
        """The multiply heading a long chain should be scheduled early."""
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "m0", imm=1)
        # Independent cheap work first in program order...
        for i in range(4):
            b.op(Opcode.LDA, f"pad{i}", imm=i)
        # ... then the chain head.
        b.op(Opcode.MULQ, "m1", "m0", "m0")
        b.op(Opcode.ADDQ, "m2", "m1", "m1")
        b.store("m2", "m2")
        for i in range(4):
            b.op(Opcode.ADDQ, f"q{i}", f"pad{i}", f"pad{i}")
        prog = b.build()
        schedule_block(prog.cfg.block("b0"), width=1)
        names = [
            (ins.dest.name if ins.dest is not None else ins.opcode.mnemonic)
            for ins in prog.cfg.block("b0").instructions
        ]
        # With width 1 the scheduler orders by priority: the mulq chain
        # (critical path) beats the pad chain.
        assert names.index("m1") < names.index("q0")

    def test_deterministic(self):
        def build():
            b = ProgramBuilder("p")
            b.block("b0")
            for i in range(10):
                b.op(Opcode.LDA, f"v{i}", imm=i)
            b.op(Opcode.ADDQ, "s", "v0", "v9")
            return b.build()

        p1, p2 = build(), build()
        schedule_program(p1)
        schedule_program(p2)
        f1 = [i.format() for i in p1.all_instructions()]
        f2 = [i.format() for i in p2.all_instructions()]
        assert f1 == f2

    def test_schedule_program_renumbers(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.MULQ, "b", "a", "a")
        prog = b.build()
        schedule_program(prog)
        assert [i.uid for i in prog.all_instructions()] == [0, 1]


class TestCriticalPath:
    def test_heights_increase_along_chain(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "a", imm=1)
        b.op(Opcode.MULQ, "b", "a", "a")
        b.op(Opcode.ADDQ, "c", "b", "b")
        prog = b.build()
        instrs = prog.cfg.block("b0").instructions
        succs = build_dependence_edges(instrs)
        heights = critical_path_heights(instrs, succs)
        assert heights[0] > heights[1] > heights[2]


class TestMachineScheduling:
    def test_meta_moves_with_instructions(self):
        mp = MachineProgram("p")
        blk = mp.add_block("b0")
        from repro.ir.machine_program import MachineInstrMeta

        blk.add(MachineInstruction(Opcode.LDA, dest=int_reg(0), imm=1),
                MachineInstrMeta(mem_stream=None))
        blk.add(MachineInstruction(Opcode.MULQ, dest=int_reg(1), srcs=(int_reg(0), int_reg(0))))
        blk.add(MachineInstruction(Opcode.LDQ, dest=int_reg(2), srcs=(int_reg(3),)),
                MachineInstrMeta(mem_stream="arr"))
        mp.assign_pcs()
        schedule_machine_program(mp)
        blk = mp.block("b0")
        for instr, meta in zip(blk.instructions, blk.meta):
            if instr.opcode is Opcode.LDQ:
                assert meta.mem_stream == "arr"

    def test_register_dependences_respected(self):
        mp = MachineProgram("p")
        blk = mp.add_block("b0")
        blk.add(MachineInstruction(Opcode.LDA, dest=int_reg(0), imm=1))
        blk.add(MachineInstruction(Opcode.ADDQ, dest=int_reg(1), srcs=(int_reg(0),)))
        blk.add(MachineInstruction(Opcode.LDA, dest=int_reg(0), imm=2))  # WAR with the add
        mp.assign_pcs()
        schedule_machine_program(mp)
        ops = [i.imm for i in mp.block("b0").instructions if i.opcode is Opcode.LDA]
        assert ops == [1, 2]  # the second lda cannot move above the add's read


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(3, 20))
def test_property_scheduling_is_a_permutation_respecting_deps(seed, n):
    import random

    rng = random.Random(seed)
    b = ProgramBuilder("p")
    b.block("b0")
    names = []
    b.op(Opcode.LDA, "v0", imm=0)
    names.append("v0")
    for i in range(1, n):
        srcs = rng.sample(names, k=min(len(names), rng.randint(1, 2)))
        b.op(rng.choice([Opcode.ADDQ, Opcode.MULQ, Opcode.XOR]), f"v{i}", *srcs)
        names.append(f"v{i}")
    prog = b.build()
    before = list(prog.cfg.block("b0").instructions)
    schedule_block(prog.cfg.block("b0"), width=rng.choice([1, 2, 8]))
    after = prog.cfg.block("b0").instructions
    assert sorted(map(id, before)) == sorted(map(id, after))
    assert_dependences_respected(before, after)
