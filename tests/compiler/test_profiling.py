"""Tests for basic-block profiling."""

import pytest

from repro.compiler.profiling import profile_analytically, profile_by_walk
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def loop_program(back_prob=0.9):
    b = ProgramBuilder("loop")
    b.block("pre")
    b.op(Opcode.LDA, "acc", imm=0)
    b.block("body")
    b.op(Opcode.ADDQ, "acc", "acc", "acc")
    b.branch(Opcode.BNE, "acc", "body")
    b.block("post")
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(["body", "post"], [back_prob, 1 - back_prob])
    return prog


class TestAnalytic:
    def test_loop_count_matches_geometric_mean(self):
        prog = loop_program(0.9)
        counts = profile_analytically(prog, write_counts=False)
        # Visit count of the body = 1 / (1 - 0.9) = 10 per entry.
        assert counts["body"] == pytest.approx(10.0, rel=1e-6)

    def test_entry_count_is_one(self):
        prog = loop_program()
        counts = profile_analytically(prog, write_counts=False)
        assert counts["pre"] == pytest.approx(1.0)

    def test_counts_written_and_scaled(self):
        prog = loop_program(0.5)
        profile_analytically(prog, scale=1000.0)
        assert prog.cfg.block("body").profile_count == pytest.approx(2000, abs=1)

    def test_diamond_splits_flow(self):
        b = ProgramBuilder("d")
        b.block("entry")
        b.op(Opcode.LDA, "x", imm=1)
        b.branch(Opcode.BNE, "x", "right")
        b.block("left")
        b.jump("join")
        b.block("right")
        b.block("join")
        b.ret()
        prog = b.build()
        prog.cfg.block("entry").set_successors(["right", "left"], [0.25, 0.75])
        counts = profile_analytically(prog, write_counts=False)
        assert counts["left"] == pytest.approx(0.75)
        assert counts["right"] == pytest.approx(0.25)
        assert counts["join"] == pytest.approx(1.0)


class TestWalk:
    def test_walk_is_deterministic_per_seed(self):
        prog = loop_program()
        c1 = profile_by_walk(prog, seed=5, write_counts=False)
        c2 = profile_by_walk(prog, seed=5, write_counts=False)
        assert c1 == c2

    def test_walk_approximates_analytic(self):
        prog = loop_program(0.8)
        walk = profile_by_walk(prog, max_instructions=200_000, seed=3, write_counts=False)
        analytic = profile_analytically(prog, write_counts=False)
        ratio_walk = walk["body"] / walk["pre"]
        ratio_analytic = analytic["body"] / analytic["pre"]
        assert ratio_walk == pytest.approx(ratio_analytic, rel=0.15)

    def test_walk_writes_counts(self):
        prog = loop_program()
        profile_by_walk(prog, max_instructions=10_000, seed=1)
        assert prog.cfg.block("body").profile_count > prog.cfg.block("pre").profile_count
