"""Sharded journals + ``repro journal merge``: split, merge, resume.

The acceptance bar: a Table 2 sweep deliberately split across two shard
journals, merged with ``merge_journals``, must resume from the merged
directory to a table bit-identical to an unsharded run — without
recomputing a single row.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.robustness.journal import (
    JournalEntry,
    RunJournal,
    merge_journals,
    parse_journal_line,
    shard_journal_paths,
)

BENCHMARKS = ["compress", "ora", "tomcatv"]
TRACE_LENGTH = 600


def options():
    return EvaluationOptions(trace_length=TRACE_LENGTH)


def rows_as_tuples(result):
    return [
        (
            r.benchmark,
            r.pct_none,
            r.pct_local,
            r.evaluation.single.cycles,
            r.evaluation.dual_none.cycles,
            r.evaluation.dual_local.cycles,
        )
        for r in result.rows
    ]


@pytest.fixture(scope="module")
def reference():
    return rows_as_tuples(run_table2(BENCHMARKS, options()))


def _split_sweep(run_dir):
    """One sweep deliberately split across two shard journals, as if two
    executors/hosts had divided the benchmark list."""
    with RunJournal(run_dir, shard="hostA") as journal:
        run_table2(BENCHMARKS[:1], options(), journal=journal)
    with RunJournal(run_dir, shard="hostB") as journal:
        run_table2(BENCHMARKS[1:], options(), journal=journal)


class TestAcceptanceSplitMergeResume:
    def test_merged_shards_resume_bit_identical(
        self, tmp_path, reference, monkeypatch
    ):
        """ISSUE 6 acceptance: two split shards merge and resume to the
        same fingerprint as an unsharded run."""
        shard_dir = tmp_path / "sharded"
        merged_dir = tmp_path / "merged"
        _split_sweep(shard_dir)
        report = merge_journals([shard_dir], merged_dir)
        assert report.rows_merged == len(BENCHMARKS)
        assert report.conflicts == 0

        # The resume must reuse every merged row, never recompute.
        def explode(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("merged row was recomputed")

        monkeypatch.setattr(
            "repro.experiments.table2.evaluate_workload_resilient", explode
        )
        with RunJournal(merged_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference

    def test_explicit_shard_files_merge_equally(self, tmp_path, reference):
        shard_dir = tmp_path / "sharded"
        merged_dir = tmp_path / "merged"
        _split_sweep(shard_dir)
        files = shard_journal_paths(shard_dir)
        assert [p.name for p in files] == [
            "journal-hostA.jsonl",
            "journal-hostB.jsonl",
        ]
        merge_journals(files, merged_dir)
        with RunJournal(merged_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference


class TestTornLines:
    def test_truncated_final_record_in_one_shard(self, tmp_path, reference):
        """Satellite: a shard whose writer was killed mid-append merges
        cleanly — the torn row is dropped and recomputed on resume."""
        shard_dir = tmp_path / "sharded"
        merged_dir = tmp_path / "merged"
        _split_sweep(shard_dir)
        hostb = shard_dir / "journal-hostB.jsonl"
        # Truncate the final record mid-line: a torn write.
        text = hostb.read_text()
        lines = text.splitlines(keepends=True)
        hostb.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        report = merge_journals([shard_dir], merged_dir)
        assert report.torn_lines == 1
        assert report.rows_merged == len(BENCHMARKS) - 1
        with RunJournal(merged_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference

    def test_garbage_line_between_shards(self, tmp_path):
        shard_dir = tmp_path / "sharded"
        _split_sweep(shard_dir)
        with open(shard_dir / "journal-hostA.jsonl", "a", encoding="utf-8") as fh:
            fh.write("}{ not json at all\n")
        report = merge_journals([shard_dir], tmp_path / "merged")
        assert report.torn_lines == 1
        assert report.rows_merged == len(BENCHMARKS)

    def test_parse_journal_line_kinds(self):
        assert parse_journal_line("   \n") == ("blank", None)
        assert parse_journal_line('{"status": "comp')[0] == "torn"
        assert parse_journal_line('{"status": "heartbeat"}')[0] == "heartbeat"
        assert parse_journal_line(
            '{"status": "event", "kind": "executor_degradation"}'
        )[0] == "event"
        kind, entry = parse_journal_line(
            '{"key": "k", "status": "completed", "fingerprint": "f"}'
        )
        assert kind == "row" and isinstance(entry, JournalEntry)


def _write_row(run_dir, shard, key, fingerprint, status="completed"):
    with RunJournal(run_dir, shard=shard) as journal:
        if status == "completed":
            journal.record_completed(key, fingerprint, payload={"v": shard})
        else:
            journal.record_failed(key, fingerprint, error={"type": "X"})


class TestMergeSemantics:
    def test_duplicates_dropped(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        _write_row(run_dir, "b", "row:1", "fp1")
        report = merge_journals([run_dir], tmp_path / "merged")
        assert report.rows_merged == 1
        assert report.duplicates_dropped == 1
        assert report.conflicts == 0

    def test_completed_beats_failed(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1", status="failed")
        _write_row(run_dir, "b", "row:1", "fp1", status="completed")
        merged_dir = tmp_path / "merged"
        merge_journals([run_dir], merged_dir)
        merged = RunJournal(merged_dir)
        assert merged.entry("row:1").status == "completed"

    def test_conflicting_fingerprints_latest_wins(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp-old")
        _write_row(run_dir, "b", "row:1", "fp-new")
        merged_dir = tmp_path / "merged"
        report = merge_journals([run_dir], merged_dir)
        assert report.conflicts == 1
        assert RunJournal(merged_dir).entry("row:1").fingerprint == "fp-new"

    def test_heartbeats_dropped_events_kept(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir, shard="a") as journal:
            journal.record_heartbeat({"done": 1, "total": 3})
            journal.record_event("executor_degradation", {"reason": "x"})
            journal.record_completed("row:1", "fp1")
        merged_dir = tmp_path / "merged"
        report = merge_journals([run_dir], merged_dir)
        assert report.heartbeats_dropped == 1
        assert report.events_kept == 1
        merged = RunJournal(merged_dir)
        assert merged.heartbeats == []
        assert [e["kind"] for e in merged.events] == ["executor_degradation"]

    def test_artifacts_copied_for_winning_rows(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir, shard="a") as journal:
            journal.record_completed("row:1", "fp1", artifact_value={"big": 1})
        merged_dir = tmp_path / "merged"
        report = merge_journals([run_dir], merged_dir)
        assert report.artifacts_copied == 1
        merged = RunJournal(merged_dir)
        assert merged.load_artifact(merged.entry("row:1")) == {"big": 1}

    def test_missing_artifact_tolerated(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir, shard="a") as journal:
            journal.record_completed("row:1", "fp1", artifact_value={"big": 1})
        (run_dir / "artifacts" / "row_1.pkl").unlink()
        report = merge_journals([run_dir], tmp_path / "merged")
        assert report.artifacts_missing == 1
        assert report.rows_merged == 1


class TestMergeValidation:
    def test_existing_output_journal_rejected(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        out = tmp_path / "merged"
        with RunJournal(out) as journal:
            journal.record_completed("other", "fp")
        with pytest.raises(ConfigError, match="already contains"):
            merge_journals([run_dir], out)

    def test_missing_shard_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            merge_journals([tmp_path / "nope"], tmp_path / "merged")

    def test_empty_run_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ConfigError, match="no journal files"):
            merge_journals([empty], tmp_path / "merged")

    def test_no_shards_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="at least one shard"):
            merge_journals([], tmp_path / "merged")


class TestDryRun:
    def test_dry_run_accounts_without_writing(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        _write_row(run_dir, "b", "row:1", "fp1")  # duplicate across shards
        _write_row(run_dir, "b", "row:2", "fp2")
        out = tmp_path / "merged"
        report = merge_journals([run_dir], out, dry_run=True)
        assert report.rows_merged == 2
        assert report.duplicates_dropped == 1
        assert not out.exists()  # nothing written anywhere

    def test_dry_run_then_real_merge_agree(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        _write_row(run_dir, "b", "row:2", "fp2")
        out = tmp_path / "merged"
        preview = merge_journals([run_dir], out, dry_run=True)
        actual = merge_journals([run_dir], out)
        assert preview.rows_merged == actual.rows_merged
        assert preview.duplicates_dropped == actual.duplicates_dropped
        assert preview.artifacts_missing == actual.artifacts_missing

    def test_dry_run_flag_on_cli(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        merged_dir = tmp_path / "merged"
        main(
            [
                "journal", "merge", str(run_dir),
                "--output", str(merged_dir), "--dry-run",
            ]
        )
        out = capsys.readouterr().out
        assert "dry run: nothing written" in out
        assert not merged_dir.exists()


class TestCLI:
    def test_journal_merge_subcommand(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        _write_row(run_dir, "b", "row:2", "fp2")
        merged_dir = tmp_path / "merged"
        main(["journal", "merge", str(run_dir), "--output", str(merged_dir)])
        out = capsys.readouterr().out
        assert "merged" in out and "rows:" in out
        merged = RunJournal(merged_dir)
        assert {e.key for e in merged.entries()} == {"row:1", "row:2"}

    def test_shard_flag_routes_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        main(
            [
                "table2",
                "--benchmarks",
                "ora",
                "--trace-length",
                "1000",
                "--resume",
                str(run_dir),
                "--shard",
                "host1",
            ]
        )
        assert (run_dir / "journal-host1.jsonl").exists()
        assert not (run_dir / "journal.jsonl").exists()
        rows = [
            parse_journal_line(line)
            for line in (run_dir / "journal-host1.jsonl").read_text().splitlines()
        ]
        assert any(kind == "row" for kind, _ in rows)

    def test_shard_without_resume_rejected(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(
                [
                    "table2",
                    "--benchmarks",
                    "ora",
                    "--trace-length",
                    "1000",
                    "--shard",
                    "host1",
                ]
            )
        assert info.value.code == ConfigError.exit_code
        assert "requires a run directory" in capsys.readouterr().err


class TestShardJournalFormat:
    def test_shard_rows_are_plain_journal_records(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "host.1", "row:1", "fp1")
        path = run_dir / "journal-host.1.jsonl"
        assert path.exists()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["status"] == "completed"
        assert record["schema"] == 1


def _write_spans(run_dir, shard, benchmark, *, wall=False):
    from repro.obs.spans import Span, SpanWriter, part_task_spans

    trace_id = "t" * 16
    with SpanWriter(run_dir, shard=shard) as writer:
        writer.write_all(
            part_task_spans(
                trace_id, benchmark, "single",
                compile_units=1, trace_units=2, sim_units=3,
            )
        )
        if wall:
            writer.write(
                Span(
                    trace_id=trace_id, span_id=f"wall-{shard}".ljust(16, "0"),
                    parent_id=None, kind="dispatch",
                    name=f"{benchmark}:single", start_u=0, end_u=10, attrs={},
                )
            )


class TestSpanMerge:
    def test_overlapping_shard_spans_dedupe(self, tmp_path):
        from repro.obs.spans import read_spans

        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        # Driver and worker both journaled compress's spans; ora's only
        # landed on one shard.  Wall spans stay out of the canonical set.
        _write_spans(run_dir, "a", "compress", wall=True)
        _write_spans(run_dir, "b", "compress")
        _write_spans(run_dir, "b", "ora")
        merged_dir = tmp_path / "merged"
        report = merge_journals([run_dir], merged_dir)
        assert report.spans_merged == 8  # 2 tasks x 4 spans, duplicates folded
        assert report.wall_spans_kept == 1
        assert "spans:" in report.format()
        det = read_spans(merged_dir / "spans.jsonl")
        assert len(det) == 8
        assert len({s.span_id for s in det}) == 8
        assert all(s.deterministic for s in det)
        wall = read_spans(merged_dir / "spans-wall.jsonl")
        assert [s.kind for s in wall] == ["dispatch"]

    def test_merged_spans_are_canonically_ordered(self, tmp_path):
        from repro.obs.spans import canonical_lines, read_spans

        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        _write_spans(run_dir, "b", "ora")
        _write_spans(run_dir, "a", "compress")
        merged_dir = tmp_path / "merged"
        merge_journals([run_dir], merged_dir)
        spans = read_spans(merged_dir / "spans.jsonl")
        want = canonical_lines(spans)
        got = [
            line for line in
            (merged_dir / "spans.jsonl").read_text().splitlines() if line
        ]
        assert got == want

    def test_dry_run_counts_spans_without_writing(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        _write_spans(run_dir, "a", "compress", wall=True)
        out = tmp_path / "merged"
        preview = merge_journals([run_dir], out, dry_run=True)
        assert preview.spans_merged == 4
        assert preview.wall_spans_kept == 1
        assert not out.exists()

    def test_spanless_merge_reports_nothing(self, tmp_path):
        run_dir = tmp_path / "run"
        _write_row(run_dir, "a", "row:1", "fp1")
        merged_dir = tmp_path / "merged"
        report = merge_journals([run_dir], merged_dir)
        assert report.spans_merged == 0 and report.wall_spans_kept == 0
        assert "spans:" not in report.format()
        assert not (merged_dir / "spans.jsonl").exists()
