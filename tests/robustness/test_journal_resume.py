"""Run journal + --resume: interrupted sweeps finish bit-identically.

The acceptance bar for the orchestration layer: a Table 2 sweep killed
mid-run and restarted with the same run directory must produce a final
table bit-identical to an uninterrupted sweep — serial and under
``--jobs 2`` — without recomputing the rows that already landed in the
journal.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.robustness.journal import RunJournal, options_fingerprint

BENCHMARKS = ["compress", "ora", "tomcatv"]
TRACE_LENGTH = 600


def options(jobs=1):
    return EvaluationOptions(trace_length=TRACE_LENGTH, jobs=jobs)


def rows_as_tuples(result):
    return [
        (
            r.benchmark,
            r.pct_none,
            r.pct_local,
            r.evaluation.single.cycles,
            r.evaluation.dual_none.cycles,
            r.evaluation.dual_local.cycles,
        )
        for r in result.rows
    ]


@pytest.fixture(scope="module")
def reference():
    return rows_as_tuples(run_table2(BENCHMARKS, options()))


class TestResumeBitIdentity:
    def test_partial_then_resume_serial(self, tmp_path, reference):
        run_dir = tmp_path / "run"
        # "Interrupted" run: only the first benchmark lands in the journal.
        with RunJournal(run_dir) as journal:
            run_table2(BENCHMARKS[:1], options(), journal=journal)
        # Resume over the full set: the journaled row is reused verbatim.
        with RunJournal(run_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference

    def test_partial_then_resume_jobs2(self, tmp_path, reference):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir) as journal:
            run_table2(BENCHMARKS[:2], options(jobs=2), journal=journal)
        with RunJournal(run_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(jobs=2), journal=journal)
        assert rows_as_tuples(resumed) == reference

    def test_serial_journal_matches_parallel_journal(self, tmp_path, reference):
        # A journal written serially resumes a --jobs run and vice versa:
        # the journaled artifact is the evaluation itself, not a
        # path-dependent encoding of it.
        run_dir = tmp_path / "run"
        with RunJournal(run_dir) as journal:
            run_table2(BENCHMARKS, options(jobs=2), journal=journal)
        with RunJournal(run_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference

    def test_completed_rows_are_not_recomputed(self, tmp_path, monkeypatch):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir) as journal:
            run_table2(BENCHMARKS, options(), journal=journal)

        def explode(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("journaled row was recomputed")

        monkeypatch.setattr(
            "repro.experiments.table2.evaluate_workload_resilient", explode
        )
        with RunJournal(run_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert [r.benchmark for r in resumed.rows] == BENCHMARKS

    def test_changed_options_invalidate_journal(self, tmp_path):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir) as journal:
            run_table2(BENCHMARKS[:1], options(), journal=journal)
        changed = EvaluationOptions(trace_length=TRACE_LENGTH + 100)
        assert options_fingerprint(changed) != options_fingerprint(options())
        with RunJournal(run_dir) as journal:
            entry = journal.completed(
                "table2:compress", options_fingerprint(changed)
            )
        assert entry is None  # stale row must not be reused

    def test_jobs_do_not_change_fingerprint(self):
        # Worker count is execution shape, not inputs: a serial journal
        # must satisfy a --jobs resume.
        assert options_fingerprint(options(jobs=1)) == options_fingerprint(
            options(jobs=4)
        )

    def test_torn_final_line_tolerated(self, tmp_path, reference):
        run_dir = tmp_path / "run"
        with RunJournal(run_dir) as journal:
            run_table2(BENCHMARKS[:2], options(), journal=journal)
        with open(run_dir / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"key": "table2:ora", "status": "comp')  # torn write
        journal = RunJournal(run_dir)
        assert journal.skipped_lines == 1
        with journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference


KILL_DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.robustness.journal import RunJournal

with RunJournal({run_dir!r}) as journal:
    run_table2({benchmarks!r},
               EvaluationOptions(trace_length={trace_length}),
               journal=journal)
"""


class TestKillAndResume:
    def test_sigkill_mid_sweep_then_resume(self, tmp_path, reference):
        """The real thing: SIGKILL the sweep process, resume, compare."""
        run_dir = tmp_path / "run"
        src = str(Path(__file__).resolve().parents[2] / "src")
        driver = KILL_DRIVER.format(
            src=src,
            run_dir=str(run_dir),
            benchmarks=BENCHMARKS,
            trace_length=TRACE_LENGTH,
        )
        proc = subprocess.Popen([sys.executable, "-c", driver])
        journal_path = run_dir / "journal.jsonl"
        # Wait for the first row to be journaled, then kill without mercy.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it; resume still works
            if journal_path.exists() and journal_path.stat().st_size > 0:
                os.kill(proc.pid, signal.SIGKILL)
                break
            time.sleep(0.01)
        proc.wait(timeout=60)

        survivors = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
            if line.strip()
        ]
        assert survivors, "at least one row should have been journaled"

        with RunJournal(run_dir) as journal:
            resumed = run_table2(BENCHMARKS, options(), journal=journal)
        assert rows_as_tuples(resumed) == reference
