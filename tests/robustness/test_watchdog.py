"""Watchdog: cycle budget, forward-progress detection, diagnostics."""

from dataclasses import replace

import pytest

from repro.core.registers import RegisterAssignment
from repro.errors import SimulationError, WatchdogTimeout
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.uarch.processor import Processor

from tests.uarch.helpers import trace_from_instructions


def adds(n):
    return [
        MachineInstruction(
            Opcode.ADDQ, dest=int_reg(2 + 2 * (i % 10)), srcs=(int_reg(0),)
        )
        for i in range(n)
    ]


class TestCycleBudget:
    def test_budget_exceeded_raises_watchdog_timeout(self):
        processor = Processor(
            single_cluster_config(), RegisterAssignment.single_cluster()
        )
        trace = trace_from_instructions(adds(200))
        with pytest.raises(WatchdogTimeout) as info:
            processor.run(trace, max_cycles=3)
        error = info.value
        assert "budget" in error.message
        assert error.cycle is not None
        assert error.diagnostics

    def test_watchdog_timeout_is_a_simulation_error(self):
        # Pre-existing ``except SimulationError`` call sites keep working.
        processor = Processor(
            single_cluster_config(), RegisterAssignment.single_cluster()
        )
        with pytest.raises(SimulationError):
            processor.run(trace_from_instructions(adds(200)), max_cycles=3)

    def test_config_cycle_budget_used_when_no_max_cycles(self):
        config = replace(single_cluster_config(), cycle_budget=3)
        processor = Processor(config, RegisterAssignment.single_cluster())
        with pytest.raises(WatchdogTimeout):
            processor.run(trace_from_instructions(adds(200)))

    def test_explicit_max_cycles_overrides_config_budget(self):
        config = replace(single_cluster_config(), cycle_budget=3)
        processor = Processor(config, RegisterAssignment.single_cluster())
        result = processor.run(trace_from_instructions(adds(50)), max_cycles=100_000)
        assert result.stats.instructions == 50

    def test_generous_default_budget_lets_normal_runs_finish(self):
        processor = Processor(
            dual_cluster_config(), RegisterAssignment.even_odd_dual()
        )
        result = processor.run(trace_from_instructions(adds(100)))
        assert result.stats.instructions == 100


class TestDiagnosticDump:
    def test_dump_names_machine_state_and_recent_events(self):
        processor = Processor(
            dual_cluster_config(), RegisterAssignment.even_odd_dual()
        )
        processor.run(trace_from_instructions(adds(20)))
        dump = "\n".join(processor.diagnostic_dump())
        assert "cycle=" in dump
        assert "cluster 0" in dump and "cluster 1" in dump
        assert "retire" in dump  # recent-event ring has retirement entries

    def test_ring_buffer_is_bounded(self):
        config = replace(dual_cluster_config(), diag_ring_entries=16)
        processor = Processor(config, RegisterAssignment.even_odd_dual())
        processor.run(trace_from_instructions(adds(100)))
        assert len(processor._recent) == 16
