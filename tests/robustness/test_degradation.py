"""Graceful per-benchmark degradation: one sabotaged benchmark never
costs a sweep the results of the others."""

import pytest

from repro.errors import CompileError, ConfigError
from repro.experiments.harness import BenchmarkFailure, EvaluationOptions
from repro.experiments.table2 import format_table2, run_table2
from repro.workloads import spec92


def _sabotaged_builder():
    raise CompileError("sabotaged for testing", benchmark="ora", stage="lowering")


class TestSweepDegradation:
    def test_sweep_completes_past_a_failing_benchmark(self, monkeypatch):
        monkeypatch.setitem(spec92.SPEC92, "ora", _sabotaged_builder)
        result = run_table2(
            ["compress", "ora"], EvaluationOptions(trace_length=1500)
        )
        # The healthy benchmark still produced its row...
        assert [row.benchmark for row in result.rows] == ["compress"]
        assert result.row("compress").evaluation.single.cycles > 0
        # ...and the sabotaged one became a structured failure record.
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, BenchmarkFailure)
        assert failure.benchmark == "ora"
        assert failure.error_type == "CompileError"
        assert "sabotaged" in failure.message
        assert failure.context["stage"] == "lowering"

    def test_failure_table_is_reported(self, monkeypatch):
        monkeypatch.setitem(spec92.SPEC92, "ora", _sabotaged_builder)
        result = run_table2(["compress", "ora"], EvaluationOptions(trace_length=1500))
        text = format_table2(result)
        assert "failed benchmarks (1):" in text
        assert "CompileError" in text
        assert "sabotaged" in text

    def test_clean_sweep_reports_no_failures(self):
        result = run_table2(["ora"], EvaluationOptions(trace_length=1500))
        assert result.failures == []
        assert "failed benchmarks" not in format_table2(result)


class TestUnknownBenchmarks:
    def test_unknown_name_rejected_up_front_with_suggestion(self):
        with pytest.raises(ConfigError) as info:
            run_table2(["compresss"])
        message = str(info.value)
        assert "compresss" in message
        assert "did you mean 'compress'?" in message
        # The valid names are listed.
        assert "ora" in message and "tomcatv" in message

    def test_build_benchmark_suggests_close_match(self):
        with pytest.raises(ConfigError, match="did you mean"):
            spec92.build_benchmark("compres")

    def test_build_benchmark_error_is_still_a_value_error(self):
        with pytest.raises(ValueError):
            spec92.build_benchmark("nope")
