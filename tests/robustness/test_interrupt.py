"""Graceful sweep interruption: no orphans, journal intact, exit 130."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import SweepInterrupted
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.robustness.journal import RunJournal

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestSweepInterrupted:
    def test_exit_code_is_130(self):
        assert SweepInterrupted("stopped").exit_code == 130

    def test_mid_sweep_interrupt_converts_and_preserves_rows(self, tmp_path):
        # A KeyboardInterrupt surfacing anywhere inside the fan-out loop
        # (here: from the per-benchmark completion callback) must shut
        # the pool down and come back typed, with earlier rows delivered.
        from repro.perf.parallel import run_table2_parallel

        delivered = []

        def boom(name, outcome, attempts):
            delivered.append(name)
            raise KeyboardInterrupt("simulated Ctrl-C")

        with pytest.raises(SweepInterrupted) as info:
            run_table2_parallel(
                ["compress", "ora", "tomcatv"],
                EvaluationOptions(trace_length=400, jobs=2),
                on_benchmark=boom,
            )
        assert delivered  # at least one row landed before the interrupt
        assert info.value.context["cause"] == "KeyboardInterrupt"
        assert info.value.exit_code == 130


DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.cli import main
main(["table2", "--trace-length", "1200",
      "--benchmarks", "compress", "ora", "tomcatv", "su2cor",
      "--jobs", "2", "--resume", {run_dir!r}])
"""


def children_of(pid):
    try:
        path = f"/proc/{pid}/task/{pid}/children"
        return [int(p) for p in open(path).read().split()]
    except OSError:  # pragma: no cover - non-Linux
        return []


def alive(pid):
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True


@pytest.mark.skipif(
    not os.path.exists("/proc"), reason="needs /proc for orphan detection"
)
class TestSigtermSweep:
    def test_sigterm_exits_130_no_orphans_journal_resumable(self, tmp_path):
        run_dir = tmp_path / "run"
        driver = DRIVER.format(src=SRC, run_dir=str(run_dir))
        proc = subprocess.Popen(
            [sys.executable, "-c", driver],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        journal_path = run_dir / "journal.jsonl"
        workers = []
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            workers = children_of(proc.pid) or workers
            if journal_path.exists() and journal_path.stat().st_size > 0:
                proc.send_signal(signal.SIGTERM)
                break
            time.sleep(0.01)
        returncode = proc.wait(timeout=60)

        if returncode == 0:
            pytest.skip("sweep finished before SIGTERM landed")
        # Distinct, resumable exit code — not a raw signal death (-15).
        assert returncode == 130
        # The pool's workers died with the sweep: no orphans.
        time.sleep(0.2)
        assert not [pid for pid in workers if alive(pid)]
        # The journal survived flushed and well-formed (every line parses:
        # fsync-per-row means SIGTERM cannot tear the file mid-line).
        lines = journal_path.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)

        # And the run completes bit-identically from where it left off.
        reference = run_table2(
            ["compress", "ora", "tomcatv", "su2cor"],
            EvaluationOptions(trace_length=1200),
        )
        with RunJournal(run_dir) as journal:
            resumed = run_table2(
                ["compress", "ora", "tomcatv", "su2cor"],
                EvaluationOptions(trace_length=1200),
                journal=journal,
            )
        assert [
            (r.benchmark, r.pct_none, r.pct_local) for r in resumed.rows
        ] == [(r.benchmark, r.pct_none, r.pct_local) for r in reference.rows]
