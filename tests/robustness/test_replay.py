"""Replay bundles: serialize a failure, re-run it, get the same error."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.harness import (
    EvaluationOptions,
    evaluate_workload_resilient,
)
from repro.robustness.faultinject import FaultPlan, FaultSpec
from repro.robustness.replay import (
    BUNDLE_SCHEMA,
    ReplayBundle,
    capture_bundle,
    replay,
    replay_file,
)
from repro.workloads.spec92 import SPEC92

TRACE_LENGTH = 600


def failing_options():
    """Options whose dual_none part deterministically dies to a
    persistent trace corruption."""
    return EvaluationOptions(
        trace_length=TRACE_LENGTH,
        fault_plan=FaultPlan(
            specs=(
                FaultSpec(
                    kind="corrupt_operand",
                    benchmark="compress",
                    part="dual_none",
                    at_cycle=50,
                ),
            )
        ),
    )


@pytest.fixture(scope="module")
def failure():
    _, failure, _ = evaluate_workload_resilient(
        SPEC92["compress"](), failing_options()
    )
    assert failure is not None
    return failure


class TestBundleRoundTrip:
    def test_capture_save_load_replay(self, tmp_path, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type=failure.error_type,
            error_message=failure.message,
            error_context=failure.context,
            part=failure.context.get("part"),
        )
        path = bundle.save(tmp_path / "bundle.json")
        result = replay_file(path)
        assert result.reproduced
        assert result.actual_type == failure.error_type
        assert result.actual_message == failure.message

    def test_bundle_file_is_readable_json(self, tmp_path, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type=failure.error_type,
            error_message=failure.message,
            part=failure.context.get("part"),
        )
        path = bundle.save(tmp_path / "bundle.json")
        data = json.loads(path.read_text())
        assert data["schema"] == BUNDLE_SCHEMA
        assert data["benchmark"] == "compress"
        # The fault plan rides along human-readably, not only pickled.
        kinds = [s["kind"] for s in data["fault_plan"]["specs"]]
        assert kinds == ["corrupt_operand"]

    def test_loaded_options_are_sealed_serial(self, tmp_path, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type=failure.error_type,
            error_message=failure.message,
        )
        restored = ReplayBundle.load(bundle.save(tmp_path / "b.json")).options()
        assert restored.jobs == 1
        assert restored.cache is None
        assert restored.retry is None

    def test_mismatch_is_not_reproduced(self, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type="WatchdogTimeout",  # wrong on purpose
            error_message="something else entirely",
            part=failure.context.get("part"),
        )
        result = replay(bundle)
        assert not result.reproduced
        assert result.actual_type == failure.error_type

    def test_healthy_run_does_not_reproduce(self):
        bundle = capture_bundle(
            "compress",
            EvaluationOptions(trace_length=TRACE_LENGTH),  # no faults
            error_type="SimulationError",
            error_message="phantom",
            part="single",
        )
        result = replay(bundle)
        assert not result.reproduced
        assert result.actual_type is None
        assert "completed without error" in result.format()


class TestBundleValidation:
    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        with pytest.raises(ConfigError, match="not valid JSON"):
            ReplayBundle.load(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ConfigError, match="not a replay bundle"):
            ReplayBundle.load(path)

    def test_wrong_schema_rejected(self, tmp_path, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type=failure.error_type,
            error_message=failure.message,
        )
        path = bundle.save(tmp_path / "b.json")
        data = json.loads(path.read_text())
        data["schema"] = BUNDLE_SCHEMA + 1
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigError, match="schema"):
            ReplayBundle.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            ReplayBundle.load(tmp_path / "nope.json")

    def test_unknown_benchmark_rejected(self, tmp_path, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type=failure.error_type,
            error_message=failure.message,
        )
        path = bundle.save(tmp_path / "b.json")
        data = json.loads(path.read_text())
        data["benchmark"] = "not-a-benchmark"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigError, match="unknown benchmark"):
            replay_file(path)

    def test_corrupt_pickle_rejected(self, tmp_path, failure):
        bundle = capture_bundle(
            "compress",
            failing_options(),
            error_type=failure.error_type,
            error_message=failure.message,
        )
        path = bundle.save(tmp_path / "b.json")
        data = json.loads(path.read_text())
        data["options_pickle"] = "AAAA"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigError, match="unreadable"):
            ReplayBundle.load(path).options()
