"""Checkpoint/resume: interrupted simulations continue bit-identically."""

import pytest

from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.robustness.checkpoint import (
    CHECKPOINT_VERSION,
    SimulationCheckpoint,
    finish,
    load_checkpoint,
    restore,
    run_with_checkpoints,
    save_checkpoint,
    snapshot,
)
from repro.uarch.config import dual_cluster_config
from repro.uarch.processor import Processor

from tests.uarch.helpers import trace_from_instructions


def make_trace(n=400):
    # A mix of dependent adds and slow multiplies so the run spans many
    # cycles and carries nontrivial in-flight state at snapshot points.
    instrs = []
    for i in range(n):
        if i % 7 == 3:
            instrs.append(
                MachineInstruction(
                    Opcode.MULQ, dest=int_reg(2), srcs=(int_reg(2), int_reg(4))
                )
            )
        else:
            instrs.append(
                MachineInstruction(
                    Opcode.ADDQ,
                    dest=int_reg(2 + 2 * (i % 8)),
                    srcs=(int_reg(0), int_reg(1 + 2 * (i % 4))),
                )
            )
    return trace_from_instructions(instrs)


def fresh_processor():
    return Processor(dual_cluster_config(), RegisterAssignment.even_odd_dual())


@pytest.fixture(scope="module")
def reference_cycles():
    return fresh_processor().run(make_trace()).cycles


class TestRunWithCheckpoints:
    def test_checkpoints_taken_and_result_identical(self, reference_cycles):
        result, checkpoints = run_with_checkpoints(
            fresh_processor(), make_trace(), interval=100
        )
        assert result.cycles == reference_cycles
        assert len(checkpoints) >= 2
        cycles = [c.cycle for c in checkpoints]
        assert cycles == sorted(cycles)
        assert all(c.config_name == "dual-4way" for c in checkpoints)

    def test_resume_from_any_checkpoint_is_bit_identical(self, reference_cycles):
        _result, checkpoints = run_with_checkpoints(
            fresh_processor(), make_trace(), interval=100
        )
        for checkpoint in (checkpoints[0], checkpoints[len(checkpoints) // 2]):
            resumed = finish(restore(checkpoint))
            assert resumed.cycles == reference_cycles
            assert resumed.stats.instructions == 400

    def test_file_round_trip(self, tmp_path, reference_cycles):
        path = str(tmp_path / "run.ckpt")
        result, checkpoints = run_with_checkpoints(
            fresh_processor(), make_trace(), interval=150, path=path
        )
        loaded = load_checkpoint(path)
        # The file holds the newest snapshot.
        assert loaded.cycle == checkpoints[-1].cycle
        assert finish(restore(loaded)).cycles == reference_cycles

    def test_sink_receives_every_checkpoint(self):
        seen = []
        run_with_checkpoints(
            fresh_processor(), make_trace(), interval=100, sink=seen.append
        )
        assert [c.cycle for c in seen]
        assert all(isinstance(c, SimulationCheckpoint) for c in seen)

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError):
            run_with_checkpoints(fresh_processor(), make_trace(40), interval=0)


class TestSnapshotRestore:
    def test_mid_run_snapshot_resumes(self, reference_cycles):
        processor = fresh_processor()
        processor.start(make_trace())
        assert not processor.advance(max_steps=120)
        checkpoint = snapshot(processor)
        assert checkpoint.cycle == processor.cycle
        assert checkpoint.trace_length == 400
        assert "dual-4way" in checkpoint.summary()
        resumed = finish(restore(checkpoint))
        assert resumed.cycles == reference_cycles
        # The original continues too, independently.
        assert finish(processor).cycles == reference_cycles

    def test_version_mismatch_rejected(self):
        processor = fresh_processor()
        processor.start(make_trace(40))
        processor.advance(max_steps=5)
        checkpoint = snapshot(processor)
        checkpoint.version = CHECKPOINT_VERSION + 1
        with pytest.raises(ConfigError, match="version"):
            restore(checkpoint)

    def test_config_fingerprint_mismatch_rejected(self):
        from repro.uarch.config import single_cluster_config

        processor = fresh_processor()
        processor.start(make_trace(40))
        processor.advance(max_steps=5)
        checkpoint = snapshot(processor)
        # Same machine resumes fine; a different machine is refused.
        restore(checkpoint, expected_config=dual_cluster_config())
        with pytest.raises(ConfigError, match="different machine config"):
            restore(checkpoint, expected_config=single_cluster_config())

    def test_save_and_load(self, tmp_path):
        processor = fresh_processor()
        processor.start(make_trace(40))
        processor.advance(max_steps=10)
        checkpoint = snapshot(processor)
        path = str(tmp_path / "snap.ckpt")
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded.cycle == checkpoint.cycle
        assert loaded.instructions_retired == checkpoint.instructions_retired
        assert loaded.config_fingerprint == checkpoint.config_fingerprint

    def test_bad_header_rejected_before_unpickling(self, tmp_path):
        import pickle

        path = tmp_path / "stale.ckpt"
        # A headerless raw pickle — the v1 on-disk format.
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(ConfigError, match="bad header"):
            load_checkpoint(str(path))

    def test_wrong_payload_type_rejected(self, tmp_path):
        import pickle

        from repro.robustness.checkpoint import CHECKPOINT_MAGIC

        path = tmp_path / "odd.ckpt"
        path.write_bytes(CHECKPOINT_MAGIC + pickle.dumps([1, 2, 3]))
        with pytest.raises(ConfigError, match="not a SimulationCheckpoint"):
            load_checkpoint(str(path))

    def test_truncated_file_rejected(self, tmp_path):
        processor = fresh_processor()
        processor.start(make_trace(40))
        processor.advance(max_steps=5)
        path = str(tmp_path / "torn.ckpt")
        save_checkpoint(snapshot(processor), path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(ConfigError, match="corrupt"):
            load_checkpoint(path)
