"""The structured exception hierarchy (repro.errors)."""

import pytest

from repro.errors import (
    CompileError,
    ConfigError,
    InvariantViolation,
    ReproError,
    SimulationError,
    TraceError,
    WatchdogTimeout,
)


class TestTaxonomy:
    def test_every_error_is_a_repro_error(self):
        for cls in (
            ConfigError,
            TraceError,
            CompileError,
            SimulationError,
            WatchdogTimeout,
            InvariantViolation,
        ):
            assert issubclass(cls, ReproError)

    def test_config_and_trace_errors_are_value_errors(self):
        # Pre-existing ``except ValueError`` call sites keep working.
        assert issubclass(ConfigError, ValueError)
        assert issubclass(TraceError, ValueError)

    def test_watchdog_and_invariant_are_simulation_errors(self):
        assert issubclass(WatchdogTimeout, SimulationError)
        assert issubclass(InvariantViolation, SimulationError)

    def test_exit_codes_distinguish_config_from_simulation(self):
        assert ConfigError.exit_code != SimulationError.exit_code
        assert ConfigError.exit_code == TraceError.exit_code
        for cls in (ConfigError, TraceError, CompileError, SimulationError):
            assert cls.exit_code != 0


class TestContext:
    def test_machine_readable_context(self):
        error = SimulationError(
            "boom", benchmark="compress", cycle=42, cluster=1, seq=7
        )
        assert error.benchmark == "compress"
        assert error.cycle == 42
        assert error.cluster == 1
        assert error.seq == 7
        assert error.context["cycle"] == 42

    def test_none_context_omitted(self):
        error = SimulationError("boom", cycle=3)
        assert "benchmark" not in error.context
        assert error.benchmark is None

    def test_extra_context_kept(self):
        error = ConfigError("bad", field="fetch_width", config="dual-4way")
        assert error.context["field"] == "fetch_width"
        assert error.context["config"] == "dual-4way"

    def test_brief_is_one_line(self):
        error = WatchdogTimeout("wedged", cycle=100, cluster=0)
        brief = error.brief()
        assert "\n" not in brief
        assert "WatchdogTimeout" in brief
        assert "cycle=100" in brief

    def test_str_includes_diagnostics(self):
        error = SimulationError("boom", cycle=1, diagnostics=["line one", "line two"])
        text = str(error)
        assert "line one" in text and "line two" in text

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise TraceError("bad trace", seq=12)
