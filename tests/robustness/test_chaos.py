"""Chaos soak smoke: the orchestration contract holds under induced fire."""

import json

import pytest

from repro.errors import ConfigError
from repro.robustness.chaos import (
    ChaosConfig,
    HealthReport,
    RoundReport,
    random_fault_plan,
    random_host_fault_plan,
    random_worker_fault_plan,
    run_chaos,
)

QUICK = dict(rounds=2, benchmarks=("compress",), trace_length=800)
WORKER_QUICK = dict(
    rounds=1, benchmarks=("compress",), trace_length=600, jobs=2
)


class TestChaosConfig:
    def test_defaults_valid(self):
        ChaosConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"max_faults": 0},
            {"trace_length": 10},
            {"benchmarks": ()},
            {"worker_faults": True, "host_faults": True},
            {"host_faults": True, "hosts": 1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ChaosConfig(**kwargs)


class TestFaultPlanGeneration:
    def test_seeded_plans_are_reproducible(self):
        import random

        a = random_fault_plan(random.Random(7), ("compress",), 1000, 3)
        b = random_fault_plan(random.Random(7), ("compress",), 1000, 3)
        assert a == b
        c = random_fault_plan(random.Random(8), ("compress",), 1000, 3)
        assert a != c  # overwhelmingly likely with 4+ drawn fields

    def test_plans_round_trip_as_dicts(self):
        import random

        from repro.robustness.faultinject import FaultPlan

        plan = random_fault_plan(random.Random(3), ("ora",), 1000, 3)
        assert FaultPlan.from_dict(plan.as_dict()) == plan


class TestChaosSoak:
    def test_quick_soak_is_healthy(self, tmp_path):
        report = run_chaos(
            ChaosConfig(seed=1234, **QUICK), run_dir=tmp_path / "chaos"
        )
        assert isinstance(report, HealthReport)
        assert report.healthy
        assert report.exit_code == 0
        assert len(report.rounds) == 2
        for r in report.rounds:
            assert isinstance(r, RoundReport)
            assert r.completed_rows + r.failed_rows == 1
            assert r.failed_rows == r.bundles_verified  # every failure replays

    def test_health_report_written(self, tmp_path):
        run_dir = tmp_path / "chaos"
        report = run_chaos(ChaosConfig(seed=1234, **QUICK), run_dir=run_dir)
        on_disk = json.loads((run_dir / "health.json").read_text())
        assert on_disk["healthy"] == report.healthy
        assert on_disk["seed"] == 1234
        assert len(on_disk["rounds"]) == 2

    def test_soak_is_deterministic(self):
        a = run_chaos(ChaosConfig(seed=5, **QUICK))
        b = run_chaos(ChaosConfig(seed=5, **QUICK))
        assert [r.fault_plan for r in a.rounds] == [r.fault_plan for r in b.rounds]
        assert [r.failed_rows for r in a.rounds] == [r.failed_rows for r in b.rounds]
        assert [r.completed_rows for r in a.rounds] == [
            r.completed_rows for r in b.rounds
        ]

    def test_parallel_soak_matches_serial(self):
        serial = run_chaos(ChaosConfig(seed=1234, **QUICK))
        parallel = run_chaos(ChaosConfig(seed=1234, jobs=2, **QUICK))
        assert parallel.healthy
        assert [r.failed_rows for r in parallel.rounds] == [
            r.failed_rows for r in serial.rounds
        ]

    def test_format_mentions_verdict(self):
        report = run_chaos(ChaosConfig(seed=1234, **QUICK))
        assert "HEALTHY" in report.format()
        assert "seed=1234" in report.format()


class TestWorkerFaultRounds:
    def test_worker_fault_plans_are_seeded(self):
        import random

        from repro.robustness.faultinject import WORKER_FAULT_KINDS

        a = random_worker_fault_plan(random.Random(7), ("compress",), 3)
        b = random_worker_fault_plan(random.Random(7), ("compress",), 3)
        assert a == b
        assert all(spec.kind in WORKER_FAULT_KINDS for spec in a.specs)

    def test_worker_round_is_healthy_and_bit_identical(self, tmp_path):
        """The executor contract under seeded worker chaos: no leaked
        failures, stats bit-identical to serial, shard journal loadable."""
        run_dir = tmp_path / "chaos"
        report = run_chaos(
            ChaosConfig(seed=4321, worker_faults=True, **WORKER_QUICK),
            run_dir=run_dir,
        )
        assert report.healthy, [r.violations for r in report.rounds]
        assert report.exit_code == 0
        round_report = report.rounds[0]
        assert round_report.mode == "worker-faults"
        assert round_report.violations == []
        assert round_report.completed_rows == 1
        assert round_report.failed_rows == 0
        # The round journals into a shard, the sharded-sweep path.
        shard = run_dir / "round-00" / "journal-chaos-00.jsonl"
        assert shard.exists()


class TestHostFaultRounds:
    def test_host_fault_plans_are_seeded(self):
        import random

        from repro.robustness.faultinject import HOST_FAULT_KINDS

        a = random_host_fault_plan(random.Random(7), ("compress",), 3)
        b = random_host_fault_plan(random.Random(7), ("compress",), 3)
        assert a == b
        assert all(spec.kind in HOST_FAULT_KINDS for spec in a.specs)

    def test_host_round_is_healthy_and_merges_shards(self, tmp_path):
        """The distributed contract under seeded host chaos: real worker
        subprocesses sabotaged mid-sweep, no leaked failures, stats
        bit-identical to serial, shards merged into one journal."""
        run_dir = tmp_path / "chaos"
        report = run_chaos(
            ChaosConfig(
                seed=0, rounds=1, benchmarks=("compress",),
                trace_length=600, host_faults=True, hosts=2,
            ),
            run_dir=run_dir,
        )
        assert report.healthy, [r.violations for r in report.rounds]
        assert report.mode == "host-faults"
        round_report = report.rounds[0]
        assert round_report.mode == "host-faults"
        assert round_report.completed_rows == 1
        # The round keeps its reproduction surface on disk: the fault
        # plan, the coordinator shard, and the merged journal.
        round_dir = run_dir / "round-00"
        assert (round_dir / "host-fault-plan.json").exists()
        assert (round_dir / "journal-chaos-00.jsonl").exists()
        assert (round_dir / "merged" / "journal.jsonl").exists()

    def test_health_report_records_mode_and_config(self, tmp_path):
        run_dir = tmp_path / "chaos"
        run_chaos(
            ChaosConfig(seed=9, rounds=1, benchmarks=("compress",),
                        trace_length=600, worker_faults=True, jobs=2),
            run_dir=run_dir,
        )
        on_disk = json.loads((run_dir / "health.json").read_text())
        assert on_disk["mode"] == "worker-faults"
        # The config makes a failing round reproducible from the report
        # alone: rebuild ChaosConfig(**config) and rerun the same seed.
        config = dict(on_disk["config"])
        config["benchmarks"] = tuple(config["benchmarks"])
        rebuilt = ChaosConfig(**config)
        assert rebuilt.seed == 9
        assert rebuilt.worker_faults is True
