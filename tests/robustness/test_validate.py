"""Pre-simulation validation rejects bad configs, assignments, and traces."""

from dataclasses import replace

import pytest

from repro.compiler.pipeline import compile_program
from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError, TraceError
from repro.ir.machine_program import MachineProgram
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.robustness.faultinject import corrupt_operand, truncate_trace
from repro.robustness.validate import (
    validate_assignment,
    validate_config,
    validate_machine_program,
    validate_run,
    validate_trace,
)
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.workloads.spec92 import build_benchmark
from repro.workloads.tracegen import TraceGenerator

from tests.uarch.helpers import trace_from_instructions


@pytest.fixture(scope="module")
def compiled():
    """A real compiled benchmark: (machine program, trace, assignment)."""
    workload = build_benchmark("compress")
    result = compile_program(workload.program, RegisterAssignment.single_cluster())
    trace = TraceGenerator(
        result.machine, workload.streams, workload.behaviors, seed=7
    ).generate(400)
    return result.machine, trace, RegisterAssignment.single_cluster()


class TestValidateConfig:
    def test_good_configs_pass(self):
        validate_config(single_cluster_config())
        validate_config(dual_cluster_config())

    def test_no_clusters(self):
        config = replace(single_cluster_config(), clusters=())
        with pytest.raises(ConfigError):
            validate_config(config)

    def test_nonpositive_width(self):
        config = replace(dual_cluster_config(), fetch_width=0)
        with pytest.raises(ConfigError, match="fetch_width"):
            validate_config(config)

    def test_negative_buffer_capacity(self):
        base = dual_cluster_config()
        clusters = (replace(base.clusters[0], operand_buffer_entries=-1),) + base.clusters[1:]
        with pytest.raises(ConfigError, match="negative"):
            validate_config(replace(base, clusters=clusters))

    def test_multicluster_needs_transfer_buffers(self):
        # Section 2.1: the master/slave protocol deadlocks with no entries.
        base = dual_cluster_config()
        clusters = tuple(replace(c, result_buffer_entries=0) for c in base.clusters)
        with pytest.raises(ConfigError, match="transfer-buffer"):
            validate_config(replace(base, clusters=clusters))

    def test_single_cluster_may_omit_buffers(self):
        validate_config(single_cluster_config())  # has 0-entry buffers

    def test_error_carries_cluster_context(self):
        base = dual_cluster_config()
        clusters = (base.clusters[0], replace(base.clusters[1], dispatch_queue_entries=0))
        with pytest.raises(ConfigError) as info:
            validate_config(replace(base, clusters=clusters))
        assert info.value.cluster == 1

    def test_bad_replay_threshold(self):
        with pytest.raises(ConfigError, match="replay_threshold"):
            validate_config(replace(dual_cluster_config(), replay_threshold=0))

    def test_negative_cycle_budget(self):
        with pytest.raises(ConfigError, match="cycle_budget"):
            validate_config(replace(dual_cluster_config(), cycle_budget=-1))


class _HoleyAssignment:
    """Stub breaking the total-ownership contract for one register."""

    num_clusters = 2

    def clusters_of(self, reg):
        if reg.name == "r7":
            return frozenset()
        return frozenset({0, 1})


class _OutOfRangeAssignment:
    num_clusters = 2

    def clusters_of(self, reg):
        return frozenset({0, 1, 5}) if reg.name == "r7" else frozenset({0, 1})


class TestValidateAssignment:
    def test_builtin_assignments_pass(self):
        validate_assignment(RegisterAssignment.single_cluster(), single_cluster_config())
        validate_assignment(RegisterAssignment.even_odd_dual(), dual_cluster_config())

    def test_unowned_register_rejected(self):
        with pytest.raises(ConfigError, match="no cluster") as info:
            validate_assignment(_HoleyAssignment())
        assert info.value.context["register"] == "r7"

    def test_out_of_range_owner_rejected(self):
        with pytest.raises(ConfigError, match="out-of-range"):
            validate_assignment(_OutOfRangeAssignment())

    def test_cluster_count_mismatch(self):
        with pytest.raises(ConfigError, match="clusters"):
            validate_assignment(
                RegisterAssignment.even_odd_dual(), single_cluster_config()
            )

    def test_register_file_capacity(self):
        # A cluster must hold a physical register for every architectural
        # register it can rename.
        base = dual_cluster_config()
        clusters = tuple(replace(c, int_physical_registers=2) for c in base.clusters)
        tiny = replace(base, clusters=clusters)
        with pytest.raises(ConfigError, match="physical registers"):
            validate_assignment(RegisterAssignment.even_odd_dual(), tiny)


class TestValidateMachineProgram:
    def test_empty_program(self):
        with pytest.raises(ConfigError, match="no blocks"):
            validate_machine_program(MachineProgram("empty"))

    def test_dangling_successor(self):
        program = MachineProgram("dangling")
        block = program.add_block("b0")
        block.add(MachineInstruction(Opcode.ADDQ, dest=int_reg(2), srcs=(int_reg(0),)))
        block.succ_labels.append("missing")
        program.assign_pcs()
        with pytest.raises(ConfigError, match="missing block"):
            validate_machine_program(program)

    def test_duplicate_pcs(self):
        program = MachineProgram("dup")
        block = program.add_block("b0")
        block.add(MachineInstruction(Opcode.ADDQ, dest=int_reg(2), srcs=(int_reg(0),)))
        block.add(MachineInstruction(Opcode.ADDQ, dest=int_reg(4), srcs=(int_reg(0),)))
        # assign_pcs not run: every meta.pc is 0.
        with pytest.raises(ConfigError, match="duplicate PC"):
            validate_machine_program(program)

    def test_real_program_passes(self, compiled):
        program, _trace, _assignment = compiled
        validate_machine_program(program)


class TestValidateTrace:
    def test_real_trace_passes(self, compiled):
        program, trace, assignment = compiled
        validate_trace(trace, assignment, program, benchmark="compress")

    def test_corrupt_operand_detected(self, compiled):
        program, trace, assignment = compiled
        index, src_position = next(
            (i, 0)
            for i, record in enumerate(trace)
            if record.instr.srcs and record.instr.uid >= 0
        )
        original = trace[index].instr.srcs[src_position]
        replacement = int_reg((original.index + 1) % 30 + 1)
        corrupted = corrupt_operand(trace, index, src_position, replacement)
        with pytest.raises(TraceError, match="disagrees") as info:
            validate_trace(corrupted, assignment, program, benchmark="compress")
        assert info.value.seq == index
        assert info.value.benchmark == "compress"

    def test_truncated_trace_detected(self, compiled):
        program, trace, assignment = compiled
        truncated = truncate_trace(trace, drop_at=10, count=3)
        with pytest.raises(TraceError, match="contiguous") as info:
            validate_trace(truncated, assignment, program)
        assert info.value.context["position"] == 10

    def test_missing_branch_direction(self):
        branch = MachineInstruction(
            Opcode.BNE, srcs=(int_reg(2),), target="b0"
        )
        trace = trace_from_instructions([branch])
        trace[0].taken = None
        with pytest.raises(TraceError, match="direction"):
            validate_trace(trace, RegisterAssignment.single_cluster())

    def test_unowned_operand_register(self):
        add = MachineInstruction(
            Opcode.ADDQ, dest=int_reg(4), srcs=(int_reg(7), int_reg(2))
        )
        trace = trace_from_instructions([add])
        with pytest.raises(TraceError, match="not owned") as info:
            validate_trace(trace, _HoleyAssignment())
        assert info.value.context["register"] == "r7"


class TestValidateRun:
    def test_composite_passes_on_good_inputs(self, compiled):
        program, trace, assignment = compiled
        validate_run(
            single_cluster_config(), assignment, trace, program, benchmark="compress"
        )

    def test_composite_rejects_bad_config_first(self, compiled):
        program, trace, assignment = compiled
        with pytest.raises(ConfigError):
            validate_run(
                replace(single_cluster_config(), retire_width=0),
                assignment,
                trace,
                program,
            )


class TestRenameHeadroom:
    """A register file exactly the size of its accessible namespace has
    zero rename headroom: the first write deadlocks dispatch, so
    validation rejects it up front."""

    @staticmethod
    def _accessible_int(assignment, cluster):
        from repro.isa.registers import RegisterClass, all_registers

        return sum(
            1
            for reg in all_registers()
            if reg.rclass is RegisterClass.INT
            and not reg.is_zero
            and cluster in assignment.clusters_of(reg)
        )

    def test_exact_capacity_rejected(self):
        base = dual_cluster_config()
        assignment = RegisterAssignment.even_odd_dual()
        accessible = self._accessible_int(assignment, 0)
        clusters = (
            replace(base.clusters[0], int_physical_registers=accessible),
            base.clusters[1],
        )
        with pytest.raises(ConfigError, match="spare"):
            validate_assignment(assignment, replace(base, clusters=clusters))

    def test_one_spare_register_accepted(self):
        base = dual_cluster_config()
        assignment = RegisterAssignment.even_odd_dual()
        accessible = self._accessible_int(assignment, 0)
        clusters = (
            replace(base.clusters[0], int_physical_registers=accessible + 1),
            base.clusters[1],
        )
        validate_assignment(assignment, replace(base, clusters=clusters))
