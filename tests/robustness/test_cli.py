"""CLI hardening: one-line diagnostics, distinct exit codes, new flags."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigError, SimulationError


class TestErrorHandling:
    def test_config_error_exit_code_and_one_line_stderr(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["table2", "--benchmarks", "compresss", "--trace-length", "1000"])
        assert info.value.code == ConfigError.exit_code
        captured = capsys.readouterr()
        stderr = captured.err.strip()
        # One line, no traceback, names the close match.
        assert len(stderr.splitlines()) == 1
        assert stderr.startswith("error: ConfigError:")
        assert "did you mean 'compress'?" in stderr

    def test_simulation_error_exit_code_distinct(self, capsys, monkeypatch):
        from repro.experiments import table2 as table2_module

        def explode(*_args, **_kwargs):
            raise SimulationError("model wedged", cycle=99)

        monkeypatch.setattr(table2_module, "run_table2", explode)
        with pytest.raises(SystemExit) as info:
            main(["table2", "--benchmarks", "ora", "--trace-length", "1000"])
        assert info.value.code == SimulationError.exit_code
        assert info.value.code != ConfigError.exit_code
        assert "cycle=99" in capsys.readouterr().err

    def test_successful_run_prints_table(self, capsys):
        main(["table2", "--benchmarks", "ora", "--trace-length", "1000"])
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "ora" in out


class TestRobustnessFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["table2", "--self-check", "--cycle-budget", "12345"]
        )
        assert args.self_check is True
        assert args.cycle_budget == 12345

    def test_flags_default_off(self):
        args = build_parser().parse_args(["table2"])
        assert args.self_check is False
        assert args.cycle_budget == 0

    def test_cycle_time_accepts_flags_too(self):
        args = build_parser().parse_args(["cycle-time", "--self-check"])
        assert args.self_check is True

    def test_self_check_run_matches_plain_run(self, capsys):
        main(["table2", "--benchmarks", "ora", "--trace-length", "1000"])
        plain = capsys.readouterr().out
        main(
            [
                "table2",
                "--benchmarks",
                "ora",
                "--trace-length",
                "1000",
                "--self-check",
            ]
        )
        checked = capsys.readouterr().out
        # Bit-identical cycle counts: the whole table renders identically.
        assert checked == plain

    def test_tiny_cycle_budget_degrades_gracefully(self, capsys):
        # The per-benchmark WatchdogTimeout is caught by the sweep's
        # graceful-degradation path: the run completes and reports the
        # failure table instead of aborting.
        main(
            [
                "table2",
                "--benchmarks",
                "ora",
                "--trace-length",
                "1000",
                "--cycle-budget",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert "failed benchmarks (1):" in captured.out
        assert "WatchdogTimeout" in captured.out
        assert "1 benchmark(s) failed" in captured.err
