"""Fault-injection matrix: every injected fault surfaces as a typed
ReproError with cycle/cluster context — zero hangs, zero silent
completions."""

from dataclasses import replace

import pytest

from repro.core.registers import RegisterAssignment
from repro.errors import (
    InvariantViolation,
    ReproError,
    SimulationError,
    WatchdogTimeout,
)
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import fp_reg, int_reg
from repro.robustness.faultinject import (
    DropPendingEvents,
    DropTransferEntry,
    DuplicateTransferEntry,
    StuckFunctionalUnit,
)
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.uarch.processor import Processor

from tests.uarch.helpers import trace_from_instructions


def add(dest, *srcs):
    return MachineInstruction(
        Opcode.ADDQ, dest=int_reg(dest), srcs=tuple(int_reg(s) for s in srcs)
    )


def divs(dest, *srcs):
    return MachineInstruction(
        Opcode.DIVS, dest=fp_reg(dest), srcs=tuple(fp_reg(s) for s in srcs)
    )


def operand_forward_trace(n=12):
    """Adds with split sources: each dual-distributes with an operand
    forward (even/odd assignment: even dest+src on cluster 0, odd src on
    cluster 1)."""
    return trace_from_instructions([add(4 + 2 * (i % 8), 0, 1) for i in range(n)])


def result_forward_trace(n=12):
    """Adds with even sources and odd dests: each dual-distributes with
    the result forwarded to the slave cluster."""
    return trace_from_instructions([add(1 + 2 * (i % 8), 0, 2) for i in range(n)])


def checked_dual_processor(**overrides):
    config = replace(dual_cluster_config(), self_check=True, **overrides)
    return Processor(config, RegisterAssignment.even_odd_dual())


def run_expecting(processor, trace, error_type, max_cycles=5_000):
    """The run must terminate with ``error_type`` — bounded, never a hang."""
    with pytest.raises(error_type) as info:
        processor.run(trace, max_cycles=max_cycles)
    return info.value


class TestDroppedTransferEntries:
    def test_dropped_operand_entry_raises_invariant_violation(self):
        processor = checked_dual_processor()
        fault = DropTransferEntry(at_cycle=1, cluster=0, kind="operand")
        processor.install_fault(fault)
        error = run_expecting(processor, operand_forward_trace(), InvariantViolation)
        assert fault.fired
        assert "operand" in error.message
        assert error.cycle is not None and error.cycle >= fault.fired_cycle
        assert error.cluster == 0
        assert error.diagnostics  # ring-buffer dump attached

    def test_dropped_result_entry_raises_invariant_violation(self):
        processor = checked_dual_processor()
        fault = DropTransferEntry(at_cycle=1, cluster=1, kind="result")
        processor.install_fault(fault)
        error = run_expecting(processor, result_forward_trace(), InvariantViolation)
        assert fault.fired
        assert "result" in error.message
        assert error.cluster == 1

    def test_without_self_check_still_no_hang(self):
        # The fault model is a *silently wrong* completion without
        # self-check; the point is it must never hang.
        config = dual_cluster_config()
        processor = Processor(config, RegisterAssignment.even_odd_dual())
        fault = DropTransferEntry(at_cycle=1, cluster=0, kind="operand")
        processor.install_fault(fault)
        processor.run(operand_forward_trace(), max_cycles=5_000)


class TestDuplicateTransferEntries:
    @pytest.mark.parametrize("kind", ["operand", "result"])
    def test_bogus_entry_raises_invariant_violation(self, kind):
        processor = checked_dual_processor()
        fault = DuplicateTransferEntry(at_cycle=2, cluster=1, kind=kind)
        processor.install_fault(fault)
        error = run_expecting(processor, operand_forward_trace(), InvariantViolation)
        assert fault.fired
        assert "not in flight" in error.message
        assert error.cluster == 1
        assert error.context["seq"] == DuplicateTransferEntry.BOGUS_SEQ


class TestStuckFunctionalUnit:
    def test_stuck_divider_raises_watchdog_timeout(self):
        config = replace(single_cluster_config(), progress_window=300)
        processor = Processor(config, RegisterAssignment.single_cluster())
        fault = StuckFunctionalUnit(at_cycle=0, cluster=0)
        processor.install_fault(fault)
        trace = trace_from_instructions([divs(2, 1, 1), divs(3, 2, 2)])
        error = run_expecting(
            processor, trace, WatchdogTimeout, max_cycles=1_000_000
        )
        assert fault.fired
        assert "progress" in error.message
        assert error.diagnostics


class TestDeadEventBus:
    def test_dropped_events_raise_deadlock_with_dump(self):
        """Regression for the deadlock path: it must emit the diagnostic
        ring-buffer dump, not a bare message.

        Single cluster: no transfer buffers, so no replay exception can
        rescue the machine — dropping completions wedges it into the
        no-pending-events state deterministically."""
        processor = Processor(
            single_cluster_config(), RegisterAssignment.single_cluster()
        )
        fault = DropPendingEvents(at_cycle=0)
        processor.install_fault(fault)
        trace = trace_from_instructions([add(2, 1, 1), add(3, 2, 2)])
        error = run_expecting(processor, trace, SimulationError)
        assert fault.fired
        assert "deadlock" in error.message
        assert error.cycle is not None
        assert error.seq is not None  # the wedged rob-head instruction
        # The dump carries machine state and the recent-event ring.
        dump = "\n".join(error.diagnostics)
        assert "rob=" in dump
        assert "events" in dump
        assert "cluster 0" in dump

    def test_dual_cluster_dead_bus_hits_the_watchdog(self):
        # On a multicluster machine the dead bus provokes a replay storm
        # (fetch/dispatch activity every threshold cycles), so it is the
        # cycle-budget watchdog that ends the run — still a typed error.
        processor = checked_dual_processor()
        fault = DropPendingEvents(at_cycle=3)
        processor.install_fault(fault)
        error = run_expecting(processor, operand_forward_trace(), WatchdogTimeout)
        assert fault.fired
        assert error.diagnostics


class TestMatrixIsTyped:
    def test_every_injector_yields_a_repro_error(self):
        """The acceptance matrix: injector -> typed error, under one
        bounded driver.  No fault may hang or complete silently."""
        cases = [
            (
                checked_dual_processor(),
                DropTransferEntry(1, 0, "operand"),
                operand_forward_trace(),
            ),
            (
                checked_dual_processor(),
                DropTransferEntry(1, 1, "result"),
                result_forward_trace(),
            ),
            (
                checked_dual_processor(),
                DuplicateTransferEntry(2, 0, "operand"),
                operand_forward_trace(),
            ),
            (checked_dual_processor(), DropPendingEvents(3), operand_forward_trace()),
        ]
        for processor, fault, trace in cases:
            processor.install_fault(fault)
            error = run_expecting(processor, trace, ReproError)
            assert fault.fired, f"{type(fault).__name__} never fired"
            assert error.cycle is not None
            assert error.diagnostics


class TestHostFaultSelectors:
    def test_host_fault_mirrors_worker_fault_semantics(self):
        from repro.robustness.faultinject import FaultPlan, FaultSpec

        plan = FaultPlan(
            specs=(
                FaultSpec(kind="host_kill", benchmark="compress",
                          part="single", clear_after=1),
                FaultSpec(kind="worker_kill", benchmark="compress",
                          part="single"),
            )
        )
        # Dispatch space: active at dispatch 0, cleared at 1.
        assert plan.host_fault("compress", "single", 0) == "host_kill"
        assert plan.host_fault("compress", "single", 1) is None
        assert plan.host_fault("compress", "dual_none", 0) is None
        # The families never cross: a worker fault is invisible to the
        # host selector and vice versa.
        assert plan.worker_fault("compress", "single", 5) == "worker_kill"
        assert plan.host_fault("ora", "single", 0) is None

    def test_host_fault_kinds_round_trip(self):
        from repro.robustness.faultinject import (
            HOST_FAULT_KINDS,
            FaultPlan,
            FaultSpec,
        )

        plan = FaultPlan(
            specs=tuple(FaultSpec(kind=kind) for kind in HOST_FAULT_KINDS)
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan
