"""Retry policy: deterministic backoff, classification, attempt budgets."""

import pytest

from repro.errors import (
    CompileError,
    ConfigError,
    InvariantViolation,
    SimulationError,
    TraceError,
    WatchdogTimeout,
)
from repro.robustness.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    backoff_schedule,
    classify_error,
    run_with_retry,
)


class TestClassification:
    @pytest.mark.parametrize(
        "error, expected",
        [
            (ConfigError("bad config"), PERMANENT),
            (TraceError("bad trace"), PERMANENT),
            (CompileError("bad compile"), PERMANENT),
            (SimulationError("sim died"), TRANSIENT),
            (WatchdogTimeout("budget blown"), TRANSIENT),
            (InvariantViolation("state corrupt"), TRANSIENT),
            (RuntimeError("who knows"), PERMANENT),
        ],
    )
    def test_type_based_defaults(self, error, expected):
        assert classify_error(error) == expected

    def test_context_override_wins(self):
        assert classify_error(SimulationError("x", transient=False)) == PERMANENT
        assert classify_error(ConfigError("x", transient=True)) == TRANSIENT


class TestBackoffSchedule:
    def test_deterministic_per_seed_and_token(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        assert backoff_schedule(policy, "compress:single") == backoff_schedule(
            policy, "compress:single"
        )

    def test_token_and_seed_decorrelate(self):
        policy = RetryPolicy(max_attempts=5, seed=42)
        other_token = backoff_schedule(policy, "ora:single")
        other_seed = backoff_schedule(
            RetryPolicy(max_attempts=5, seed=43), "compress:single"
        )
        base = backoff_schedule(policy, "compress:single")
        assert base != other_token
        assert base != other_seed

    def test_shape(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=0.5,
            jitter=0.0,
        )
        schedule = backoff_schedule(policy, "t")
        assert schedule == [0.1, 0.2, 0.4]

    def test_max_delay_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=2.0,
            jitter=0.0,
        )
        assert max(backoff_schedule(policy, "t")) == 2.0

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0, max_delay=1.0,
            jitter=0.5,
        )
        for delay in backoff_schedule(policy, "t"):
            assert 0.5 <= delay <= 1.5

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)


class TestRunWithRetry:
    def test_transient_retried_to_success(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise SimulationError("flake")
            return "ok"

        outcome = run_with_retry(
            flaky, RetryPolicy(max_attempts=3, base_delay=0.0), sleep=None
        )
        assert outcome.value == "ok"
        assert outcome.retried
        assert calls == [0, 1, 2]
        assert [a.error_type for a in outcome.attempts] == [
            "SimulationError", "SimulationError", None,
        ]

    def test_permanent_fails_immediately(self):
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise ConfigError("inputs are wrong")

        with pytest.raises(ConfigError) as info:
            run_with_retry(
                broken, RetryPolicy(max_attempts=5, base_delay=0.0), sleep=None
            )
        assert calls == [0]
        assert info.value.context["attempts"] == 1
        assert info.value.context["failure_class"] == PERMANENT

    def test_budget_exhaustion_reraises_with_history(self):
        def always(attempt):
            raise SimulationError("never clears")

        with pytest.raises(SimulationError) as info:
            run_with_retry(
                always, RetryPolicy(max_attempts=3, base_delay=0.0), sleep=None
            )
        assert info.value.context["attempts"] == 3
        assert info.value.context["failure_class"] == TRANSIENT

    def test_no_policy_means_single_attempt(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            raise SimulationError("flake")

        with pytest.raises(SimulationError):
            run_with_retry(flaky, None, sleep=None)
        assert calls == [0]

    def test_sleeps_follow_the_schedule(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.25, seed=9)
        expected = backoff_schedule(policy, "tok")
        slept = []

        def flaky(attempt):
            if attempt < 2:
                raise SimulationError("flake")
            return attempt

        run_with_retry(flaky, policy, token="tok", sleep=slept.append)
        assert slept == expected[:2]

    def test_attempt_index_passed_to_fn(self):
        seen = []

        def spy(attempt):
            seen.append(attempt)
            return attempt

        assert run_with_retry(spy, RetryPolicy(max_attempts=4)).value == 0
        assert seen == [0]
