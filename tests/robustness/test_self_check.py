"""The invariant checker observes, never perturbs: self-check-on and
self-check-off runs produce bit-identical cycle counts."""

from dataclasses import replace

import pytest

from repro.compiler.pipeline import compile_program
from repro.core.partition.local import LocalScheduler
from repro.core.registers import RegisterAssignment
from repro.experiments.harness import EvaluationOptions, evaluate_workload
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.uarch.processor import Processor
from repro.workloads.spec92 import build_benchmark
from repro.workloads.tracegen import TraceGenerator


def compiled_trace(partitioned: bool, length: int = 2500):
    workload = build_benchmark("compress")
    assignment = (
        RegisterAssignment.even_odd_dual()
        if partitioned
        else RegisterAssignment.single_cluster()
    )
    result = compile_program(
        workload.program,
        assignment,
        partitioner=LocalScheduler() if partitioned else None,
    )
    return TraceGenerator(
        result.machine, workload.streams, workload.behaviors, seed=7
    ).generate(length)


@pytest.mark.parametrize(
    "config,assignment,partitioned",
    [
        (single_cluster_config(), RegisterAssignment.single_cluster(), False),
        (dual_cluster_config(), RegisterAssignment.even_odd_dual(), False),
        (dual_cluster_config(), RegisterAssignment.even_odd_dual(), True),
    ],
    ids=["single-native", "dual-native", "dual-local"],
)
def test_self_check_is_bit_identical(config, assignment, partitioned):
    trace = compiled_trace(partitioned)
    baseline = Processor(config, assignment).run(trace)
    checked_config = replace(config, self_check=True)
    checked_processor = Processor(checked_config, assignment)
    checked = checked_processor.run(trace)
    assert checked.cycles == baseline.cycles
    assert checked.stats.instructions == baseline.stats.instructions
    assert checked.stats.replay_exceptions == baseline.stats.replay_exceptions
    assert checked.stats.uops_executed == baseline.stats.uops_executed
    # The checker actually ran — this was not a vacuous pass.
    assert checked_processor._invariants is not None
    assert checked_processor._invariants.checks_run > 0


def test_evaluate_workload_self_check_identity():
    workload = build_benchmark("ora")
    plain = evaluate_workload(workload, EvaluationOptions(trace_length=1500))
    checked = evaluate_workload(
        workload, EvaluationOptions(trace_length=1500, self_check=True)
    )
    assert checked.single.cycles == plain.single.cycles
    assert checked.dual_none.cycles == plain.dual_none.cycles
    assert checked.dual_local.cycles == plain.dual_local.cycles
