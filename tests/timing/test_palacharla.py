"""Tests for the calibrated cycle-time delay model."""

import pytest

from repro.timing.palacharla import (
    MachineShape,
    TECH_018,
    TECH_035,
    TECH_080,
    TECHNOLOGIES,
    cycle_time,
    delay_breakdown,
    width_penalty,
)


class TestCalibrationAnchors:
    def test_035um_penalty_is_18_percent(self):
        """The number the paper reads off Palacharla et al. for 0.35um."""
        assert width_penalty(TECH_035) == pytest.approx(0.18, abs=0.005)

    def test_018um_penalty_is_82_percent(self):
        assert width_penalty(TECH_018) == pytest.approx(0.82, abs=0.005)

    def test_penalty_grows_as_features_shrink(self):
        assert width_penalty(TECH_080) < width_penalty(TECH_035) < width_penalty(TECH_018)

    def test_three_generations_available(self):
        assert set(TECHNOLOGIES) == {"0.8um", "0.35um", "0.18um"}

    def test_absolute_cycle_times_shrink_with_features(self):
        t4 = [cycle_time(MachineShape.four_issue(), TECHNOLOGIES[n])
              for n in ("0.8um", "0.35um", "0.18um")]
        assert t4[0] > t4[1] > t4[2]


class TestModelShape:
    def test_wider_machines_slower(self):
        for tech in TECHNOLOGIES.values():
            assert cycle_time(MachineShape.eight_issue(), tech) > cycle_time(
                MachineShape.four_issue(), tech
            )

    def test_monotone_in_window_size(self):
        small = MachineShape(issue_width=4, window_entries=32, physical_registers=64)
        big = MachineShape(issue_width=4, window_entries=128, physical_registers=64)
        assert cycle_time(big, TECH_035) >= cycle_time(small, TECH_035)

    def test_monotone_in_issue_width(self):
        for width in (2, 4, 8):
            pass
        times = [
            cycle_time(MachineShape(w, 64, 64), TECH_018) for w in (2, 4, 8, 16)
        ]
        assert times == sorted(times)

    def test_breakdown_consistent_with_cycle_time(self):
        shape = MachineShape.eight_issue()
        breakdown = delay_breakdown(shape, TECH_018)
        assert breakdown.cycle_time == max(
            breakdown.rename, breakdown.window, breakdown.regfile, breakdown.bypass
        )
        assert breakdown.critical_structure in ("rename", "window", "regfile", "bypass")

    def test_window_is_wakeup_plus_select(self):
        shape = MachineShape.four_issue()
        breakdown = delay_breakdown(shape, TECH_035)
        assert breakdown.window == pytest.approx(
            breakdown.extras["wakeup"] + breakdown.extras["select"]
        )

    def test_wire_dominated_structures_grow_at_018(self):
        """Bypass (pure wire) worsens relative to rename (mostly logic)."""
        shape = MachineShape.eight_issue()
        b35 = delay_breakdown(shape, TECH_035)
        b18 = delay_breakdown(shape, TECH_018)
        assert b18.bypass / b18.rename > b35.bypass / b35.rename

    def test_paper_shapes(self):
        eight = MachineShape.eight_issue()
        four = MachineShape.four_issue()
        assert (eight.issue_width, eight.window_entries) == (8, 128)
        assert (four.issue_width, four.window_entries) == (4, 64)
