"""Property-based tests for the delay model."""

from hypothesis import given, settings, strategies as st

from repro.timing.palacharla import (
    MachineShape,
    Technology,
    cycle_time,
    delay_breakdown,
    width_penalty,
)


@settings(max_examples=40, deadline=None)
@given(
    gate=st.floats(1.0, 100.0),
    wire=st.floats(0.0, 1000.0),
)
def test_property_delays_positive(gate, wire):
    tech = Technology("t", 0.25, gate, wire)
    for shape in (MachineShape.four_issue(), MachineShape.eight_issue()):
        breakdown = delay_breakdown(shape, tech)
        assert breakdown.rename > 0
        assert breakdown.window > 0
        assert breakdown.regfile > 0
        assert breakdown.bypass > 0
        assert breakdown.cycle_time >= max(breakdown.rename, breakdown.bypass)


@settings(max_examples=40, deadline=None)
@given(
    gate=st.floats(1.0, 100.0),
    wire_lo=st.floats(0.0, 100.0),
    wire_delta=st.floats(0.1, 500.0),
)
def test_property_penalty_monotone_in_wire_delay(gate, wire_lo, wire_delta):
    """More wire delay (relative to gate delay) always makes the wide
    machine comparatively worse — the physical effect behind the paper's
    0.18um argument and the calibration's bisection."""
    lo = Technology("lo", 0.25, gate, wire_lo)
    hi = Technology("hi", 0.25, gate, wire_lo + wire_delta)
    assert width_penalty(hi) >= width_penalty(lo) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    width=st.sampled_from([2, 4, 8, 16]),
    window=st.sampled_from([16, 32, 64, 128, 256]),
    regs=st.sampled_from([32, 64, 128, 256]),
    gate=st.floats(5.0, 50.0),
    wire=st.floats(1.0, 200.0),
)
def test_property_cycle_time_monotone_in_every_dimension(width, window, regs, gate, wire):
    tech = Technology("t", 0.25, gate, wire)
    base = cycle_time(MachineShape(width, window, regs), tech)
    wider = cycle_time(MachineShape(width * 2, window, regs), tech)
    deeper = cycle_time(MachineShape(width, window * 2, regs), tech)
    more_regs = cycle_time(MachineShape(width, window, regs * 2), tech)
    assert wider >= base
    assert deeper >= base
    assert more_regs >= base
