"""Tests for the cycle-time run-time analysis."""

import pytest

from repro.timing.analysis import (
    available_clock_reduction,
    break_even_clock_reduction,
    format_cycle_time_report,
    net_performance,
)
from repro.timing.palacharla import TECH_018, TECH_035


class TestBreakEven:
    def test_paper_worked_example(self):
        """Section 4.2: a 25% slowdown needs a 20% smaller clock period."""
        assert break_even_clock_reduction(25.0) == pytest.approx(20.0)

    def test_zero_slowdown_needs_nothing(self):
        assert break_even_clock_reduction(0.0) == pytest.approx(0.0)

    def test_larger_slowdowns_need_more(self):
        assert break_even_clock_reduction(41.0) > break_even_clock_reduction(14.0)


class TestAvailableReduction:
    def test_035_is_insufficient_for_worst_case(self):
        """The paper's conclusion at 0.35um: 15% available < 20% needed."""
        available = available_clock_reduction(TECH_035)
        needed = break_even_clock_reduction(25.0)
        assert available < needed

    def test_018_exceeds_worst_case(self):
        """At 0.18um the ~45% advantage dwarfs the 20% requirement."""
        available = available_clock_reduction(TECH_018)
        needed = break_even_clock_reduction(25.0)
        assert available > needed

    def test_available_reduction_values(self):
        assert available_clock_reduction(TECH_035) == pytest.approx(15.3, abs=0.5)
        assert available_clock_reduction(TECH_018) == pytest.approx(45.1, abs=0.5)


class TestNetPerformance:
    def test_slowdown_beaten_by_clock_at_018(self):
        # 25% more cycles on the dual machine.
        net = net_performance("x", single_cycles=100, dual_cycles=125, tech=TECH_018)
        assert net.runtime_ratio < 1.0
        assert net.net_speedup_pct > 0

    def test_slowdown_not_recovered_at_035(self):
        net = net_performance("x", single_cycles=100, dual_cycles=125, tech=TECH_035)
        assert net.runtime_ratio > 1.0
        assert net.net_speedup_pct < 0

    def test_equal_cycles_always_wins(self):
        for tech in (TECH_035, TECH_018):
            net = net_performance("x", 100, 100, tech)
            assert net.net_speedup_pct > 0

    def test_ratio_math(self):
        net = net_performance("x", 100, 150, TECH_018)
        assert net.cycle_ratio == pytest.approx(1.5)
        assert net.runtime_ratio == pytest.approx(net.cycle_ratio * net.clock_ratio)


class TestReport:
    def test_report_mentions_break_even(self):
        text = format_cycle_time_report()
        assert "break-even" in text
        assert "0.35um" in text and "0.18um" in text
