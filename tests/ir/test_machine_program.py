"""Tests for machine programs."""

import pytest

from repro.ir.machine_program import (
    INSTRUCTION_BYTES,
    MachineInstrMeta,
    MachineProgram,
)
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg


def small_program():
    mp = MachineProgram("p")
    b0 = mp.add_block("b0")
    b0.add(MachineInstruction(Opcode.LDA, dest=int_reg(0), imm=1))
    b0.add(
        MachineInstruction(Opcode.LDQ, dest=int_reg(1), srcs=(int_reg(0),)),
        MachineInstrMeta(mem_stream="arr"),
    )
    b1 = mp.add_block("b1")
    b1.add(MachineInstruction(Opcode.RET))
    return mp


class TestStructure:
    def test_entry_is_first(self):
        assert small_program().entry.label == "b0"

    def test_duplicate_label_rejected(self):
        mp = small_program()
        with pytest.raises(ValueError):
            mp.add_block("b0")

    def test_instruction_count(self):
        assert small_program().instruction_count() == 3

    def test_meta_parallel_to_instructions(self):
        mp = small_program()
        for block in mp.blocks():
            assert len(block.meta) == len(block.instructions)

    def test_meta_annotation_preserved(self):
        mp = small_program()
        metas = [m for _i, m in mp.all_instructions()]
        assert metas[1].mem_stream == "arr"


class TestPcAssignment:
    def test_assign_pcs_dense(self):
        mp = small_program()
        mp.assign_pcs(base=0x1000)
        pcs = [m.pc for _i, m in mp.all_instructions()]
        assert pcs == [0x1000, 0x1000 + INSTRUCTION_BYTES, 0x1000 + 2 * INSTRUCTION_BYTES]

    def test_assign_pcs_sets_uids(self):
        mp = small_program()
        mp.assign_pcs()
        uids = [i.uid for i, _m in mp.all_instructions()]
        assert uids == [0, 1, 2]

    def test_format_contains_blocks(self):
        text = small_program().format()
        assert "b0:" in text and "b1:" in text
