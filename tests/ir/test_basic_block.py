"""Tests for basic blocks."""

import pytest

from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import ILInstruction
from repro.ir.values import ILValue
from repro.isa.opcodes import Opcode


def value(vid, name="v"):
    return ILValue(vid, f"{name}{vid}")


def alu(dest, *srcs):
    return ILInstruction(Opcode.ADDQ, dest=dest, srcs=srcs)


class TestTerminator:
    def test_empty_block_has_no_terminator(self):
        assert BasicBlock("b").terminator is None

    def test_alu_tail_is_not_terminator(self):
        block = BasicBlock("b", [alu(value(0))])
        assert block.terminator is None
        assert block.body == block.instructions

    def test_branch_tail_is_terminator(self):
        branch = ILInstruction(Opcode.BNE, srcs=(value(0),), target="t")
        block = BasicBlock("b", [alu(value(1)), branch])
        assert block.terminator is branch
        assert block.body == block.instructions[:-1]

    def test_add_after_terminator_rejected(self):
        block = BasicBlock("b")
        block.add(ILInstruction(Opcode.BR, target="t"))
        with pytest.raises(ValueError):
            block.add(alu(value(0)))


class TestSuccessors:
    def test_set_successors_with_probs(self):
        block = BasicBlock("b")
        block.set_successors(["x", "y"], [0.25, 0.75])
        assert block.succ_labels == ["x", "y"]
        assert block.edge_probs == {"x": 0.25, "y": 0.75}

    def test_default_probs_uniform(self):
        block = BasicBlock("b")
        block.set_successors(["x", "y"])
        assert block.edge_probs["x"] == pytest.approx(0.5)

    def test_probs_must_sum_to_one(self):
        block = BasicBlock("b")
        with pytest.raises(ValueError):
            block.set_successors(["x", "y"], [0.5, 0.2])

    def test_probs_length_must_match(self):
        block = BasicBlock("b")
        with pytest.raises(ValueError):
            block.set_successors(["x"], [0.5, 0.5])


class TestMisc:
    def test_len_and_iter(self):
        instrs = [alu(value(i)) for i in range(3)]
        block = BasicBlock("b", instrs)
        assert len(block) == 3
        assert list(block) == instrs

    def test_format_contains_label_and_count(self):
        block = BasicBlock("hot", [alu(value(0))])
        block.profile_count = 99
        text = block.format()
        assert "hot" in text
        assert "99" in text
