"""Tests for the control-flow graph."""

import pytest

from repro.ir.builder import ProgramBuilder
from repro.ir.cfg import ControlFlowGraph
from repro.ir.basic_block import BasicBlock
from repro.isa.opcodes import Opcode


def diamond_program():
    """entry -> (then|else) -> join, with a loop on join."""
    b = ProgramBuilder("diamond")
    x = b.value("x")
    b.block("entry")
    b.op(Opcode.LDA, x, imm=1)
    b.branch(Opcode.BNE, x, "else_")
    b.block("then")
    b.op(Opcode.ADDQ, "y", x, x)
    b.jump("join")
    b.block("else_")
    b.op(Opcode.SUBQ, "y2", x, x)
    b.block("join")
    b.op(Opcode.ADDQ, "z", x, x)
    b.branch(Opcode.BNE, "z", "join")
    b.block("exit")
    b.ret()
    return b.build()


class TestConstruction:
    def test_duplicate_label_rejected(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock("a"))
        with pytest.raises(ValueError):
            cfg.add_block(BasicBlock("a"))

    def test_entry_is_first_block(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock("first"))
        cfg.add_block(BasicBlock("second"))
        assert cfg.entry.label == "first"

    def test_empty_cfg_entry_raises(self):
        with pytest.raises(ValueError):
            ControlFlowGraph().entry


class TestFinalize:
    def test_fallthrough_wired(self):
        prog = diamond_program()
        # `then` ends with a jump; `else_` falls through to join.
        assert prog.cfg.block("else_").succ_labels == ["join"]

    def test_conditional_gets_taken_then_fallthrough(self):
        prog = diamond_program()
        assert prog.cfg.block("entry").succ_labels == ["else_", "then"]

    def test_ret_is_program_exit(self):
        prog = diamond_program()
        assert prog.cfg.block("exit").succ_labels == []

    def test_unknown_edge_target_rejected(self):
        b = ProgramBuilder("bad")
        b.block("only")
        b.jump("nowhere")
        with pytest.raises(ValueError):
            b.build()


class TestTraversals:
    def test_reverse_postorder_starts_at_entry(self):
        prog = diamond_program()
        rpo = prog.cfg.reverse_postorder()
        assert rpo[0] == "entry"
        assert set(rpo) == set(prog.cfg.labels())

    def test_rpo_places_preds_before_succs_in_dags(self):
        prog = diamond_program()
        rpo = prog.cfg.reverse_postorder()
        assert rpo.index("entry") < rpo.index("then")
        assert rpo.index("then") < rpo.index("join") or rpo.index("else_") < rpo.index("join")

    def test_back_edges_found(self):
        prog = diamond_program()
        assert ("join", "join") in prog.cfg.back_edges()

    def test_predecessor_map(self):
        prog = diamond_program()
        preds = prog.cfg.predecessor_map()
        assert set(preds["join"]) == {"then", "else_", "join"}
        assert preds["entry"] == []

    def test_layout_index(self):
        prog = diamond_program()
        assert prog.cfg.layout_index("entry") == 0
        assert prog.cfg.layout_index("exit") == 4


class TestSuccessorsAccessors:
    def test_successors_returns_blocks(self):
        prog = diamond_program()
        succs = prog.cfg.successors("entry")
        assert [s.label for s in succs] == ["else_", "then"]

    def test_contains(self):
        prog = diamond_program()
        assert "join" in prog.cfg
        assert "missing" not in prog.cfg
