"""Tests for the program builder and IL program container."""

import pytest

from repro.ir.builder import ProgramBuilder, sequence_probs
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass


class TestValues:
    def test_value_reuse_by_name(self):
        b = ProgramBuilder("p")
        assert b.value("x") is b.value("x")

    def test_fp_value_class(self):
        b = ProgramBuilder("p")
        assert b.fp_value("f").rclass is RegisterClass.FP

    def test_stack_pointer_flag(self):
        b = ProgramBuilder("p")
        sp = b.stack_pointer_value()
        assert sp.is_stack_pointer
        assert b.program.stack_pointer is sp

    def test_global_pointer_flag(self):
        b = ProgramBuilder("p")
        gp = b.global_pointer_value()
        assert gp.is_global_pointer
        assert b.program.global_pointer is gp

    def test_fresh_names_unique(self):
        b = ProgramBuilder("p")
        v1 = b.program.new_value()
        v2 = b.program.new_value()
        assert v1.name != v2.name

    def test_duplicate_explicit_names_disambiguated(self):
        b = ProgramBuilder("p")
        v1 = b.program.new_value("a")
        v2 = b.program.new_value("a")
        assert v1.name != v2.name


class TestEmission:
    def test_op_writes_dest_with_class_from_opcode(self):
        b = ProgramBuilder("p")
        b.block("b0")
        dest = b.op(Opcode.ADDT, "facc", "facc", "facc")
        assert dest.rclass is RegisterClass.FP

    def test_load_store_streams_recorded(self):
        b = ProgramBuilder("p")
        b.block("b0")
        base = b.value("base")
        b.load("x", base, stream="arr")
        b.store("x", base, stream="arr")
        load, store = b.current.instructions
        assert load.mem_stream == "arr"
        assert store.mem_stream == "arr"
        assert store.dest is None

    def test_branch_requires_conditional_opcode(self):
        b = ProgramBuilder("p")
        b.block("b0")
        with pytest.raises(ValueError):
            b.branch(Opcode.BR, "x", "b0")

    def test_branch_model_annotation(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=1)
        b.branch(Opcode.BNE, "x", "b0", model="m1")
        assert b.current.terminator.branch_model == "m1"

    def test_emit_without_block_raises(self):
        b = ProgramBuilder("p")
        with pytest.raises(ValueError):
            b.op(Opcode.LDA, "x", imm=0)


class TestProgram:
    def test_build_assigns_uids_in_layout_order(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=0)
        b.op(Opcode.LDA, "y", imm=1)
        b.block("b1")
        b.op(Opcode.ADDQ, "z", "x", "y")
        prog = b.build()
        uids = [i.uid for i in prog.all_instructions()]
        assert uids == [0, 1, 2]

    def test_block_of_uid(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=0)
        b.block("b1")
        b.op(Opcode.ADDQ, "z", "x", "x")
        prog = b.build()
        mapping = prog.block_of_uid()
        assert mapping[0] == "b0"
        assert mapping[1] == "b1"

    def test_instruction_count(self):
        b = ProgramBuilder("p")
        b.block("b0")
        b.op(Opcode.LDA, "x", imm=0)
        b.ret()
        prog = b.build()
        assert prog.instruction_count() == 2

    def test_format_lists_blocks(self):
        b = ProgramBuilder("p")
        b.block("hello")
        b.op(Opcode.LDA, "x", imm=0)
        text = b.build().format()
        assert "hello" in text
        assert "lda" in text

    def test_sequence_probs(self):
        probs = sequence_probs(["a", "b"])
        assert probs == {"a": 0.5, "b": 0.5}
