"""Artifact cache: fingerprints, tiers, counters, invalidation, keys."""

import pickle

import pytest

from repro.compiler.pipeline import CompilerOptions
from repro.core.partition.local import LocalScheduler
from repro.core.registers import RegisterAssignment
from repro.experiments.harness import EvaluationOptions, evaluate_workload
from repro.perf.cache import ArtifactCache, CacheStats, compile_key, trace_key
from repro.perf.fingerprint import fingerprint
from repro.workloads.spec92 import SPEC92

TL = 1500


class TestFingerprint:
    def test_stable_across_calls(self):
        workload = SPEC92["ora"]()
        assert fingerprint(workload.program) == fingerprint(workload.program)

    def test_equal_rebuilt_programs_fingerprint_equal(self):
        # The builders are deterministic; two fresh builds must collide.
        assert fingerprint(SPEC92["ora"]().program) == fingerprint(
            SPEC92["ora"]().program
        )

    def test_distinct_programs_fingerprint_differently(self):
        assert fingerprint(SPEC92["ora"]().program) != fingerprint(
            SPEC92["compress"]().program
        )

    def test_sets_are_order_insensitive(self):
        assert fingerprint({"a", "b", "c"}) == fingerprint({"c", "a", "b"})

    def test_unsupported_type_is_an_error_not_a_silent_fallback(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestMemoryTier:
    def test_hit_miss_counters(self):
        cache = ArtifactCache()
        assert cache.get("compile", "k") is None
        cache.put("compile", "k", "artifact")
        assert cache.get("compile", "k") == "artifact"
        assert cache.stats.compile_misses == 1
        assert cache.stats.compile_hits == 1
        assert cache.stats.disk_hits == 0 and cache.stats.disk_writes == 0

    def test_kinds_counted_separately(self):
        cache = ArtifactCache()
        cache.get("trace", "k")
        cache.put("trace", "k", [1])
        cache.get("trace", "k")
        assert cache.stats.trace_misses == 1 and cache.stats.trace_hits == 1
        assert cache.stats.compile_hits == cache.stats.compile_misses == 0

    def test_empty_cache_is_still_a_real_cache(self):
        # Regression: `cache or default` discarded empty caches (len == 0
        # is falsy), silently resetting the caller's stats accounting.
        cache = ArtifactCache()
        workload = SPEC92["ora"]()
        evaluate_workload(workload, EvaluationOptions(trace_length=TL), cache=cache)
        assert cache.stats.misses > 0


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        first = ArtifactCache(tmp_path)
        first.put("compile", "k", {"x": 1})
        assert first.stats.disk_writes == 1
        second = ArtifactCache(tmp_path)
        assert second.get("compile", "k") == {"x": 1}
        assert second.stats.disk_hits == 1
        assert second.stats.compile_hits == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("trace", "k", [1, 2])
        (victim,) = list(tmp_path.glob("trace-*.pkl"))
        victim.write_bytes(b"not a pickle")
        fresh = ArtifactCache(tmp_path)
        assert fresh.get("trace", "k") is None
        assert fresh.stats.trace_misses == 1

    def test_atomic_writes_leave_no_temp_files(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("compile", "k", "v")
        assert not list(tmp_path.glob("*.tmp"))


class TestInvalidation:
    def test_invalidate_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("compile", "a", 1)
        cache.put("trace", "b", 2)
        dropped = cache.invalidate()
        assert dropped == 2
        assert cache.get("compile", "a") is None
        assert not list(tmp_path.glob("*.pkl"))
        assert cache.stats.invalidations == 1

    def test_invalidate_one_kind(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("compile", "a", 1)
        cache.put("trace", "b", 2)
        cache.invalidate(kind="compile")
        assert cache.get("compile", "a") is None
        assert cache.get("trace", "b") == 2

    def test_invalidate_one_key(self):
        cache = ArtifactCache()
        cache.put("compile", "a", 1)
        cache.put("compile", "b", 2)
        cache.invalidate(kind="compile", key="a")
        assert cache.get("compile", "a") is None
        assert cache.get("compile", "b") == 2

    def test_key_without_kind_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache().invalidate(key="a")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ArtifactCache().invalidate(kind="nope")


class TestKeySensitivity:
    """Anything that can change the artifact must change the key."""

    def _ckey(self, name="ora", partitioner=None, options=None):
        workload = SPEC92[name]()
        return compile_key(
            workload.name,
            workload.program,
            RegisterAssignment.even_odd_dual(),
            partitioner,
            options or CompilerOptions(),
        )

    def test_same_inputs_same_key(self):
        assert self._ckey() == self._ckey()

    def test_program_changes_key(self):
        assert self._ckey("ora") != self._ckey("compress")

    def test_partitioner_changes_key(self):
        assert self._ckey(partitioner=LocalScheduler()) != self._ckey(
            partitioner=LocalScheduler(imbalance_threshold=7)
        )

    def test_assignment_changes_key(self):
        workload = SPEC92["ora"]()
        even_odd = compile_key(
            workload.name, workload.program,
            RegisterAssignment.even_odd_dual(), None, CompilerOptions(),
        )
        low_high = compile_key(
            workload.name, workload.program,
            RegisterAssignment.low_high_dual(), None, CompilerOptions(),
        )
        assert even_odd != low_high

    def test_seed_and_length_change_trace_key(self):
        workload = SPEC92["ora"]()
        base = trace_key("ck", workload.streams, workload.behaviors, 7, 1000)
        assert base == trace_key("ck", workload.streams, workload.behaviors, 7, 1000)
        assert base != trace_key("ck", workload.streams, workload.behaviors, 8, 1000)
        assert base != trace_key("ck", workload.streams, workload.behaviors, 7, 1001)
        assert base != trace_key("other", workload.streams, workload.behaviors, 7, 1000)


class TestWarmEvaluation:
    def test_warm_cache_skips_recompilation_and_is_bit_identical(self, tmp_path):
        options = EvaluationOptions(trace_length=TL)
        cold_cache = ArtifactCache(tmp_path)
        cold = evaluate_workload(SPEC92["ora"](), options, cache=cold_cache)
        assert cold_cache.stats.compile_misses == 2  # native + rescheduled
        assert cold_cache.stats.trace_misses == 2

        warm_cache = ArtifactCache(tmp_path)
        warm = evaluate_workload(SPEC92["ora"](), options, cache=warm_cache)
        assert warm_cache.stats.compile_misses == 0
        assert warm_cache.stats.trace_misses == 0
        assert warm_cache.stats.compile_hits == 3  # one per part
        assert (warm.single.cycles, warm.dual_none.cycles, warm.dual_local.cycles) == (
            cold.single.cycles, cold.dual_none.cycles, cold.dual_local.cycles,
        )

    def test_changed_seed_misses(self, tmp_path):
        evaluate_workload(
            SPEC92["ora"](), EvaluationOptions(trace_length=TL),
            cache=ArtifactCache(tmp_path),
        )
        rerun = ArtifactCache(tmp_path)
        evaluate_workload(
            SPEC92["ora"](), EvaluationOptions(trace_length=TL, trace_seed=11),
            cache=rerun,
        )
        assert rerun.stats.compile_misses == 0  # binary unchanged
        assert rerun.stats.trace_misses == 2  # both binaries re-traced

    def test_changed_length_misses(self, tmp_path):
        evaluate_workload(
            SPEC92["ora"](), EvaluationOptions(trace_length=TL),
            cache=ArtifactCache(tmp_path),
        )
        rerun = ArtifactCache(tmp_path)
        evaluate_workload(
            SPEC92["ora"](), EvaluationOptions(trace_length=TL + 1), cache=rerun
        )
        assert rerun.stats.trace_misses == 2

    def test_changed_partitioner_misses_rescheduled_binary_only(self, tmp_path):
        evaluate_workload(
            SPEC92["ora"](), EvaluationOptions(trace_length=TL),
            cache=ArtifactCache(tmp_path),
        )
        rerun = ArtifactCache(tmp_path)
        evaluate_workload(
            SPEC92["ora"](),
            EvaluationOptions(
                trace_length=TL, partitioner=LocalScheduler(imbalance_threshold=9)
            ),
            cache=rerun,
        )
        assert rerun.stats.compile_misses == 1  # only the partitioned compile
        assert rerun.stats.compile_hits == 2  # native binary reused

    def test_changed_program_misses(self, tmp_path):
        evaluate_workload(
            SPEC92["ora"](), EvaluationOptions(trace_length=TL),
            cache=ArtifactCache(tmp_path),
        )
        rerun = ArtifactCache(tmp_path)
        evaluate_workload(
            SPEC92["compress"](), EvaluationOptions(trace_length=TL), cache=rerun
        )
        # Both compress binaries recompiled; nothing reused from ora's
        # disk entries (the one memory hit is compress's own native
        # binary shared between the single and dual_none parts).
        assert rerun.stats.compile_misses == 2
        assert rerun.stats.disk_hits == 0


class TestCacheStats:
    def test_delta_and_merge_roundtrip(self):
        stats = CacheStats(compile_hits=5, trace_misses=2, disk_writes=1)
        baseline = CacheStats(compile_hits=3)
        delta = stats.delta(baseline)
        assert delta.compile_hits == 2 and delta.trace_misses == 2
        merged = CacheStats()
        merged.merge(baseline)
        merged.merge(delta)
        assert merged == stats

    def test_as_dict_and_format(self):
        stats = CacheStats(compile_hits=1, compile_misses=2)
        payload = stats.as_dict()
        assert payload["hits"] == 1 and payload["misses"] == 2
        assert "compile 1 hit/2 miss" in stats.format()

    def test_artifacts_pickle(self, tmp_path):
        # The disk tier and the process pool both require picklable
        # compile/trace artifacts.
        from repro.experiments.harness import evaluate_workload_part

        outcome = evaluate_workload_part(
            SPEC92["ora"](), "single", EvaluationOptions(trace_length=TL)
        )
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.sim.cycles == outcome.sim.cycles
