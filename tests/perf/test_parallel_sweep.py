"""The --jobs sweep engine: bit-identity, degradation, driver parity."""

import pytest

from repro.errors import CompileError, ConfigError
from repro.experiments.ablations import run_assignment_ablation, run_queue_size_ablation
from repro.experiments.figure6 import run_figure6_sweep
from repro.experiments.harness import EvaluationOptions
from repro.experiments.reassignment import run_reassignment_demo
from repro.experiments.table2 import run_table2
from repro.perf.cache import ArtifactCache
from repro.perf.parallel import parallel_map, resolve_jobs
from repro.workloads import spec92

TL = 1200


def _row_tuples(result):
    return [
        (
            row.benchmark,
            row.pct_none,
            row.pct_local,
            row.evaluation.single.cycles,
            row.evaluation.dual_none.cycles,
            row.evaluation.dual_local.cycles,
        )
        for row in result.rows
    ]


class TestResolveJobs:
    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cores(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_is_a_config_error(self):
        # Negative worker counts used to be silently clamped; a typo'd
        # ``--jobs -2`` must be loud instead.
        with pytest.raises(ConfigError, match="jobs"):
            resolve_jobs(-1)
        with pytest.raises(ConfigError):
            resolve_jobs(-100)

    def test_absurd_oversubscription_is_a_config_error(self):
        with pytest.raises(ConfigError, match="exceeds"):
            resolve_jobs(10_000)

    def test_moderate_oversubscription_is_allowed(self):
        import os

        # Up to 4x the cores (floor 64) is legitimate oversubscription.
        ceiling = max(4 * (os.cpu_count() or 1), 64)
        assert resolve_jobs(ceiling) == ceiling
        with pytest.raises(ConfigError):
            resolve_jobs(ceiling + 1)


class TestParallelMap:
    def test_serial_path_for_single_job(self):
        assert parallel_map(abs, [-1, 2, -3], jobs=1) == [1, 2, 3]

    def test_pool_preserves_order(self):
        assert parallel_map(abs, [-5, -4, -3, -2], jobs=2) == [5, 4, 3, 2]


class TestTable2BitIdentity:
    def test_full_sweep_parallel_equals_serial(self):
        serial = run_table2(None, EvaluationOptions(trace_length=TL))
        parallel = run_table2(None, EvaluationOptions(trace_length=TL, jobs=2))
        assert len(serial.rows) == len(spec92.SPEC92)
        assert _row_tuples(parallel) == _row_tuples(serial)
        assert parallel.failures == serial.failures == []

    def test_full_stats_surface_bit_identical(self):
        """Every stat — not just cycle counts — survives the worker trip.

        ``SimulationStats.as_dict()`` is the full fingerprint surface
        (issue counts, scenario mix, buffer stats, cache counters); a
        sweep path that drops or garbles any field fails here even if
        the headline percentages agree.
        """
        serial = run_table2(["compress"], EvaluationOptions(trace_length=TL))
        parallel = run_table2(
            ["compress"], EvaluationOptions(trace_length=TL, jobs=2)
        )
        s_ev, p_ev = serial.rows[0].evaluation, parallel.rows[0].evaluation
        for part in ("single", "dual_none", "dual_local"):
            s_stats = getattr(s_ev, part).stats.as_dict()
            p_stats = getattr(p_ev, part).stats.as_dict()
            assert p_stats == s_stats, f"stats diverge for part {part!r}"
            # Buffer stats came home from the worker, not as defaults.
            if part != "single":
                clusters = p_stats["clusters"]
                assert any(
                    c["operand_buffer"] is not None for c in clusters
                ), "worker dropped transfer-buffer stats"

    def test_parallel_honours_shared_disk_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        first = run_table2(
            ["ora"], EvaluationOptions(trace_length=TL, jobs=2, cache=cache)
        )
        # Concurrent workers may each miss the shared native binary
        # before the other's disk write lands, so the cold miss count is
        # 2 or 3 — but every artifact ends up on disk.
        assert 2 <= cache.stats.compile_misses <= 3
        assert cache.stats.disk_writes >= 4
        warm = ArtifactCache(tmp_path)
        second = run_table2(
            ["ora"], EvaluationOptions(trace_length=TL, jobs=2, cache=warm)
        )
        # A warm shared cache is deterministic: zero misses anywhere.
        assert warm.stats.compile_misses == 0
        assert warm.stats.trace_misses == 0
        assert _row_tuples(second) == _row_tuples(first)


def _sabotaged_builder():
    raise CompileError("sabotaged for testing", benchmark="ora", stage="lowering")


class TestParallelDegradation:
    def test_failure_degrades_with_context_under_jobs(self, monkeypatch):
        monkeypatch.setitem(spec92.SPEC92, "ora", _sabotaged_builder)
        result = run_table2(
            ["compress", "ora"], EvaluationOptions(trace_length=TL, jobs=2)
        )
        assert [row.benchmark for row in result.rows] == ["compress"]
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.benchmark == "ora"
        assert failure.error_type == "CompileError"
        assert "sabotaged" in failure.message
        # Context kwargs survive the trip back from the worker.
        assert failure.context["stage"] == "lowering"

    def test_parallel_failures_match_serial_failures(self, monkeypatch):
        monkeypatch.setitem(spec92.SPEC92, "ora", _sabotaged_builder)
        serial = run_table2(
            ["compress", "ora"], EvaluationOptions(trace_length=TL)
        )
        parallel = run_table2(
            ["compress", "ora"], EvaluationOptions(trace_length=TL, jobs=2)
        )
        assert parallel.failures == serial.failures
        assert _row_tuples(parallel) == _row_tuples(serial)


class TestDriverParity:
    def test_assignment_ablation(self):
        build = spec92.SPEC92["ora"]
        serial = run_assignment_ablation(build, trace_length=TL)
        parallel = run_assignment_ablation(build, trace_length=TL, jobs=2)
        assert serial.points == parallel.points

    def test_queue_size_ablation(self):
        build = spec92.SPEC92["ora"]
        serial = run_queue_size_ablation(
            build, queue_sizes=(32, 64), trace_length=TL
        )
        parallel = run_queue_size_ablation(
            build, queue_sizes=(32, 64), trace_length=TL, jobs=2
        )
        assert serial.points == parallel.points

    def test_figure6_sweep(self):
        serial = run_figure6_sweep(thresholds=(0, 2, 8))
        parallel = run_figure6_sweep(thresholds=(0, 2, 8), jobs=2)
        assert [(t, r.block_order, r.assignment_order, r.partition) for t, r in serial] \
            == [(t, r.block_order, r.assignment_order, r.partition) for t, r in parallel]

    def test_reassignment_demo(self):
        assert run_reassignment_demo(400) == run_reassignment_demo(400, jobs=2)


class TestUnknownPart:
    def test_bad_part_rejected(self):
        from repro.experiments.harness import evaluate_workload_part

        with pytest.raises(ValueError, match="unknown evaluation part"):
            evaluate_workload_part(spec92.SPEC92["ora"](), "tripled")
