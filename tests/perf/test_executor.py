"""The SweepExecutor interface: supervision, deadlines, re-dispatch."""

import pytest

from repro.errors import ConfigError
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.perf.executor import (
    MIN_TASK_TIMEOUT,
    PoolSweepExecutor,
    SupervisedPoolExecutor,
    SweepTask,
    default_task_timeout,
    make_sweep_executor,
)
from repro.perf.fingerprint import fingerprint
from repro.robustness.faultinject import FaultPlan, FaultSpec
from repro.robustness.journal import RunJournal
from repro.robustness.retry import RetryPolicy

TL = 600


def _echo_task(payload):
    """Module-level task function (workers import it by name)."""
    name, part, options = payload
    return (name, part, f"value:{name}:{part}", 1, None)


def _run_all(executor, tasks):
    """Submit everything, poll until drained; results keyed by token."""
    with executor:
        for task in tasks:
            executor.submit(task)
        out = {}
        while executor.outstanding:
            for result in executor.poll():
                out[result.task.token] = result
    return out


def _tasks(n=3):
    return [SweepTask(benchmark=f"b{i}", part="single") for i in range(n)]


class TestPoolExecutor:
    def test_delivers_every_task(self):
        results = _run_all(PoolSweepExecutor(_echo_task, jobs=2), _tasks(4))
        assert len(results) == 4
        assert results["b0:single"].value[2] == "value:b0:single"

    def test_no_degradation_on_happy_path(self):
        pool = PoolSweepExecutor(_echo_task, jobs=2)
        _run_all(pool, _tasks(2))
        assert pool.degradation is None


class TestSupervisedHappyPath:
    def test_delivers_every_task_once(self):
        sup = SupervisedPoolExecutor(_echo_task, jobs=2, task_timeout=30.0)
        results = _run_all(sup, _tasks(5))
        assert len(results) == 5
        assert all(r.dispatches == 1 for r in results.values())
        assert sup.degradation is None
        assert sup.worker_deaths == 0

    def test_duplicate_submit_rejected(self):
        with SupervisedPoolExecutor(_echo_task, jobs=1, task_timeout=30.0) as sup:
            sup.submit(SweepTask(benchmark="x", part="single"))
            with pytest.raises(ConfigError, match="already submitted"):
                sup.submit(SweepTask(benchmark="x", part="single"))

    def test_metrics_count_dispatches(self):
        sup = SupervisedPoolExecutor(_echo_task, jobs=2, task_timeout=30.0)
        _run_all(sup, _tasks(3))
        snapshot = sup.metrics.snapshot()
        assert snapshot["executor_dispatches"] == 3
        assert snapshot["executor_tasks_completed"] == 3
        assert snapshot["executor_worker_deaths"] == 0


class TestSupervisedFaults:
    def test_killed_worker_is_survived(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="worker_kill", benchmark="b1", clear_after=1),)
        )
        sup = SupervisedPoolExecutor(
            _echo_task, jobs=2, task_timeout=30.0, worker_fault_plan=plan
        )
        results = _run_all(sup, _tasks(3))
        assert len(results) == 3
        assert results["b1:single"].dispatches == 2
        assert sup.worker_deaths >= 1
        assert sup.redispatches == 1
        assert sup.degradation is None

    def test_stalled_worker_hits_deadline(self):
        plan = FaultPlan(
            specs=(FaultSpec(kind="worker_stall", benchmark="b0", clear_after=1),)
        )
        sup = SupervisedPoolExecutor(
            _echo_task, jobs=2, task_timeout=1.0, worker_fault_plan=plan
        )
        results = _run_all(sup, _tasks(2))
        assert len(results) == 2
        assert results["b0:single"].dispatches == 2
        assert sup.metrics.snapshot()["executor_deadline_expirations"] >= 1
        assert sup.degradation is None

    def test_partitioned_result_is_recovered(self):
        # The worker computes the value and drops it; only the deadline
        # can notice, and the re-dispatch must still come home.
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="worker_partition", benchmark="b2", clear_after=1),
            )
        )
        sup = SupervisedPoolExecutor(
            _echo_task, jobs=2, task_timeout=1.0, worker_fault_plan=plan
        )
        results = _run_all(sup, _tasks(3))
        assert len(results) == 3
        assert results["b2:single"].dispatches == 2
        assert sup.degradation is None


class TestCircuitBreaker:
    def test_persistent_kill_degrades_to_serial(self):
        # clear_after=None: the task kills every worker that picks it
        # up.  The breaker must trip and the sweep must still complete.
        plan = FaultPlan(specs=(FaultSpec(kind="worker_kill", benchmark="b0"),))
        sup = SupervisedPoolExecutor(
            _echo_task,
            jobs=2,
            task_timeout=30.0,
            redispatch_budget=1,
            worker_fault_plan=plan,
        )
        results = _run_all(sup, _tasks(3))
        assert len(results) == 3  # every task still delivered
        assert results["b0:single"].value[2] == "value:b0:single"
        assert sup.degradation is not None
        assert sup.degradation.reason == "circuit-breaker"
        assert "budget 1 exhausted" in sup.degradation.detail
        assert sup.metrics.snapshot()["executor_degradations"] == 1

    def test_death_budget_trips_breaker(self):
        # Kills spread across distinct tasks: no single task exhausts
        # its budget, but the pool-wide death budget must still trip.
        plan = FaultPlan(specs=(FaultSpec(kind="worker_kill"),))  # every task
        sup = SupervisedPoolExecutor(
            _echo_task,
            jobs=2,
            task_timeout=30.0,
            redispatch_budget=10,
            max_worker_deaths=3,
            worker_fault_plan=plan,
        )
        results = _run_all(sup, _tasks(6))
        assert len(results) == 6
        assert sup.degradation is not None
        assert sup.worker_deaths > 3

    def test_breaker_keeps_results_bit_identical(self, tmp_path):
        serial = run_table2(["compress"], EvaluationOptions(trace_length=TL))
        plan = FaultPlan(
            specs=(FaultSpec(kind="worker_kill", benchmark="compress",
                             part="single"),)
        )
        journal = RunJournal(tmp_path)
        degraded = run_table2(
            ["compress"],
            EvaluationOptions(
                trace_length=TL,
                jobs=2,
                executor="supervised",
                task_timeout=60.0,
                redispatch_budget=0,
                worker_fault_plan=plan,
                heartbeat_interval=None,
            ),
            journal=journal,
        )
        assert degraded.failures == []
        s_ev, d_ev = serial.rows[0].evaluation, degraded.rows[0].evaluation
        for part in ("single", "dual_none", "dual_local"):
            assert (
                getattr(d_ev, part).stats.as_dict()
                == getattr(s_ev, part).stats.as_dict()
            )
        # The degradation is a durable journal event, not a crash.
        reopened = RunJournal(tmp_path)
        kinds = [event.get("kind") for event in reopened.events]
        assert "executor_degradation" in kinds


class TestAcceptanceWorkerKill:
    def test_sweep_losing_a_worker_is_bit_identical_to_serial(self):
        """ISSUE 6 acceptance: SIGKILL mid-run, identical fingerprints."""
        serial = run_table2(["compress"], EvaluationOptions(trace_length=TL))
        plan = FaultPlan(
            specs=(FaultSpec(kind="worker_kill", benchmark="compress",
                             part="dual_none", clear_after=1),)
        )
        survived = run_table2(
            ["compress"],
            EvaluationOptions(
                trace_length=TL,
                jobs=2,
                executor="supervised",
                task_timeout=60.0,
                worker_fault_plan=plan,
                heartbeat_interval=None,
            ),
        )
        assert survived.failures == []
        for row_s, row_k in zip(serial.rows, survived.rows):
            for part in ("single", "dual_none", "dual_local"):
                want = fingerprint(
                    getattr(row_s.evaluation, part).stats.as_dict()
                )
                got = fingerprint(
                    getattr(row_k.evaluation, part).stats.as_dict()
                )
                assert got == want, f"{row_s.benchmark}/{part} diverged"


class TestFactoryAndTimeouts:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep executor"):
            make_sweep_executor("threads", _echo_task, 2)

    def test_default_timeout_scales_with_trace_length(self):
        assert default_task_timeout(0) == MIN_TASK_TIMEOUT
        assert default_task_timeout(120_000) > MIN_TASK_TIMEOUT
        assert default_task_timeout(10 ** 6) > default_task_timeout(10 ** 5)

    def test_default_timeout_scales_with_evaluation_cost(self):
        # ISSUE 8 satellite: the deadline must track what actually
        # drives simulation cost, not just the trace length.
        tl = 10 ** 6
        plain = default_task_timeout(tl)
        checked = default_task_timeout(tl, self_check=True)
        batched = default_task_timeout(tl, engine="batched")
        assert checked > plain  # self-check multiplies per-cycle work
        assert batched < plain  # the fused kernel is faster
        # engine=None means the reference kernel — same budget.
        assert default_task_timeout(tl, engine="reference") == plain
        # The floor still applies however cheap the options make a task.
        assert (
            default_task_timeout(0, engine="batched") == MIN_TASK_TIMEOUT
        )

    def test_factory_derives_timeout_from_options(self):
        fast = make_sweep_executor(
            "supervised", _echo_task, 1, trace_length=10 ** 6,
            engine="batched",
        )
        slow = make_sweep_executor(
            "supervised", _echo_task, 1, trace_length=10 ** 6,
            self_check=True,
        )
        try:
            assert fast.task_timeout < slow.task_timeout
        finally:
            fast.close()
            slow.close()

    def test_invalid_supervised_knobs_rejected(self):
        with pytest.raises(ConfigError, match="task_timeout"):
            SupervisedPoolExecutor(_echo_task, jobs=1, task_timeout=0.0)
        with pytest.raises(ConfigError, match="budget"):
            SupervisedPoolExecutor(
                _echo_task, jobs=1, task_timeout=1.0, redispatch_budget=-1
            )

    def test_factory_builds_both_kinds(self):
        pool = make_sweep_executor("pool", _echo_task, 1)
        sup = make_sweep_executor(
            "supervised", _echo_task, 1, trace_length=1000
        )
        try:
            assert isinstance(pool, PoolSweepExecutor)
            assert isinstance(sup, SupervisedPoolExecutor)
            assert sup.task_timeout == default_task_timeout(1000)
        finally:
            pool.close()
            sup.close()


class TestCancel:
    def test_cancel_reports_undelivered_tasks(self):
        sup = SupervisedPoolExecutor(_echo_task, jobs=1, task_timeout=30.0)
        for task in _tasks(3):
            sup.submit(task)
        cancelled = sup.cancel()
        assert cancelled == 3
        assert sup.outstanding == 0

    def test_cancel_while_requeued_task_is_inside_backoff(self):
        # ISSUE 8 satellite: a worker_kill puts its task into the
        # pending deque with a far-future not_before; cancel() must drop
        # the waiting task, zero outstanding, and orphan no processes.
        plan = FaultPlan(
            specs=(FaultSpec(kind="worker_kill", benchmark="b0",
                             clear_after=1),)
        )
        sup = SupervisedPoolExecutor(
            _echo_task,
            jobs=1,
            task_timeout=30.0,
            worker_fault_plan=plan,
            redispatch_policy=RetryPolicy(
                max_attempts=5, base_delay=120.0, max_delay=120.0, seed=0
            ),
        )
        for task in _tasks(2):
            sup.submit(task)
        # Drain b1; b0's re-dispatch is now parked behind a ~2-minute
        # backoff deadline (the kill was noticed first).
        delivered = {}
        while "b1:single" not in delivered:
            for result in sup.poll(timeout=1.0):
                delivered[result.task.token] = result
        assert sup.outstanding == 1
        processes = list(sup._workers.values())
        cancelled = sup.cancel()
        assert cancelled == 1
        assert sup.outstanding == 0
        sup.close()
        for process in processes:
            process.join(timeout=10.0)
            assert not process.is_alive()
