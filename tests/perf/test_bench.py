"""The ``repro bench`` harness writes a well-formed BENCH_table2.json."""

import json

from repro.perf.bench import QUICK_TRACE_LENGTH, SCHEMA_VERSION, run_bench


class TestBench:
    def test_quick_bench_report(self, tmp_path):
        output = tmp_path / "BENCH_table2.json"
        # min_engine_speedup=0 disables the perf gate: a unit test must
        # not depend on wall-clock ratios on a loaded machine (CI's
        # perf-smoke job enforces the committed floor separately).
        report = run_bench(
            benchmarks=["ora"],
            quick=True,
            jobs=2,
            output=output,
            cache_dir=tmp_path / "cache",
            min_engine_speedup=0,
        )
        assert report.identical is True
        assert report.trace_length == QUICK_TRACE_LENGTH
        assert report.jobs == 2

        payload = json.loads(output.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["benchmarks"] == ["ora"]
        assert payload["identical"] is True
        assert payload["divergences"] == []
        assert set(payload["timings_s"]) == {
            "serial", "parallel", "cache-cold", "cache-warm",
        }
        assert all(t > 0 for t in payload["timings_s"].values())
        # The engine comparison stage: simulation-only timings for both
        # kernels plus the perf-regression floor the CI gate enforces.
        engine = payload["engine"]
        assert set(engine["timings_s"]) == {"reference", "batched"}
        assert all(t > 0 for t in engine["timings_s"].values())
        assert engine["speedup"] > 0
        assert engine["floor"] == 0
        (row,) = payload["rows"]
        assert row["benchmark"] == "ora"
        assert set(row["cycles"]) == {"single", "dual_none", "dual_local"}
        # Full-stats fingerprints ride on every row, so the identity
        # check covers the whole stats surface.
        fingerprints = row["stats_fingerprint"]
        assert set(fingerprints) == {"single", "dual_none", "dual_local"}
        assert all(len(fp) == 64 for fp in fingerprints.values())
        # The warm sweep must have run entirely from the cache.
        warm = payload["cache_stats"]["cache-warm"]
        assert warm["misses"] == 0 and warm["hits"] > 0
        assert warm["hit_rate"] == 1.0
        cold = payload["cache_stats"]["cache-cold"]
        assert 0.0 <= cold["hit_rate"] < 1.0
        assert payload["cpu_count"] >= 1
        assert payload["python"]

    def test_no_output_path_skips_writing(self, tmp_path):
        report = run_bench(
            benchmarks=["ora"],
            trace_length=800,
            jobs=2,
            output=None,
            cache_dir=tmp_path,
            min_engine_speedup=0,
        )
        assert report.identical is True
        assert report.format().startswith("bench: 1 benchmarks")
