"""The ``repro bench`` harness writes a well-formed BENCH_table2.json."""

import json

from repro.perf.bench import QUICK_TRACE_LENGTH, SCHEMA_VERSION, run_bench


class TestBench:
    def test_quick_bench_report(self, tmp_path):
        output = tmp_path / "BENCH_table2.json"
        report = run_bench(
            benchmarks=["ora"],
            quick=True,
            jobs=2,
            output=output,
            cache_dir=tmp_path / "cache",
        )
        assert report.identical is True
        assert report.trace_length == QUICK_TRACE_LENGTH
        assert report.jobs == 2

        payload = json.loads(output.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["benchmarks"] == ["ora"]
        assert payload["identical"] is True
        assert payload["divergences"] == []
        assert set(payload["timings_s"]) == {
            "serial", "parallel", "cache-cold", "cache-warm",
        }
        assert all(t > 0 for t in payload["timings_s"].values())
        (row,) = payload["rows"]
        assert row["benchmark"] == "ora"
        assert set(row["cycles"]) == {"single", "dual_none", "dual_local"}
        # Full-stats fingerprints ride on every row, so the identity
        # check covers the whole stats surface.
        fingerprints = row["stats_fingerprint"]
        assert set(fingerprints) == {"single", "dual_none", "dual_local"}
        assert all(len(fp) == 64 for fp in fingerprints.values())
        # The warm sweep must have run entirely from the cache.
        warm = payload["cache_stats"]["cache-warm"]
        assert warm["misses"] == 0 and warm["hits"] > 0
        assert warm["hit_rate"] == 1.0
        cold = payload["cache_stats"]["cache-cold"]
        assert 0.0 <= cold["hit_rate"] < 1.0
        assert payload["cpu_count"] >= 1
        assert payload["python"]

    def test_no_output_path_skips_writing(self, tmp_path):
        report = run_bench(
            benchmarks=["ora"],
            trace_length=800,
            jobs=2,
            output=None,
            cache_dir=tmp_path,
        )
        assert report.identical is True
        assert report.format().startswith("bench: 1 benchmarks")
