"""The ``repro bench`` harness writes a well-formed BENCH_table2.json."""

import json

from repro.perf.bench import QUICK_TRACE_LENGTH, SCHEMA_VERSION, run_bench


class TestBench:
    def test_quick_bench_report(self, tmp_path):
        output = tmp_path / "BENCH_table2.json"
        # min_engine_speedup=0 disables the perf gate: a unit test must
        # not depend on wall-clock ratios on a loaded machine (CI's
        # perf-smoke job enforces the committed floor separately).
        report = run_bench(
            benchmarks=["ora"],
            quick=True,
            jobs=2,
            output=output,
            cache_dir=tmp_path / "cache",
            min_engine_speedup=0,
        )
        assert report.identical is True
        assert report.trace_length == QUICK_TRACE_LENGTH
        assert report.jobs == 2

        payload = json.loads(output.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["benchmarks"] == ["ora"]
        assert payload["identical"] is True
        assert payload["divergences"] == []
        assert set(payload["timings_s"]) == {
            "serial", "parallel", "cache-cold", "cache-warm",
        }
        assert all(t > 0 for t in payload["timings_s"].values())
        # The engine comparison stage: simulation-only timings for both
        # kernels plus the perf-regression floor the CI gate enforces.
        engine = payload["engine"]
        assert set(engine["timings_s"]) == {"reference", "batched"}
        assert all(t > 0 for t in engine["timings_s"].values())
        assert engine["speedup"] > 0
        assert engine["floor"] == 0
        (row,) = payload["rows"]
        assert row["benchmark"] == "ora"
        assert set(row["cycles"]) == {"single", "dual_none", "dual_local"}
        # Full-stats fingerprints ride on every row, so the identity
        # check covers the whole stats surface.
        fingerprints = row["stats_fingerprint"]
        assert set(fingerprints) == {"single", "dual_none", "dual_local"}
        assert all(len(fp) == 64 for fp in fingerprints.values())
        # The warm sweep must have run entirely from the cache.
        warm = payload["cache_stats"]["cache-warm"]
        assert warm["misses"] == 0 and warm["hits"] > 0
        assert warm["hit_rate"] == 1.0
        cold = payload["cache_stats"]["cache-cold"]
        assert 0.0 <= cold["hit_rate"] < 1.0
        assert payload["cpu_count"] >= 1
        assert payload["python"]

    def test_no_output_path_skips_writing(self, tmp_path):
        report = run_bench(
            benchmarks=["ora"],
            trace_length=800,
            jobs=2,
            output=None,
            cache_dir=tmp_path,
            min_engine_speedup=0,
        )
        assert report.identical is True
        assert report.format().startswith("bench: 1 benchmarks")


class TestHistory:
    def _report(self):
        from repro.perf.bench import BenchReport

        return BenchReport(
            benchmarks=["ora"],
            trace_length=2000,
            jobs=2,
            timings_s={"serial": 1.5, "parallel": 0.9},
            rows=[{"benchmark": "ora"}],
            cache_stats={},
            identical=True,
            engine_timings_s={"reference": 1.0, "batched": 0.4},
            engine_speedup=2.5,
            timestamp="2026-08-08T00:00:00",
            python="3.12.0",
            cpu_count=8,
        )

    def test_history_record_is_a_compact_projection(self):
        from repro.perf.bench import HISTORY_SCHEMA, history_record

        record = history_record(self._report())
        assert record["history_schema"] == HISTORY_SCHEMA
        assert record["report_schema"] == SCHEMA_VERSION
        assert record["benchmarks"] == ["ora"]
        assert record["engine_speedup"] == 2.5
        assert record["divergences"] == 0  # a count, not the full list
        assert "rows" not in record  # the bulky part stays in the report

    def test_append_accumulates_jsonl_lines(self, tmp_path):
        from repro.perf.bench import append_bench_history

        history = tmp_path / "BENCH_history.jsonl"
        append_bench_history(history, self._report())
        append_bench_history(history, self._report())
        lines = history.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["identical"] is True for line in lines)

    def test_run_bench_appends_next_to_the_report(self, tmp_path):
        from repro.perf.bench import HISTORY_FILE, run_bench

        output = tmp_path / "BENCH_table2.json"
        run_bench(
            benchmarks=["ora"],
            quick=True,
            jobs=2,
            output=output,
            cache_dir=tmp_path / "cache",
            min_engine_speedup=0,
        )
        history = tmp_path / HISTORY_FILE
        record = json.loads(history.read_text().splitlines()[-1])
        assert record["benchmarks"] == ["ora"]
        assert record["timings_s"]["serial"] > 0
