"""Regression tests for the three PR bugfixes.

1. ``trace_length=0`` raises a typed :class:`ConfigError` up front
   (previously an empty trace flowed into the simulator and surfaced as
   ``ZeroDivisionError`` inside ``speedup_percent``).
2. ``Table2Result.row`` on a benchmark that failed during the sweep says
   so, with the error type and message (previously it claimed the
   benchmark was unknown).
3. ``Table2Row.evaluation`` is an honest Optional; the detailed
   formatter guards rows without an evaluation instead of crashing.
"""

import pytest

from repro.errors import CompileError, ConfigError, SimulationError
from repro.experiments.harness import (
    EvaluationOptions,
    evaluate_workload,
    speedup_percent,
)
from repro.experiments.table2 import (
    Table2Result,
    Table2Row,
    format_table2,
    run_table2,
)
from repro.robustness.validate import validate_trace_length
from repro.workloads import spec92


class TestTraceLengthValidation:
    @pytest.mark.parametrize("bad", [0, -5])
    def test_evaluate_workload_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError) as info:
            evaluate_workload(
                spec92.SPEC92["ora"](), EvaluationOptions(trace_length=bad)
            )
        assert "trace_length" in str(info.value)
        assert info.value.context["trace_length"] == bad

    def test_run_table2_rejects_zero(self):
        # The ConfigError is a per-benchmark ReproError, so the sweep's
        # degradation contract turns it into a failure record.
        result = run_table2(["ora"], EvaluationOptions(trace_length=0))
        assert result.rows == []
        assert result.failures[0].error_type == "ConfigError"

    def test_non_integer_rejected(self):
        with pytest.raises(ConfigError, match="must be an integer"):
            validate_trace_length(1.5)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError, match="must be an integer"):
            validate_trace_length(True)

    def test_valid_length_accepted(self):
        validate_trace_length(1)
        validate_trace_length(120_000)


class TestSpeedupPercent:
    def test_zero_baseline_raises_typed_error(self):
        with pytest.raises(SimulationError) as info:
            speedup_percent(0, 100)
        assert "zero cycles" in str(info.value)
        assert info.value.context["dual_cycles"] == 100

    def test_zero_baseline_is_not_a_zero_division_error(self):
        with pytest.raises(Exception) as info:
            speedup_percent(0, 100)
        assert not isinstance(info.value, ZeroDivisionError)

    def test_normal_values(self):
        assert speedup_percent(100, 50) == pytest.approx(50.0)
        assert speedup_percent(100, 120) == pytest.approx(-20.0)


def _sabotaged_builder():
    raise CompileError("sabotaged for testing", benchmark="tomcatv", stage="lowering")


class TestFailedBenchmarkRow:
    def test_row_reports_sweep_failure_not_unknown(self, monkeypatch):
        monkeypatch.setitem(spec92.SPEC92, "tomcatv", _sabotaged_builder)
        result = run_table2(
            ["ora", "tomcatv"], EvaluationOptions(trace_length=1200)
        )
        with pytest.raises(ConfigError) as info:
            result.row("tomcatv")
        message = str(info.value)
        assert "failed during the sweep" in message
        assert "CompileError" in message
        assert "sabotaged" in message
        assert "unknown benchmark" not in message

    def test_truly_unknown_name_still_reported_as_unknown(self):
        result = Table2Result(rows=[])
        with pytest.raises(ConfigError, match="unknown benchmark"):
            result.row("nope")


class TestOptionalEvaluation:
    def test_default_is_none(self):
        row = Table2Row(
            benchmark="hand", pct_none=1.0, pct_local=2.0,
            paper_none=None, paper_local=None,
        )
        assert row.evaluation is None

    def test_detailed_format_guards_missing_evaluation(self):
        row = Table2Row(
            benchmark="hand", pct_none=-3.0, pct_local=1.5,
            paper_none=-14, paper_local=6,
        )
        text = format_table2(Table2Result(rows=[row]), detailed=True)
        assert "hand" in text
        assert "no evaluation attached" in text

    def test_detailed_format_still_prints_full_rows(self):
        result = run_table2(["ora"], EvaluationOptions(trace_length=1200))
        text = format_table2(result, detailed=True)
        assert "no evaluation attached" not in text
        assert "1-clu cyc" in text
