"""Span tracing: content-derived IDs, builders, sinks, analysis, export.

Everything here is pure-unit: builders get hand-made stand-ins for
compile results and evaluations (they only duck-type the few fields the
span code reads), the wall-clock emitter gets a fake clock, and the
chrome export round-trips through ``json.dumps``/``json.loads`` exactly
as the CLI writes it.  The end-to-end identity contract (serial vs
``--jobs`` vs resumed vs distributed) lives in ``test_span_identity``.
"""

import json
import random
from types import SimpleNamespace

import pytest

from repro.obs.spans import (
    DETERMINISTIC_KINDS,
    SPAN_SCHEMA,
    WALL_KINDS,
    Span,
    SpanSchemaError,
    SpanWriter,
    WallSpans,
    canonical_lines,
    canonical_sort_key,
    chrome_trace,
    critical_path,
    dedupe_spans,
    derive_span_id,
    evaluation_spans,
    failure_spans,
    format_span_summary,
    load_run_spans,
    part_task_spans,
    read_spans,
    span_file_name,
    span_files,
    split_spans,
    summarize_spans,
    sweep_span,
    sweep_span_id,
    sweep_trace_id,
    sweep_task_value_spans,
    validate_chrome_trace,
    write_canonical_spans,
)

TRACE = "t" * 16


def _compiled(instructions):
    machine = SimpleNamespace(instruction_count=lambda: instructions)
    return SimpleNamespace(machine=machine)


def _evaluation(name="compress", trace_length=500):
    """A duck-typed BenchmarkEvaluation: three parts, distinct costs."""
    return SimpleNamespace(
        name=name,
        trace_length=trace_length,
        native_compile=_compiled(300),
        local_compile=_compiled(310),
        single=SimpleNamespace(cycles=900),
        dual_none=SimpleNamespace(cycles=1100),
        dual_local=SimpleNamespace(cycles=1000),
    )


class TestIds:
    def test_derive_span_id_is_stable_and_content_sensitive(self):
        a = derive_span_id(TRACE, "task", "compress:single", (1, 2, 3))
        assert a == derive_span_id(TRACE, "task", "compress:single", (1, 2, 3))
        assert len(a) == 16 and int(a, 16) >= 0
        assert a != derive_span_id(TRACE, "task", "compress:single", (1, 2, 4))
        assert a != derive_span_id(TRACE, "task", "compress:dual_none", (1, 2, 3))
        assert a != derive_span_id("u" * 16, "task", "compress:single", (1, 2, 3))

    def test_sweep_span_id_needs_only_the_trace_id(self):
        # Workers parent their task spans without any coordination
        # beyond the trace id in the task frame.
        assert sweep_span_id(TRACE) == derive_span_id(TRACE, "sweep", "sweep")

    def test_sweep_trace_id_tracks_value_determining_options(self):
        from repro.experiments.harness import EvaluationOptions

        base = EvaluationOptions(trace_length=600)
        tid = sweep_trace_id("table2", base, ["ora", "compress"])
        assert tid == sweep_trace_id("table2", base, ["compress", "ora"])
        assert tid != sweep_trace_id("figure6", base, ["compress", "ora"])
        assert tid != sweep_trace_id("table2", base, ["compress"])
        other = EvaluationOptions(trace_length=700)
        assert tid != sweep_trace_id("table2", other, ["compress", "ora"])

    def test_layout_only_options_do_not_move_the_trace_id(self):
        from dataclasses import replace

        from repro.experiments.harness import EvaluationOptions

        base = EvaluationOptions(trace_length=600)
        wide = replace(base, jobs=8, executor="supervised")
        assert sweep_trace_id("table2", base, ["ora"]) == sweep_trace_id(
            "table2", wide, ["ora"]
        )


class TestBuilders:
    def test_part_task_spans_lay_stages_end_to_end(self):
        spans = part_task_spans(
            TRACE, "compress", "single",
            compile_units=300, trace_units=500, sim_units=900,
        )
        task, compile_s, tracegen, simulate = spans
        assert [s.kind for s in spans] == ["task", "compile", "tracegen", "simulate"]
        assert task.parent_id == sweep_span_id(TRACE)
        assert all(s.parent_id == task.span_id for s in spans[1:])
        assert all(s.name == "compress:single" for s in spans)
        assert (compile_s.start_u, compile_s.end_u) == (0, 300)
        assert (tracegen.start_u, tracegen.end_u) == (300, 800)
        assert (simulate.start_u, simulate.end_u) == (800, 1700)
        assert task.duration_u == 1700
        assert all(s.deterministic for s in spans)

    def test_evaluation_spans_cover_every_part(self):
        spans = evaluation_spans(TRACE, _evaluation())
        assert len(spans) == 12  # 3 parts x (task + 3 stages)
        by_kind = summarize_spans(spans)
        assert by_kind["task"]["count"] == 3
        # dual_local simulates the locally rescheduled binary.
        local = [
            s for s in spans
            if s.kind == "compile" and s.attrs["part"] == "dual_local"
        ]
        assert local[0].duration_u == 310

    def test_retry_span_only_past_one_attempt_per_part(self):
        assert len(evaluation_spans(TRACE, _evaluation(), attempts=3)) == 12
        spans = evaluation_spans(TRACE, _evaluation(), attempts=5)
        retries = [s for s in spans if s.kind == "retry"]
        assert len(retries) == 1
        assert retries[0].duration_u == 2
        assert retries[0].attrs["attempts"] == 5

    def test_failure_spans_record_the_error(self):
        failure = SimpleNamespace(benchmark="gcc1", error_type="SimulationError")
        (span,) = failure_spans(TRACE, failure, attempts=4)
        assert span.kind == "task" and span.attrs["failed"] is True
        assert span.attrs["error_type"] == "SimulationError"
        assert span.duration_u == 4

    def test_sweep_span_totals_its_tasks(self):
        children = part_task_spans(
            TRACE, "a", "single", compile_units=1, trace_units=2, sim_units=3
        ) + part_task_spans(
            TRACE, "b", "single", compile_units=10, trace_units=20, sim_units=30
        )
        root = sweep_span(TRACE, "table2", children)
        assert root.span_id == sweep_span_id(TRACE)
        assert root.parent_id is None
        assert root.duration_u == 6 + 60
        assert root.attrs["tasks"] == 2

    def test_worker_builder_matches_driver_builder(self):
        # The distributed worker builds from its PartOutcome; the driver
        # from the assembled evaluation.  Same costs -> same span ids.
        outcome = SimpleNamespace(
            sim=SimpleNamespace(cycles=900),
            compile_result=_compiled(300),
            trace_length=500,
        )
        worker = sweep_task_value_spans(
            TRACE, ("compress", "single", outcome, 1, None)
        )
        driver = part_task_spans(
            TRACE, "compress", "single",
            compile_units=300, trace_units=500, sim_units=900,
        )
        assert [s.as_dict() for s in worker] == [s.as_dict() for s in driver]

    def test_worker_builder_skips_failures_and_garbage(self):
        failure = SimpleNamespace(benchmark="x", error_type="E")  # no .sim
        assert sweep_task_value_spans(TRACE, ("x", "single", failure, 1, None)) == []
        assert sweep_task_value_spans(TRACE, "not-a-tuple") == []
        assert sweep_task_value_spans(TRACE, ("short",)) == []


class TestSpanRecord:
    def test_round_trip(self):
        span = part_task_spans(
            TRACE, "a", "single", compile_units=1, trace_units=2, sim_units=3
        )[0]
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone == span
        assert clone.schema == SPAN_SCHEMA

    def test_unknown_kind_rejected(self):
        with pytest.raises(SpanSchemaError):
            Span.from_dict(
                {
                    "trace_id": TRACE, "span_id": "a" * 16, "parent_id": None,
                    "kind": "teleport", "name": "x", "start_u": 0, "end_u": 1,
                    "attrs": {}, "schema": SPAN_SCHEMA,
                }
            )

    def test_kind_partition_is_total(self):
        assert not (DETERMINISTIC_KINDS & WALL_KINDS)


class TestWriter:
    def test_writer_dedupes_within_process(self, tmp_path):
        spans = part_task_spans(
            TRACE, "a", "single", compile_units=1, trace_units=2, sim_units=3
        )
        with SpanWriter(tmp_path) as writer:
            assert writer.write_all(spans) == 4
            assert writer.write_all(spans) == 0  # resume re-emission
            assert writer.emitted == 4
        assert len(read_spans(tmp_path / "spans.jsonl")) == 4

    def test_reopened_writer_appends_duplicates_for_merge_to_fold(self, tmp_path):
        spans = part_task_spans(
            TRACE, "a", "single", compile_units=1, trace_units=2, sim_units=3
        )
        for _ in range(2):  # two processes (original + resumed)
            with SpanWriter(tmp_path) as writer:
                writer.write_all(spans)
        assert len(read_spans(tmp_path / "spans.jsonl")) == 8
        assert len(load_run_spans(tmp_path)) == 4  # dedupe by span_id

    def test_torn_trailing_line_tolerated(self, tmp_path):
        spans = part_task_spans(
            TRACE, "a", "single", compile_units=1, trace_units=2, sim_units=3
        )
        with SpanWriter(tmp_path) as writer:
            writer.write_all(spans)
        path = tmp_path / "spans.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"trace_id": "tor')  # SIGKILL mid-append
        assert len(read_spans(path)) == 4

    def test_shard_file_naming(self):
        assert span_file_name() == "spans.jsonl"
        assert span_file_name("alpha") == "spans-alpha.jsonl"

    def test_span_files_order_primary_then_shards(self, tmp_path):
        for name in ("spans-beta.jsonl", "spans.jsonl", "spans-alpha.jsonl"):
            (tmp_path / name).write_text("")
        assert [p.name for p in span_files(tmp_path)] == [
            "spans.jsonl", "spans-alpha.jsonl", "spans-beta.jsonl",
        ]


class TestWallSpans:
    def _wall(self, tmp_path):
        ticks = iter(range(100))
        writer = SpanWriter(tmp_path, shard="coord")
        writer.trace_id = TRACE
        return writer, WallSpans(writer, clock=lambda: next(ticks))

    def test_begin_end_measures_the_interval(self, tmp_path):
        writer, wall = self._wall(tmp_path)
        wall.begin(("ticket", 1), "dispatch", "compress:single", host="alpha")
        wall.end(("ticket", 1), ok=True)
        writer.close()
        (span,) = read_spans(writer.path)
        assert span.kind == "dispatch"
        assert not span.deterministic
        assert span.duration_u == 1_000_000  # one fake-clock tick
        assert span.attrs == {"host": "alpha", "ok": True}
        assert span.parent_id == sweep_span_id(TRACE)

    def test_end_without_begin_is_a_no_op(self, tmp_path):
        writer, wall = self._wall(tmp_path)
        wall.end(("ticket", 99), ok=False)
        writer.close()
        assert read_spans(writer.path) == []

    def test_instant_and_close(self, tmp_path):
        writer, wall = self._wall(tmp_path)
        wall.instant("requeue", "compress:single", reason="host-lost")
        wall.begin(("host", "alpha"), "host_lease", "alpha")
        wall.close(reason="shutdown")
        writer.close()
        spans = read_spans(writer.path)
        assert [s.kind for s in spans] == ["requeue", "host_lease"]
        assert spans[0].duration_u == 0
        assert spans[1].attrs["reason"] == "shutdown"

    def test_sequence_keeps_repeated_events_distinct(self, tmp_path):
        writer, wall = self._wall(tmp_path)
        for _ in range(3):
            wall.instant("requeue", "compress:single", reason="r")
        writer.close()
        assert len({s.span_id for s in read_spans(writer.path)}) == 3

    def test_none_writer_disables_everything(self):
        wall = WallSpans(None)
        assert not wall.enabled
        wall.begin("k", "dispatch", "x")
        wall.end("k")
        wall.instant("requeue", "x")
        wall.close()  # nothing raises, nothing written


class TestCanonical:
    def _mixed(self):
        det = part_task_spans(
            TRACE, "b", "single", compile_units=5, trace_units=5, sim_units=5
        ) + part_task_spans(
            TRACE, "a", "single", compile_units=1, trace_units=2, sim_units=3
        )
        wall = Span(
            trace_id=TRACE, span_id="f" * 16, parent_id=None, kind="dispatch",
            name="a:single", start_u=0, end_u=10, attrs={},
        )
        return det, wall

    def test_split_spans_partitions_by_kind(self):
        det, wall = self._mixed()
        got_det, got_wall = split_spans(det + [wall])
        assert len(got_det) == 8 and got_wall == [wall]

    def test_canonical_lines_are_shuffle_invariant(self):
        det, _ = self._mixed()
        want = canonical_lines(det)
        shuffled = det[:]
        random.Random(7).shuffle(shuffled)
        assert canonical_lines(shuffled + det) == want  # dupes fold too
        keys = [canonical_sort_key(s) for s in dedupe_spans(det)]
        assert sorted(keys) == sorted(keys)  # total order, no ties needed

    def test_write_canonical_spans_splits_wall_records(self, tmp_path):
        det, wall = self._mixed()
        counts = write_canonical_spans(tmp_path, det + [wall])
        assert counts == (8, 1)
        assert len(read_spans(tmp_path / "spans.jsonl")) == 8
        assert len(read_spans(tmp_path / "spans-wall.jsonl")) == 1

    def test_no_wall_file_without_wall_spans(self, tmp_path):
        det, _ = self._mixed()
        assert write_canonical_spans(tmp_path, det) == (8, 0)
        assert not (tmp_path / "spans-wall.jsonl").exists()


class TestAnalysis:
    def _sweep(self):
        spans = evaluation_spans(TRACE, _evaluation("compress"))
        spans += evaluation_spans(TRACE, _evaluation("ora", trace_length=100))
        spans.append(sweep_span(TRACE, "table2", spans))
        return spans

    def test_summarize_counts_and_units(self):
        summary = summarize_spans(self._sweep())
        assert summary["task"]["count"] == 6
        assert summary["simulate"]["count"] == 6
        assert summary["sweep"]["count"] == 1
        assert summary["sweep"]["units"] == summary["task"]["units"]

    def test_critical_path_is_the_heaviest_task(self):
        path = critical_path(self._sweep())
        # compress parts carry trace_length=500; its dual_none
        # (300 + 500 + 1100) is the heaviest task.
        assert path["task"] == "compress:dual_none"
        assert path["units"] == 1900
        stages = [(s["kind"], s["units"]) for s in path["chain"]]
        assert stages == [("compile", 300), ("tracegen", 500), ("simulate", 1100)]

    def test_critical_path_of_nothing(self):
        assert critical_path([]) == {"task": None, "units": 0, "chain": []}

    def test_format_span_summary_mentions_the_path(self):
        text = format_span_summary(self._sweep())
        assert "compress:dual_none" in text
        assert "simulate" in text


class TestChromeTrace:
    def _trace(self):
        spans = self._det() + [
            Span(
                trace_id=TRACE, span_id="f" * 16, parent_id=None,
                kind="dispatch", name="a:single", start_u=3, end_u=9, attrs={},
            )
        ]
        return chrome_trace(spans)

    def _det(self):
        spans = evaluation_spans(TRACE, _evaluation())
        spans.append(sweep_span(TRACE, "table2", spans))
        return spans

    def test_round_trips_through_json(self):
        document = json.loads(json.dumps(self._trace()))
        validate_chrome_trace(document)  # exactly what the CLI asserts
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 13 + 1  # 13 deterministic + 1 wall
        assert all(e["dur"] >= 1 for e in complete)

    def test_virtual_and_wall_timelines_use_distinct_pids(self):
        events = [e for e in self._trace()["traceEvents"] if e["ph"] == "X"]
        det = [e for e in events if e["cat"] in DETERMINISTIC_KINDS]
        wall = [e for e in events if e["cat"] in WALL_KINDS]
        assert det and wall
        assert {e["pid"] for e in det} == {1}
        assert {e["pid"] for e in wall} == {2}
        assert any(
            e["ph"] == "M" for e in self._trace()["traceEvents"]
        )  # process names

    def test_stages_nest_inside_their_task_tid(self):
        events = self._trace()["traceEvents"]
        lanes = {
            event["name"].split(":", 1)[1]: set()
            for event in events
            if event["ph"] == "X" and event["pid"] == 1
        }
        for event in events:
            if event["ph"] == "X" and event["pid"] == 1:
                lanes[event["name"].split(":", 1)[1]].add(event["tid"])
        # A task and its three stages share one thread lane.
        assert len(lanes["compress:single"]) == 1
        assert lanes["compress:single"] != lanes["compress:dual_none"]

    def test_validation_rejects_malformed_documents(self):
        for bad in (
            "nope",
            {},
            {"traceEvents": "nope"},
            {"traceEvents": [{"ph": "X"}]},
            {"traceEvents": [
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": 0}
            ]},  # missing dur
            {"traceEvents": [
                {"ph": "Q", "name": "x", "pid": 1, "tid": 1, "ts": 0, "dur": 1}
            ]},
        ):
            with pytest.raises(SpanSchemaError):
                validate_chrome_trace(bad)

    def test_empty_trace_is_valid(self):
        document = chrome_trace([])
        validate_chrome_trace(document)
