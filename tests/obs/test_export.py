"""Exporters: schema-validated stats JSON and Prometheus text format."""

import json

import pytest

from repro.obs.export import (
    SchemaError,
    prometheus_text,
    stats_document,
    validate_stats_payload,
    write_prometheus,
    write_stats_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runner import observe_benchmark

TL = 1500


@pytest.fixture(scope="module")
def document():
    runs = [
        observe_benchmark("compress", machine, trace_length=TL,
                          sample_interval=200)
        for machine in ("single", "dual")
    ]
    return stats_document("compress", [run.run_payload() for run in runs])


class TestStatsJson:
    def test_document_validates(self, document):
        validate_stats_payload(document)

    def test_write_then_reload_round_trip(self, document, tmp_path):
        path = tmp_path / "stats.json"
        write_stats_json(path, document)
        reloaded = json.loads(path.read_text())
        validate_stats_payload(reloaded)
        assert reloaded == document

    def test_wrong_kind_rejected(self, document):
        bad = dict(document, kind="nonsense")
        with pytest.raises(SchemaError, match=r"\$\.kind"):
            validate_stats_payload(bad)

    def test_wrong_schema_version_rejected(self, document):
        bad = dict(document, schema=99)
        with pytest.raises(SchemaError, match=r"\$\.schema"):
            validate_stats_payload(bad)

    def test_stall_imbalance_rejected(self, document):
        bad = json.loads(json.dumps(document))  # deep copy
        bad["runs"][0]["stats"]["stall_attribution"]["issued_slots"] += 1
        with pytest.raises(SchemaError, match="balance|inconsistent"):
            validate_stats_payload(bad)

    def test_unknown_cause_rejected(self, document):
        bad = json.loads(json.dumps(document))
        bad["runs"][0]["stats"]["stall_attribution"]["causes"]["mystery"] = 0
        with pytest.raises(SchemaError, match="unknown causes"):
            validate_stats_payload(bad)

    def test_non_increasing_series_rejected(self, document):
        bad = json.loads(json.dumps(document))
        series = bad["runs"][0]["stats"]["metrics"]["series"]
        assert len(series) >= 2, "need two samples to scramble"
        series[1]["cycle"] = series[0]["cycle"]
        with pytest.raises(SchemaError, match="strictly increasing"):
            validate_stats_payload(bad)

    def test_invalid_document_never_written(self, document, tmp_path):
        path = tmp_path / "stats.json"
        bad = dict(document, kind="nonsense")
        with pytest.raises(SchemaError):
            write_stats_json(path, bad)
        assert not path.exists()


class TestPrometheus:
    def test_full_registry_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_cycles_total", "simulated cycles").inc(1234)
        reg.gauge("repro_depth", "queue depth", cluster="0").set(3)
        hist = reg.histogram("repro_dist", (1, 4), "occupancy", cluster="0")
        for value in (0, 2, 9):
            hist.observe(value)
        text = prometheus_text(reg)
        assert "# HELP repro_cycles_total simulated cycles" in text
        assert "# TYPE repro_cycles_total counter" in text
        assert "repro_cycles_total 1234" in text
        assert 'repro_depth{cluster="0"} 3' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'repro_dist_bucket{cluster="0",le="1.0"} 1' in text
        assert 'repro_dist_bucket{cluster="0",le="4.0"} 2' in text
        assert 'repro_dist_bucket{cluster="0",le="+Inf"} 3' in text
        assert 'repro_dist_count{cluster="0"} 3' in text
        assert text.endswith("\n")

    def test_real_run_renders(self, tmp_path):
        run = observe_benchmark("compress", "dual", trace_length=TL)
        path = tmp_path / "metrics.prom"
        write_prometheus(path, run.metrics.registry)
        text = path.read_text()
        assert f"repro_cycles_total {run.stats.cycles}" in text
        assert 'repro_queue_occupancy{cluster="1"}' in text


class TestLabelEscaping:
    def test_hostile_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "dist_host_tasks_completed", "per-host tasks", host='node"1'
        ).inc(7)
        reg.gauge("dist_hosts_active", "hosts", zone="a\\b\nc").set(2)
        text = prometheus_text(reg)
        assert 'dist_host_tasks_completed{host="node\\"1"} 7' in text
        assert 'dist_hosts_active{zone="a\\\\b\\nc"} 2' in text
        # The raw newline in the zone label never splits a sample line:
        # every line is either a comment or ends in a numeric value.
        for line in text.splitlines():
            assert line.startswith("#") or line.rsplit(" ", 1)[1].isdigit()

    def test_benign_values_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c", host="node-1").inc(1)
        assert 'c_total{host="node-1"} 1' in prometheus_text(reg)

    def test_distributed_registry_renders_per_host_series(self):
        from repro.obs.metrics import dist_metrics

        registry = dist_metrics()
        registry.counter(
            "dist_host_tasks_completed", "per-host tasks", host="h0"
        ).inc(3)
        text = prometheus_text(registry)
        assert 'dist_host_tasks_completed{host="h0"} 3' in text
        assert "# TYPE dist_tasks_completed counter" in text
