"""Exporters: schema-validated stats JSON and Prometheus text format."""

import json

import pytest

from repro.obs.export import (
    SchemaError,
    prometheus_text,
    stats_document,
    validate_stats_payload,
    write_prometheus,
    write_stats_json,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runner import observe_benchmark

TL = 1500


@pytest.fixture(scope="module")
def document():
    runs = [
        observe_benchmark("compress", machine, trace_length=TL,
                          sample_interval=200)
        for machine in ("single", "dual")
    ]
    return stats_document("compress", [run.run_payload() for run in runs])


class TestStatsJson:
    def test_document_validates(self, document):
        validate_stats_payload(document)

    def test_write_then_reload_round_trip(self, document, tmp_path):
        path = tmp_path / "stats.json"
        write_stats_json(path, document)
        reloaded = json.loads(path.read_text())
        validate_stats_payload(reloaded)
        assert reloaded == document

    def test_wrong_kind_rejected(self, document):
        bad = dict(document, kind="nonsense")
        with pytest.raises(SchemaError, match=r"\$\.kind"):
            validate_stats_payload(bad)

    def test_wrong_schema_version_rejected(self, document):
        bad = dict(document, schema=99)
        with pytest.raises(SchemaError, match=r"\$\.schema"):
            validate_stats_payload(bad)

    def test_stall_imbalance_rejected(self, document):
        bad = json.loads(json.dumps(document))  # deep copy
        bad["runs"][0]["stats"]["stall_attribution"]["issued_slots"] += 1
        with pytest.raises(SchemaError, match="balance|inconsistent"):
            validate_stats_payload(bad)

    def test_unknown_cause_rejected(self, document):
        bad = json.loads(json.dumps(document))
        bad["runs"][0]["stats"]["stall_attribution"]["causes"]["mystery"] = 0
        with pytest.raises(SchemaError, match="unknown causes"):
            validate_stats_payload(bad)

    def test_non_increasing_series_rejected(self, document):
        bad = json.loads(json.dumps(document))
        series = bad["runs"][0]["stats"]["metrics"]["series"]
        assert len(series) >= 2, "need two samples to scramble"
        series[1]["cycle"] = series[0]["cycle"]
        with pytest.raises(SchemaError, match="strictly increasing"):
            validate_stats_payload(bad)

    def test_invalid_document_never_written(self, document, tmp_path):
        path = tmp_path / "stats.json"
        bad = dict(document, kind="nonsense")
        with pytest.raises(SchemaError):
            write_stats_json(path, bad)
        assert not path.exists()


class TestPrometheus:
    def test_full_registry_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_cycles_total", "simulated cycles").inc(1234)
        reg.gauge("repro_depth", "queue depth", cluster="0").set(3)
        hist = reg.histogram("repro_dist", (1, 4), "occupancy", cluster="0")
        for value in (0, 2, 9):
            hist.observe(value)
        text = prometheus_text(reg)
        assert "# HELP repro_cycles_total simulated cycles" in text
        assert "# TYPE repro_cycles_total counter" in text
        assert "repro_cycles_total 1234" in text
        assert 'repro_depth{cluster="0"} 3' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'repro_dist_bucket{cluster="0",le="1.0"} 1' in text
        assert 'repro_dist_bucket{cluster="0",le="4.0"} 2' in text
        assert 'repro_dist_bucket{cluster="0",le="+Inf"} 3' in text
        assert 'repro_dist_count{cluster="0"} 3' in text
        assert text.endswith("\n")

    def test_real_run_renders(self, tmp_path):
        run = observe_benchmark("compress", "dual", trace_length=TL)
        path = tmp_path / "metrics.prom"
        write_prometheus(path, run.metrics.registry)
        text = path.read_text()
        assert f"repro_cycles_total {run.stats.cycles}" in text
        assert 'repro_queue_occupancy{cluster="1"}' in text
