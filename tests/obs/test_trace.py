"""Typed pipeline tracing: events, sinks, recorder, and back-compat."""

import json
import pickle

import pytest

from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    PipelineEvent,
    RingSink,
    TraceRecorder,
    iter_events,
    read_jsonl,
)
from repro.uarch.config import default_assignment_for, dual_cluster_config
from repro.uarch.processor import Processor

from tests.uarch.helpers import trace_from_instructions
from tests.uarch.test_pipeline_view import add


class TestPipelineEvent:
    def test_tuple_compatibility(self):
        event = PipelineEvent(3, "issue", 7, "master", 1)
        cycle, kind, seq, role, cluster = event
        assert (cycle, kind, seq, role, cluster) == (3, "issue", 7, "master", 1)
        assert event[0] == 3 and event[1] == "issue"
        assert event == (3, "issue", 7, "master", 1)

    def test_defaults(self):
        event = PipelineEvent(0, "retire", 5)
        assert event.role == "-" and event.cluster == -1

    def test_dict_round_trip(self):
        event = PipelineEvent(11, "complete", 2, "slave", 0)
        assert PipelineEvent.from_dict(event.as_dict()) == event


class TestSinks:
    def test_memory_sink_keeps_everything(self):
        recorder = TraceRecorder.memory()
        for cycle in range(5):
            recorder.record(cycle, "issue", cycle)
        assert recorder.recorded == 5
        assert len(recorder.events) == 5

    def test_ring_sink_bounds_and_counts_drops(self):
        recorder = TraceRecorder.ring(3)
        for cycle in range(10):
            recorder.record(cycle, "issue", cycle)
        (ring,) = recorder.sinks
        assert [e.cycle for e in recorder.events] == [7, 8, 9]
        assert ring.dropped == 7

    def test_ring_sink_rejects_bad_maxlen(self):
        with pytest.raises(ValueError, match="maxlen"):
            RingSink(0)

    def test_recorder_needs_a_sink(self):
        with pytest.raises(ValueError, match="at least one sink"):
            TraceRecorder([])

    def test_fan_out_to_multiple_sinks(self):
        memory, ring = MemorySink(), RingSink(2)
        recorder = TraceRecorder([memory, ring])
        for cycle in range(4):
            recorder.record(cycle, "dispatch", cycle)
        assert len(memory.events) == 4
        assert len(ring.events) == 2


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TraceRecorder.jsonl(path) as recorder:
            recorder.record(0, "dispatch", 0, "master", 1)
            recorder.record(2, "issue", 0, "master", 1)
        events = read_jsonl(path)
        assert events == [
            PipelineEvent(0, "dispatch", 0, "master", 1),
            PipelineEvent(2, "issue", 0, "master", 1),
        ]

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TraceRecorder.jsonl(path) as recorder:
            recorder.record(0, "issue", 0)
        with path.open("a") as fh:
            fh.write('{"cycle": 1, "kind": "iss')  # killed mid-write
        assert read_jsonl(path) == [PipelineEvent(0, "issue", 0)]

    def test_lazy_open_writes_nothing_for_no_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_sink_survives_pickling(self, tmp_path):
        """Checkpointing pickles processors; the file handle must not ride."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.append(PipelineEvent(0, "issue", 0))
        pickled = pickle.dumps(sink)
        sink.close()  # the checkpointed process is gone on restore
        restored = pickle.loads(pickled)
        restored.append(PipelineEvent(1, "issue", 1))
        restored.close()
        assert [e.cycle for e in read_jsonl(path)] == [0, 1]


class TestIterEvents:
    def test_raw_tuples_upgraded(self):
        events = list(iter_events([(0, "issue", 1, "master", 0)]))
        assert events == [PipelineEvent(0, "issue", 1, "master", 0)]

    def test_recorder_source(self):
        recorder = TraceRecorder.memory()
        recorder.record(4, "retire", 9)
        assert [e.kind for e in iter_events(recorder)] == ["retire"]


class TestEventLogBackCompat:
    """``processor.event_log`` stays a drop-in for the old list attribute."""

    def _processor(self):
        config = dual_cluster_config()
        return Processor(config, default_assignment_for(config))

    def test_assigning_list_installs_memory_recorder(self):
        p = self._processor()
        p.event_log = []
        p.run(trace_from_instructions([add(4, 0, 1)]))
        assert p.recorder is not None
        assert len(p.event_log) > 0
        # Old-style tuple unpacking still works on the log.
        for cycle, kind, seq, role, cluster in p.event_log:
            assert isinstance(cycle, int) and kind

    def test_none_disables(self):
        p = self._processor()
        p.event_log = []
        p.event_log = None
        assert p.recorder is None and p.event_log is None

    def test_seeding_with_existing_tuples(self):
        p = self._processor()
        p.event_log = [(0, "issue", 0, "master", 0)]
        assert p.event_log == [PipelineEvent(0, "issue", 0, "master", 0)]

    def test_recorder_assignment_direct(self):
        p = self._processor()
        recorder = TraceRecorder.ring(16)
        p.event_log = recorder
        assert p.recorder is recorder

    def test_jsonl_recorder_streams_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        p = self._processor()
        p.recorder = TraceRecorder.jsonl(path)
        p.run(trace_from_instructions([add(4, 0, 1), add(2, 4, 4)]))
        p.recorder.close()
        events = read_jsonl(path)
        assert events
        kinds = {e.kind for e in events}
        assert {"dispatch", "issue", "complete", "retire"} <= kinds
        assert json.loads(path.read_text().splitlines()[0])["cycle"] >= 0
