"""``repro top``: the renderer is a pure function of the run directory.

Every test builds a directory with the same durable records a real
sweep leaves behind (journal shards, heartbeats, degradation events,
span files) and asserts on :func:`collect_status` /
:func:`render_status` with an injected ``now`` — no sleeping, no
subprocesses, no screen control.
"""

import os
import time

from repro.cli import main
from repro.obs.spans import SpanWriter, part_task_spans
from repro.obs.top import (
    ACTIVE_WINDOW_S,
    collect_status,
    render_status,
)
from repro.robustness.journal import RunJournal

TRACE = "t" * 16


def _populate(run_dir):
    """Two shards mid-sweep: alpha active with a heartbeat, beta idle."""
    with RunJournal(run_dir, shard="alpha") as journal:
        journal.record_completed("table2:compress", "fp1")
        journal.record_completed("table2:ora", "fp2")
        journal.record_heartbeat(
            {
                "label": "table2", "done": 2, "total": 4, "elapsed_s": 10.0,
                "rate_rows_per_s": 0.2, "eta_s": 10.0, "spans_emitted": 9,
                "journal_lag_s": 0.4,
            }
        )
    with RunJournal(run_dir, shard="beta") as journal:
        journal.record_failed("table2:gcc1", "fp3", error={"type": "SimError"})
        journal.record_event("executor_degradation", {"reason": "host-lost"})
    with SpanWriter(run_dir, shard="alpha") as writer:
        writer.write_all(
            part_task_spans(
                TRACE, "compress", "single",
                compile_units=1, trace_units=2, sim_units=3,
            )
        )
    return run_dir


class TestCollect:
    def test_counts_rows_heartbeats_events_and_spans(self, tmp_path):
        status = collect_status(_populate(tmp_path))
        assert status.rows_completed == 2
        assert status.rows_failed == 1
        assert [s.name for s in status.shards] == ["alpha", "beta"]
        alpha = status.shards[0]
        assert alpha.heartbeat["done"] == 2
        assert status.shards[1].heartbeat is None
        assert [e["kind"] for e in status.events] == ["executor_degradation"]
        assert status.span_files == {"spans-alpha.jsonl": 4}

    def test_active_window_follows_mtime(self, tmp_path):
        _populate(tmp_path)
        now = time.time()
        fresh = collect_status(tmp_path, now=now)
        assert all(shard.active for shard in fresh.shards)
        stale = collect_status(tmp_path, now=now + ACTIVE_WINDOW_S + 60.0)
        assert not any(shard.active for shard in stale.shards)

    def test_empty_directory(self, tmp_path):
        status = collect_status(tmp_path)
        assert status.shards == [] and status.span_files == {}


class TestRender:
    def test_frame_contents(self, tmp_path):
        frame = render_status(_populate(tmp_path), now=time.time())
        assert "rows: 2 completed, 1 failed, across 2 shard(s)" in frame
        assert "2/4 rows (50%)" in frame
        assert "9 spans" in frame
        assert "spans-alpha.jsonl" in frame and "4 record(s)" in frame
        assert "executor_degradation: host-lost" in frame
        lines = {line.split()[0]: line for line in frame.splitlines() if line}
        assert "active" in lines["alpha"]
        assert "no heartbeat journaled" in lines["beta"]

    def test_idle_after_the_window(self, tmp_path):
        _populate(tmp_path)
        frame = render_status(tmp_path, now=time.time() + ACTIVE_WINDOW_S + 60.0)
        assert "active" not in frame

    def test_empty_directory_hint(self, tmp_path):
        frame = render_status(tmp_path)
        assert "no journal files yet" in frame

    def test_mtime_tracks_journal_appends(self, tmp_path):
        _populate(tmp_path)
        journal = tmp_path / "journal-alpha.jsonl"
        old = time.time() - 3600.0
        os.utime(journal, (old, old))
        status = collect_status(tmp_path, now=time.time())
        assert not status.shards[0].active
        assert status.shards[0].age_s > ACTIVE_WINDOW_S


class TestCLI:
    def test_top_once_prints_a_frame(self, tmp_path, capsys):
        _populate(tmp_path)
        main(["top", str(tmp_path), "--once"])
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "2 completed" in out
        assert "\033[2J" not in out  # --once never clears the screen
