"""Sweep heartbeats and their durable journal records."""

import logging

from repro.obs.heartbeat import Heartbeat, TaskLiveness
from repro.perf.cache import ArtifactCache
from repro.robustness.journal import RunJournal


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestCadence:
    def test_emits_on_interval(self, caplog, monkeypatch):
        # The CLI's setup_logging turns propagation off for the "repro"
        # tree; restore it so caplog (rooted at the root logger) sees us.
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        clock = FakeClock()
        hb = Heartbeat(10, interval_s=5.0, clock=clock)
        with caplog.at_level(logging.INFO, logger="repro.heartbeat"):
            hb.note("a")          # 0s elapsed: silent
            clock.now += 6
            hb.note("b")          # past the interval: emits
        assert hb.emitted == 1
        assert "2/10 rows" in caplog.text

    def test_final_note_always_emits(self):
        clock = FakeClock()
        hb = Heartbeat(2, interval_s=3600.0, clock=clock)
        hb.note()
        hb.note()
        assert hb.emitted == 1  # done == total forces the last line out

    def test_none_interval_disables(self):
        hb = Heartbeat(2, interval_s=None, clock=FakeClock())
        hb.note()
        hb.note()
        assert hb.emitted == 0
        assert hb.done == 2  # counters still advance

    def test_zero_interval_emits_every_note(self):
        hb = Heartbeat(5, interval_s=0, clock=FakeClock())
        for _ in range(3):
            hb.note()
        assert hb.emitted == 3


class TestSnapshot:
    def test_eta_math(self):
        clock = FakeClock()
        hb = Heartbeat(4, interval_s=None, clock=clock)
        hb.note()
        clock.now += 10
        snap = hb.snapshot()
        assert snap["done"] == 1 and snap["total"] == 4
        assert snap["elapsed_s"] == 10.0
        assert snap["eta_s"] == 30.0  # 10s/row, 3 rows left

    def test_no_eta_before_first_row(self):
        assert Heartbeat(4, clock=FakeClock()).snapshot()["eta_s"] is None

    def test_zero_elapsed_with_rows_done_is_eta_now(self):
        # A resumed sweep can finish rows in zero wall time (all cache
        # hits under a coarse clock): ETA must be 0.0, not a crash.
        clock = FakeClock()
        hb = Heartbeat(4, interval_s=None, clock=clock)
        hb.note()
        snap = hb.snapshot()
        assert snap["elapsed_s"] == 0.0
        assert snap["eta_s"] == 0.0
        assert snap["rate_rows_per_s"] is None

    def test_zero_rows_zero_elapsed_is_silent_none(self):
        snap = Heartbeat(4, interval_s=None, clock=FakeClock()).snapshot()
        assert snap["eta_s"] is None
        assert snap["rate_rows_per_s"] is None

    def test_rate_reported_once_measurable(self):
        clock = FakeClock()
        hb = Heartbeat(4, interval_s=None, clock=clock)
        hb.note()
        hb.note()
        clock.now += 4
        assert hb.snapshot()["rate_rows_per_s"] == 0.5

    def test_zero_total_does_not_divide_by_zero(self):
        clock = FakeClock()
        hb = Heartbeat(0, interval_s=None, clock=clock)
        payload = hb.snapshot()
        assert hb._format(payload)  # percent math guards total == 0


class TestTaskLiveness:
    def test_overdue_names_expired_tasks_oldest_first(self):
        clock = FakeClock()
        liveness = TaskLiveness(clock=clock)
        liveness.start("late", timeout_s=5.0)
        clock.now += 1
        liveness.start("later", timeout_s=5.0)
        liveness.start("fine", timeout_s=60.0)
        assert liveness.overdue() == []
        clock.now += 6
        assert liveness.overdue() == ["late", "later"]

    def test_finish_returns_elapsed_and_clears(self):
        clock = FakeClock()
        liveness = TaskLiveness(clock=clock)
        liveness.start("t", timeout_s=10.0)
        clock.now += 3
        assert liveness.finish("t") == 3.0
        assert liveness.in_flight() == 0
        assert liveness.overdue() == []

    def test_double_finish_is_not_an_error(self):
        liveness = TaskLiveness(clock=FakeClock())
        liveness.start("t", timeout_s=10.0)
        assert liveness.finish("t") == 0.0
        assert liveness.finish("t") is None

    def test_oldest_age_tracks_longest_runner(self):
        clock = FakeClock()
        liveness = TaskLiveness(clock=clock)
        assert liveness.oldest_age() is None
        liveness.start("a", timeout_s=100.0)
        clock.now += 2
        liveness.start("b", timeout_s=100.0)
        clock.now += 3
        assert liveness.oldest_age() == 5.0

    def test_renew_extends_deadline_keeping_start(self):
        # The lease path: renewals push the deadline out but the entry's
        # age keeps counting from the original start.
        clock = FakeClock()
        liveness = TaskLiveness(clock=clock)
        liveness.start("lease", timeout_s=5.0)
        clock.now += 4
        liveness.renew("lease", timeout_s=5.0)
        clock.now += 4
        assert liveness.overdue() == []  # deadline moved to t=9
        assert liveness.oldest_age() == 8.0  # age still from t=0
        clock.now += 2
        assert liveness.overdue() == ["lease"]

    def test_renew_starts_missing_entry(self):
        clock = FakeClock()
        liveness = TaskLiveness(clock=clock)
        liveness.renew("new", timeout_s=5.0)
        assert liveness.in_flight() == 1
        clock.now += 6
        assert liveness.overdue() == ["new"]

    def test_cache_and_journal_fields(self, tmp_path):
        cache = ArtifactCache()
        cache.stats.compile_hits = 3
        cache.stats.compile_misses = 1
        journal = RunJournal(tmp_path)
        journal.record_heartbeat({"label": "x", "done": 0, "total": 1})
        clock = FakeClock()
        hb = Heartbeat(4, journal=journal, cache=cache, clock=clock)
        snap = hb.snapshot()
        assert snap["cache_hit_rate"] == 0.75
        assert "journal_lag_s" in snap


class TestJournalIntegration:
    def test_heartbeats_survive_reload(self, tmp_path):
        journal = RunJournal(tmp_path)
        hb = Heartbeat(3, interval_s=0, journal=journal, clock=FakeClock())
        hb.note("row-1")
        hb.note("row-2")
        assert len(journal.heartbeats) == 2

        reloaded = RunJournal(tmp_path)
        assert len(reloaded.heartbeats) == 2
        assert reloaded.heartbeats[0]["status"] == "heartbeat"
        assert reloaded.heartbeats[0]["done"] == 1

    def test_heartbeats_never_satisfy_resume(self, tmp_path):
        """A heartbeat record must not look like a completed row."""
        journal = RunJournal(tmp_path)
        Heartbeat(1, interval_s=0, journal=journal, clock=FakeClock()).note()
        reloaded = RunJournal(tmp_path)
        assert reloaded.completed("table2:compress", "any-fingerprint") is None

    def test_parallel_sweep_journals_heartbeats(self, tmp_path):
        from repro.experiments.harness import EvaluationOptions
        from repro.experiments.table2 import run_table2

        journal = RunJournal(tmp_path)
        result = run_table2(
            ["ora"],
            EvaluationOptions(trace_length=800, jobs=2, heartbeat_interval=0),
            journal,
        )
        assert len(result.rows) == 1
        assert journal.heartbeats
        last = journal.heartbeats[-1]
        assert last["done"] == last["total"] == 1

    def test_serial_sweep_stays_heartbeat_free(self, tmp_path):
        from repro.experiments.harness import EvaluationOptions
        from repro.experiments.table2 import run_table2

        journal = RunJournal(tmp_path)
        run_table2(
            ["ora"],
            EvaluationOptions(trace_length=800, heartbeat_interval=0),
            journal,
        )
        assert journal.heartbeats == []


class TestSpanFields:
    def test_spans_emitted_reported_and_formatted(self, tmp_path):
        from repro.obs.spans import SpanWriter, part_task_spans

        with SpanWriter(tmp_path) as writer:
            writer.write_all(
                part_task_spans(
                    "t" * 16, "ora", "single",
                    compile_units=1, trace_units=2, sim_units=3,
                )
            )
            hb = Heartbeat(4, spans=writer, clock=FakeClock())
            hb.done = 1
            snap = hb.snapshot()
            assert snap["spans_emitted"] == 4
            assert "4 spans" in hb._format(snap)

    def test_spanless_heartbeat_omits_the_field(self):
        snap = Heartbeat(4, clock=FakeClock()).snapshot()
        assert "spans_emitted" not in snap

    def test_journaled_heartbeats_carry_span_counts(self, tmp_path):
        from repro.experiments.harness import EvaluationOptions
        from repro.experiments.table2 import run_table2
        from repro.obs.spans import SpanWriter

        journal = RunJournal(tmp_path)
        writer = SpanWriter(tmp_path)
        run_table2(
            ["ora"],
            EvaluationOptions(
                trace_length=800, jobs=2, heartbeat_interval=0, spans=writer,
            ),
            journal,
        )
        writer.close()
        assert journal.heartbeats
        last = journal.heartbeats[-1]
        assert last["spans_emitted"] >= 4

    def test_eta_is_monotone_while_progress_stalls(self):
        clock = FakeClock()
        hb = Heartbeat(10, clock=clock)
        clock.now += 10.0
        hb.done = 5
        first = hb.snapshot()["eta_s"]
        clock.now += 20.0  # no new rows: rate drops, ETA must not shrink
        second = hb.snapshot()["eta_s"]
        assert second >= first
