"""Metrics registry and pipeline time-series sampling."""

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    PipelineMetrics,
)
from repro.obs.runner import observe_benchmark


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help text")
        b = reg.counter("repro_x_total")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_labels_distinguish_metrics(self):
        reg = MetricsRegistry()
        c0 = reg.counter("repro_issued", cluster="0")
        c1 = reg.counter("repro_issued", cluster="1")
        assert c0 is not c1
        assert c0.key == 'repro_issued{cluster="0"}'

    def test_dist_metrics_preregisters_totals(self):
        from repro.obs.metrics import dist_metrics

        reg = dist_metrics()
        snapshot = reg.snapshot()
        for name in (
            "dist_hosts_registered", "dist_host_losses", "dist_dispatches",
            "dist_redispatches", "dist_tasks_completed",
            "dist_duplicate_results", "dist_lease_expirations",
            "dist_task_deadline_expirations", "dist_degradations",
        ):
            assert snapshot[name] == 0  # explicit zeros on healthy runs
        # Per-host series are labeled views over the same registry.
        reg.counter("dist_host_tasks_completed", host="h0").inc()
        assert reg.snapshot()['dist_host_tasks_completed{host="h0"}'] == 1

    def test_same_name_different_kind_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("repro_x")

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_histogram_buckets(self):
        h = Histogram("h", bounds=(1, 4, 16))
        for value in (0, 1, 2, 5, 100):
            h.observe(value)
        # Per-bucket (non-cumulative) counts: le=1, le=4, le=16, +Inf.
        # Bounds are inclusive, so the observation of exactly 1 lands in
        # the le=1 bucket.
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5 and h.sum == 108.0

    def test_snapshot_and_help(self):
        reg = MetricsRegistry()
        reg.gauge("repro_depth", "queue depth").set(7)
        assert reg.snapshot() == {"repro_depth": 7}
        assert reg.help_of("repro_depth") == "queue depth"
        assert reg.type_of("repro_depth") == "gauge"


class TestPipelineMetrics:
    def test_interval_validated(self):
        with pytest.raises(ValueError, match="interval"):
            PipelineMetrics(interval=0)

    def test_sampling_on_real_run(self):
        run = observe_benchmark(
            "compress", "dual", trace_length=1500, sample_interval=50
        )
        metrics = run.metrics
        assert metrics.samples, "expected at least one sample"
        cycles = [cycle for cycle, _ in metrics.samples]
        assert cycles == sorted(set(cycles)), "sample cycles strictly increase"
        # Per-cluster gauges exist for both clusters of the 2x4 machine.
        first_values = metrics.samples[0][1]
        assert 'repro_queue_occupancy{cluster="0"}' in first_values
        assert 'repro_queue_occupancy{cluster="1"}' in first_values
        assert "repro_rob_occupancy" in first_values

    def test_finalize_mirrors_run_counters(self):
        run = observe_benchmark("compress", "single", trace_length=1500)
        snapshot = run.metrics.registry.snapshot()
        assert snapshot["repro_cycles_total"] == run.stats.cycles
        assert snapshot["repro_instructions_total"] == run.stats.instructions
        issued = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("repro_issued_uops_total{")
        )
        assert issued == sum(c.issued for c in run.stats.clusters)

    def test_payload_shape(self):
        run = observe_benchmark("compress", "dual", trace_length=1200,
                                sample_interval=60)
        payload = run.metrics.payload()
        assert payload["interval"] >= 60
        assert isinstance(payload["final"], dict)
        assert payload["series"]
        assert {"cycle", "values"} <= set(payload["series"][0])
        assert payload["samples_dropped"] >= 0
        # The payload rides on the stats object for exporters.
        assert run.stats.metrics == payload

    def test_thinning_bounds_memory(self):
        from repro.uarch.config import default_assignment_for, single_cluster_config
        from repro.uarch.processor import Processor

        sampler = PipelineMetrics(interval=1, max_samples=8)
        config = single_cluster_config()
        processor = Processor(config, default_assignment_for(config))
        sampler.attach(processor)
        for cycle in range(50):
            sampler.on_cycle(processor, cycle)
        assert len(sampler.samples) <= 8 + 1
        assert sampler.samples_dropped > 0
        assert sampler.interval > 1  # stride doubled under pressure
        # Every retained cycle is still strictly increasing.
        cycles = [cycle for cycle, _ in sampler.samples]
        assert cycles == sorted(set(cycles))
