"""The ``repro trace`` / ``repro stats`` commands and the logging flags."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.export import validate_stats_payload


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "compress"])
        assert args.machine == "dual"
        assert tuple(args.window) == (0, 24)

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats", "compress"])
        assert args.machine == "both"
        assert args.interval == 100

    def test_logging_flags_both_sides_of_command(self):
        parser = build_parser()
        before = parser.parse_args(["-v", "trace", "compress"])
        after = parser.parse_args(["trace", "compress", "-v"])
        assert before.verbose == after.verbose == 1
        assert parser.parse_args(["stats", "compress", "--quiet"]).quiet


class TestTraceCommand:
    def test_renders_chart(self, capsys):
        main(["trace", "compress", "--trace-length", "600",
              "--window", "0", "8"])
        out = capsys.readouterr().out
        assert "compress on dual-4way" in out
        assert "D=dispatch" in out
        assert "master" in out

    def test_single_machine(self, capsys):
        main(["trace", "compress", "--machine", "single",
              "--trace-length", "600", "--window", "0", "4"])
        out = capsys.readouterr().out
        assert "single-8way" in out

    def test_jsonl_export(self, tmp_path, capsys):
        from repro.obs.trace import read_jsonl

        path = tmp_path / "events.jsonl"
        main(["trace", "compress", "--trace-length", "600",
              "--window", "0", "4", "--jsonl", str(path)])
        events = read_jsonl(path)
        assert events
        assert {e.kind for e in events} >= {"dispatch", "issue", "retire"}


class TestStatsCommand:
    def test_both_machines_with_diff(self, capsys):
        main(["stats", "compress", "--trace-length", "1500"])
        out = capsys.readouterr().out
        assert "single-8way" in out and "dual-4way" in out
        assert "stall attribution — single vs dual" in out

    def test_json_export_validates(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        main(["stats", "compress", "--trace-length", "1500",
              "--json", str(path)])
        document = json.loads(path.read_text())
        validate_stats_payload(document)
        assert document["benchmark"] == "compress"
        assert [run["machine"] for run in document["runs"]] == ["single", "dual"]

    def test_prom_export(self, tmp_path, capsys):
        path = tmp_path / "metrics.prom"
        main(["stats", "compress", "--machine", "dual",
              "--trace-length", "1500", "--prom", str(path)])
        text = path.read_text()
        assert "# TYPE repro_cycles_total counter" in text

    def test_prom_needs_single_machine(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stats", "compress", "--trace-length", "1500",
                  "--prom", "out.prom"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--prom" in err


class TestLoggingBehavior:
    def test_quiet_silences_diagnostics(self, capsys):
        main(["stats", "compress", "--trace-length", "1500",
              "--machine", "single", "--quiet"])
        captured = capsys.readouterr()
        assert "cache" not in captured.err  # cache stats line suppressed
        assert "single-8way" in captured.out  # results still print

    def test_verbose_prefixes_logger_names(self, capsys):
        main(["-v", "stats", "compress", "--trace-length", "1500",
              "--machine", "single"])
        err = capsys.readouterr().err
        assert "repro.cli:" in err


class TestSpansCommands:
    @pytest.fixture(scope="class")
    def spanned_run(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("spanned")
        main(
            [
                "table2", "--benchmarks", "ora", "--trace-length", "1000",
                "--jobs", "2", "--spans", "--resume", str(run_dir), "--quiet",
            ]
        )
        return run_dir

    def test_spans_flag_writes_the_sink(self, spanned_run):
        lines = (spanned_run / "spans.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        # 1 benchmark x 3 parts x 4 spans + sweep root, plus wall-clock
        # dispatch spans from the pool executor.
        kinds = {r["kind"] for r in records}
        assert {"sweep", "task", "compile", "tracegen", "simulate"} <= kinds
        assert len([r for r in records if r["kind"] == "task"]) == 3

    def test_summarize_renders_table_and_critical_path(self, spanned_run, capsys):
        main(["spans", "summarize", str(spanned_run)])
        out = capsys.readouterr().out
        assert "deterministic" in out
        assert "critical path: ora:" in out

    def test_summarize_json(self, spanned_run, capsys):
        main(["spans", "summarize", str(spanned_run), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["kinds"]["task"]["count"] == 3
        assert payload["critical_path"]["task"].startswith("ora:")

    def test_export_writes_a_valid_chrome_trace(self, spanned_run, tmp_path):
        from repro.obs.spans import validate_chrome_trace

        out = tmp_path / "trace.json"
        main(["spans", "export", str(spanned_run), "--output", str(out)])
        document = json.loads(out.read_text())
        validate_chrome_trace(document)
        assert any(e.get("ph") == "X" for e in document["traceEvents"])

    def test_summarize_of_a_spanless_directory_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as info:
            main(["spans", "summarize", str(tmp_path)])
        assert info.value.code == 2

    def test_spans_dir_routes_the_sink(self, tmp_path):
        sink = tmp_path / "sink"
        main(
            [
                "table2", "--benchmarks", "ora", "--trace-length", "1000",
                "--spans-dir", str(sink), "--quiet",
            ]
        )
        assert (sink / "spans.jsonl").exists()
