"""The span identity contract (ISSUE 10 acceptance).

Spans carry content-derived IDs and virtual work-unit times, so a Table
2 sweep must leave the *same* canonical deterministic span set no matter
how it was orchestrated: serially, across a thread pool, resumed after a
kill mid-run, or sharded across two worker hosts and folded back with
``repro journal merge``.  Each test here compares canonical merged
``spans.jsonl`` files byte for byte against one serial reference.
"""

import json
import os
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.obs.spans import SpanWriter, load_run_spans, split_spans
from repro.robustness.journal import RunJournal, merge_journals

TL = 600
BENCHMARKS = ["compress", "ora"]
SRC_DIR = Path(repro.__file__).resolve().parent.parent


def _options(**overrides):
    return EvaluationOptions(trace_length=TL, **overrides)


def _run(run_dir, shard=None, **overrides):
    """One journaled, spanned table2 sweep into ``run_dir``."""
    writer = SpanWriter(run_dir, shard=shard)
    journal = RunJournal(run_dir, shard=shard)
    try:
        return run_table2(
            BENCHMARKS, _options(spans=writer, **overrides), journal=journal
        )
    finally:
        journal.close()
        writer.close()


def _merged_spans(run_dir, out_dir):
    merge_journals([run_dir], out_dir)
    return (Path(out_dir) / "spans.jsonl").read_bytes()


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """Canonical merged span bytes of a plain serial run."""
    run_dir = tmp_path_factory.mktemp("serial")
    _run(run_dir)
    return _merged_spans(run_dir, run_dir / "merged")


class TestReferenceShape:
    def test_serial_span_population(self, serial_reference):
        spans = [
            json.loads(line) for line in serial_reference.decode().splitlines()
        ]
        kinds = {}
        for span in spans:
            kinds[span["kind"]] = kinds.get(span["kind"], 0) + 1
        # 2 benchmarks x 3 parts x (task + 3 stages) + the sweep root.
        assert kinds == {
            "sweep": 1, "task": 6, "compile": 6, "tracegen": 6, "simulate": 6,
        }
        assert len({span["trace_id"] for span in spans}) == 1
        assert len({span["span_id"] for span in spans}) == len(spans)


class TestJobsIdentity:
    def test_pool_sweep_is_bit_identical(self, tmp_path, serial_reference):
        _run(tmp_path, jobs=2)
        assert _merged_spans(tmp_path, tmp_path / "merged") == serial_reference


class TestKillResumeIdentity:
    def test_truncated_run_resumes_bit_identical(self, tmp_path, serial_reference):
        """A sweep killed mid-append (torn journal line, torn span line)
        re-emits reused rows' spans on resume; the merge folds the
        duplicates back to the serial reference."""
        _run(tmp_path)
        journal_file = tmp_path / "journal.jsonl"
        lines = journal_file.read_text().splitlines(keepends=True)
        # SIGKILL simulation: lose the last complete record and leave a
        # torn half-line behind, in the journal and the span sink both.
        journal_file.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        with open(tmp_path / "spans.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"trace_id": "half-a-record')
        resumed = _run(tmp_path)
        assert resumed.failures == []
        assert _merged_spans(tmp_path, tmp_path / "merged") == serial_reference

    def test_resume_of_a_complete_run_changes_nothing(
        self, tmp_path, serial_reference
    ):
        _run(tmp_path)
        _run(tmp_path)  # all rows reused from the journal
        assert _merged_spans(tmp_path, tmp_path / "merged") == serial_reference


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_worker(port, host, run_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker", "serve",
            "--connect", f"127.0.0.1:{port}", "--host", host,
            "--run-dir", str(run_dir), "--connect-retries", "120", "--quiet",
        ],
        env=env,
    )


class TestDistributedIdentity:
    def test_two_host_sweep_merges_bit_identical(self, tmp_path, serial_reference):
        """Two worker processes journal their own span shards
        (spans-<host>.jsonl); the coordinator journals the full driver
        set; ``merge_journals`` folds all three into the serial bytes."""
        port = _free_port()
        workers = [_spawn_worker(port, f"h{i}", tmp_path) for i in range(2)]
        try:
            result = _run(
                tmp_path,
                shard="coord",
                jobs=2,
                executor="distributed",
                task_timeout=60.0,
                dist_port=port,
                dist_min_hosts=2,
                dist_wait_s=60.0,
            )
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.kill()
            for proc in workers:
                proc.wait(timeout=10.0)
        assert result.failures == []
        # Workers journaled spans host-side before sending results.
        worker_shards = sorted(tmp_path.glob("spans-h*.jsonl"))
        assert [p.name for p in worker_shards] == [
            "spans-h0.jsonl", "spans-h1.jsonl",
        ]
        assert all(p.stat().st_size > 0 for p in worker_shards)
        assert _merged_spans(tmp_path, tmp_path / "merged") == serial_reference
        # Wall-clock orchestration spans (dispatch, host leases) are
        # real but land in the non-canonical sidecar.
        _, wall = split_spans(load_run_spans(tmp_path / "merged"))
        assert wall and all(not s.deterministic for s in wall)
