"""Stall attribution: the exact-accounting identity and its reports."""

import pytest

from repro.obs.runner import observe_benchmark
from repro.obs.stall import (
    CAUSES,
    StallAccounting,
    check_identity,
    diff_reports,
    format_report,
)

TL = 2000


class TestUnitAccounting:
    def test_priority_order_charges_observed_blocks_first(self):
        acct = StallAccounting([4])
        acct.note_issue(0, 2, blocked_buffer=1, occupied=True)
        payload = acct.as_dict(1)
        assert payload["causes"]["transfer_wait"] == 1
        assert payload["causes"]["operand_wait"] == 1
        assert payload["issued_slots"] == 2
        check_identity(payload)

    def test_full_issue_leaves_nothing_to_attribute(self):
        acct = StallAccounting([4])
        acct.note_issue(0, 4, blocked_buffer=3)
        payload = acct.as_dict(1)
        assert payload["stalled_slots"] == 0
        check_identity(payload)

    def test_dispatch_block_classifies_empty_queue(self):
        acct = StallAccounting([4])
        # Cycle N's dispatch blocked on a full free list; cycle N+1's
        # issue stage (which runs before dispatch clears the flag) sees
        # an empty queue and charges the front end.
        acct.note_dispatch_block("regfile_full")
        acct.note_issue(0, 0, occupied=False)
        acct.begin_dispatch()
        assert acct.as_dict(1)["causes"]["regfile_full"] == 4

    def test_drain_vs_fetch_starved(self):
        acct = StallAccounting([2])
        acct.note_issue(0, 0, occupied=False, draining=True)
        acct.note_issue(0, 0, occupied=False, draining=False)
        payload = acct.as_dict(2)
        assert payload["causes"]["drain"] == 2
        assert payload["causes"]["fetch_starved"] == 2
        check_identity(payload)

    def test_fast_forward_accounting(self):
        acct = StallAccounting([4, 4])
        acct.note_issue(0, 1, occupied=True)
        acct.note_issue(1, 0, occupied=False)
        acct.note_skipped(5, occupied=[True, False], draining=False)
        payload = acct.as_dict(6)
        check_identity(payload)
        assert payload["clusters"][0]["causes"]["operand_wait"] == 3 + 5 * 4
        assert payload["clusters"][1]["causes"]["fetch_starved"] == 4 + 5 * 4

    def test_check_identity_rejects_imbalance(self):
        acct = StallAccounting([4])
        acct.note_issue(0, 1, occupied=True)
        payload = acct.as_dict(1)
        payload["causes"]["operand_wait"] += 1
        payload["stalled_slots"] += 1
        with pytest.raises(ValueError, match="does not balance"):
            check_identity(payload)


class TestRealRuns:
    """The acceptance criterion: totals sum exactly to cycles x width."""

    @pytest.fixture(scope="class")
    def single(self):
        return observe_benchmark("compress", "single", trace_length=TL,
                                 sample_interval=None)

    @pytest.fixture(scope="class")
    def dual(self):
        return observe_benchmark("compress", "dual", trace_length=TL,
                                 sample_interval=None)

    def test_single_identity(self, single):
        payload = single.stats.stall_attribution
        check_identity(payload)
        assert payload["issue_width"] == 8
        assert payload["total_slots"] == single.stats.cycles * 8

    def test_dual_identity(self, dual):
        payload = dual.stats.stall_attribution
        check_identity(payload)
        assert payload["issue_width"] == 8  # 2 clusters x 4
        assert len(payload["clusters"]) == 2
        for cluster in payload["clusters"]:
            assert cluster["width"] == 4

    def test_dual_pays_transfer_wait(self, single, dual):
        """The paper's story: clustering introduces transfer stalls."""
        assert single.stats.stall_attribution["causes"]["transfer_wait"] == 0
        assert dual.stats.stall_attribution["causes"]["transfer_wait"] > 0

    def test_every_cause_is_known(self, dual):
        assert set(dual.stats.stall_attribution["causes"]) == set(CAUSES)

    def test_dual_local_machine_accounted_too(self):
        run = observe_benchmark("compress", "dual-local", trace_length=TL,
                                sample_interval=None)
        check_identity(run.stats.stall_attribution)


class TestReports:
    def test_format_report(self):
        acct = StallAccounting([4])
        acct.note_issue(0, 2, blocked_buffer=2)
        text = format_report(acct.as_dict(1), label="unit")
        assert "stall attribution — unit" in text
        assert "transfer_wait" in text
        assert "50.0%" in text  # 2 of 4 slots issued

    def test_diff_reports(self):
        a, b = StallAccounting([8]), StallAccounting([4, 4])
        a.note_issue(0, 8)
        b.note_issue(0, 2, blocked_buffer=2, occupied=True)
        b.note_issue(1, 4)
        text = diff_reports(a.as_dict(1), b.as_dict(1), "single", "dual")
        assert "single vs dual" in text
        assert "transfer_wait" in text
        assert "(issued)" in text
