"""The Figure 6 worked example: the paper's published orders must hold."""

from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.partition.local import LocalScheduler
from repro.experiments.figure6 import (
    PAPER_ASSIGNMENT_ORDER,
    PAPER_BLOCK_ORDER,
    build_figure6_program,
    run_figure6,
)


class TestFigure6:
    def test_block_traversal_order_matches_paper(self):
        result = run_figure6()
        assert result.block_order == PAPER_BLOCK_ORDER

    def test_assignment_order_matches_paper(self):
        result = run_figure6()
        assert result.assignment_order == PAPER_ASSIGNMENT_ORDER

    def test_matches_paper_flag(self):
        assert run_figure6().matches_paper

    def test_stack_pointer_not_partitioned(self):
        result = run_figure6()
        assert "S" not in result.partition
        assert "S" not in result.assignment_order

    def test_every_local_candidate_assigned(self):
        result = run_figure6()
        assert set(result.partition) == set(PAPER_ASSIGNMENT_ORDER)
        assert set(result.partition.values()) <= {0, 1}

    def test_deterministic(self):
        assert run_figure6().partition == run_figure6().partition


class TestFigure6Structure:
    def test_program_shape(self):
        prog = build_figure6_program()
        assert prog.cfg.labels() == ["bb1", "bb2", "bb3", "bb4", "bb5"]
        # Twelve numbered instructions plus four control transfers
        # (bb1 and bb4 conditionals, bb2's jump, bb5's return).
        assert prog.instruction_count() == 16

    def test_profile_counts(self):
        prog = build_figure6_program()
        counts = {b.label: b.profile_count for b in prog.cfg.blocks()}
        assert counts == {"bb1": 20, "bb2": 10, "bb3": 10, "bb4": 100, "bb5": 20}

    def test_s_is_global_candidate(self):
        prog = build_figure6_program()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        s_ranges = [lr for lr in lrs if lr.value.name == "S"]
        assert s_ranges
        assert all(lr.global_candidate for lr in s_ranges)

    def test_live_ranges_one_per_letter(self):
        prog = build_figure6_program()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        names = sorted(lr.name for lr in lrs.local_candidates())
        assert names == sorted(PAPER_ASSIGNMENT_ORDER)


class TestSchedulerKnobs:
    def test_threshold_zero_forces_strict_balance(self):
        prog = build_figure6_program()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        scheduler = LocalScheduler(imbalance_threshold=0)
        partition = scheduler.partition(prog, lrs)
        clusters = set(partition.values())
        assert clusters == {0, 1}

    def test_huge_threshold_lets_preferences_rule(self):
        prog = build_figure6_program()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        scheduler = LocalScheduler(imbalance_threshold=1000)
        partition = scheduler.partition(prog, lrs)
        # With balance disabled, preferences co-locate nearly everything.
        counts = [0, 0]
        for c in partition.values():
            counts[c] += 1
        assert max(counts) >= len(partition) - 2

    def test_prefix_scope_variant_runs(self):
        prog = build_figure6_program()
        lrs = build_live_ranges(prog)
        designate_global_candidates(lrs)
        scheduler = LocalScheduler(imbalance_scope="prefix")
        partition = scheduler.partition(prog, lrs)
        assert len(partition) == len(PAPER_ASSIGNMENT_ORDER)
