"""Tests for compile-time balance estimation."""

import pytest

from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.balance import (
    DistributionStats,
    il_plan,
    imbalance_around,
    imbalance_before,
    static_distribution_stats,
)
from repro.core.distribution import Scenario
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def block_program(n=4):
    """One block computing a chain of n adds over distinct values."""
    b = ProgramBuilder("p")
    b.block("b0", count=10)
    b.op(Opcode.LDA, "v0", imm=0)
    for i in range(1, n):
        b.op(Opcode.ADDQ, f"v{i}", f"v{i-1}", f"v{i-1}")
    return b.build()


def ranges_for(prog):
    lrs = build_live_ranges(prog)
    designate_global_candidates(lrs)
    return lrs


class TestIlPlan:
    def test_unassigned_operands_are_wildcards(self):
        prog = block_program()
        lrs = ranges_for(prog)
        instr = prog.cfg.block("b0").instructions[1]
        plan = il_plan(instr, lrs, {}, 2)
        assert plan.scenario is Scenario.SINGLE

    def test_assigned_operands_constrain_plan(self):
        prog = block_program()
        lrs = ranges_for(prog)
        cluster_of = {lr.lrid: 0 for lr in lrs}
        v1 = lrs.range_named("v1")
        cluster_of[v1.lrid] = 1
        # v1 = v0 + v0 with v0 in c0 and v1 in c1 -> dual.
        instr = prog.cfg.block("b0").instructions[1]
        plan = il_plan(instr, lrs, cluster_of, 2)
        assert plan.is_dual

    def test_global_candidates_everywhere(self):
        b = ProgramBuilder("p")
        sp = b.stack_pointer_value()
        b.block("b0")
        b.load("x", sp)
        prog = b.build()
        lrs = ranges_for(prog)
        x = lrs.range_named("x")
        plan = il_plan(
            prog.cfg.block("b0").instructions[0], lrs, {x.lrid: 1}, 2
        )
        # Global SP readable everywhere: single distribution to x's cluster.
        assert plan.scenario is Scenario.SINGLE
        assert plan.master == 1


class TestImbalance:
    def test_unassigned_block_has_zero_imbalance(self):
        prog = block_program()
        lrs = ranges_for(prog)
        block = prog.cfg.block("b0")
        cluster_of = {lr.lrid: None for lr in lrs}
        assert imbalance_around(block, 2, lrs, cluster_of, 2) == 0

    def test_one_sided_assignment_counts(self):
        prog = block_program(4)
        lrs = ranges_for(prog)
        block = prog.cfg.block("b0")
        cluster_of = {lr.lrid: 0 for lr in lrs}
        assert imbalance_around(block, 2, lrs, cluster_of, 2) == 4

    def test_balanced_assignment_near_zero(self):
        prog = block_program(4)
        lrs = ranges_for(prog)
        block = prog.cfg.block("b0")
        cluster_of = {lr.lrid: lr.lrid % 2 for lr in lrs}
        assert abs(imbalance_around(block, 2, lrs, cluster_of, 2)) <= 2

    def test_prefix_scope_counts_less(self):
        prog = block_program(6)
        lrs = ranges_for(prog)
        block = prog.cfg.block("b0")
        cluster_of = {lr.lrid: 0 for lr in lrs}
        whole = imbalance_around(block, 1, lrs, cluster_of, 2, scope="block")
        prefix = imbalance_before(block, 1, lrs, cluster_of, 2)
        assert prefix <= whole
        assert prefix == 1  # only the first instruction precedes index 1


class TestDistributionStats:
    def test_one_sided_stats(self):
        prog = block_program(4)
        lrs = ranges_for(prog)
        cluster_of = {lr.lrid: 0 for lr in lrs}
        stats = static_distribution_stats(prog, lrs, cluster_of, 2)
        assert stats.dual == 0
        assert stats.single_per_cluster[0] == pytest.approx(40.0)  # 4 instrs x count 10
        assert stats.balance == pytest.approx(0.0)

    def test_dual_fraction(self):
        prog = block_program(4)
        lrs = ranges_for(prog)
        cluster_of = {lr.lrid: lr.lrid % 2 for lr in lrs}
        stats = static_distribution_stats(prog, lrs, cluster_of, 2)
        assert 0.0 <= stats.dual_fraction <= 1.0
        assert stats.total == pytest.approx(40.0)

    def test_empty_stats_degenerate(self):
        stats = DistributionStats(single_per_cluster=[0.0, 0.0])
        assert stats.dual_fraction == 0.0
        assert stats.balance == 1.0
