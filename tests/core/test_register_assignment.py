"""Tests for the architectural-register-to-cluster assignment."""

import pytest

from repro.core.registers import RegisterAssignment
from repro.isa.registers import (
    GLOBAL_POINTER,
    INT_ZERO,
    FP_ZERO,
    STACK_POINTER,
    RegisterClass,
    all_registers,
    fp_reg,
    int_reg,
)


class TestEvenOdd:
    def test_even_registers_to_cluster0(self):
        a = RegisterAssignment.even_odd_dual()
        assert a.clusters_of(int_reg(0)) == frozenset({0})
        assert a.clusters_of(int_reg(4)) == frozenset({0})
        assert a.clusters_of(fp_reg(2)) == frozenset({0})

    def test_odd_registers_to_cluster1(self):
        a = RegisterAssignment.even_odd_dual()
        assert a.clusters_of(int_reg(1)) == frozenset({1})
        assert a.clusters_of(fp_reg(7)) == frozenset({1})

    def test_sp_gp_are_global(self):
        a = RegisterAssignment.even_odd_dual()
        assert a.is_global(STACK_POINTER)
        assert a.is_global(GLOBAL_POINTER)
        assert a.home_cluster(STACK_POINTER) is None

    def test_zero_registers_global(self):
        a = RegisterAssignment.even_odd_dual()
        assert a.clusters_of(INT_ZERO) == frozenset({0, 1})
        assert a.clusters_of(FP_ZERO) == frozenset({0, 1})

    def test_home_cluster_for_locals(self):
        a = RegisterAssignment.even_odd_dual()
        assert a.home_cluster(int_reg(6)) == 0
        assert a.home_cluster(int_reg(7)) == 1

    def test_local_register_pools_disjoint(self):
        a = RegisterAssignment.even_odd_dual()
        c0 = set(a.local_registers(0, RegisterClass.INT))
        c1 = set(a.local_registers(1, RegisterClass.INT))
        assert not (c0 & c1)
        assert all(r.index % 2 == 0 for r in c0)
        assert all(r.index % 2 == 1 for r in c1)

    def test_global_registers_are_sp_gp_by_default(self):
        a = RegisterAssignment.even_odd_dual()
        assert set(a.global_registers(RegisterClass.INT)) == {STACK_POINTER, GLOBAL_POINTER}
        assert a.global_registers(RegisterClass.FP) == ()

    def test_extra_globals(self):
        a = RegisterAssignment.even_odd_dual(extra_globals=(int_reg(8), fp_reg(8)))
        assert a.is_global(int_reg(8))
        assert fp_reg(8) in a.global_registers(RegisterClass.FP)
        # The extra global leaves its parity pool.
        assert int_reg(8) not in a.local_registers(0, RegisterClass.INT)


class TestLowHigh:
    def test_split_at_sixteen(self):
        a = RegisterAssignment.low_high_dual()
        assert a.home_cluster(int_reg(3)) == 0
        assert a.home_cluster(int_reg(20)) == 1

    def test_sp_gp_still_global(self):
        a = RegisterAssignment.low_high_dual()
        assert a.is_global(STACK_POINTER)


class TestSingleCluster:
    def test_everything_in_cluster0(self):
        a = RegisterAssignment.single_cluster()
        for reg in all_registers():
            assert a.clusters_of(reg) == frozenset({0})

    def test_nothing_global(self):
        a = RegisterAssignment.single_cluster()
        assert not a.is_global(STACK_POINTER)


class TestValidation:
    def test_missing_register_rejected(self):
        with pytest.raises(ValueError):
            RegisterAssignment(2, {})

    def test_empty_cluster_set_rejected(self):
        mapping = {r: frozenset({r.index % 2}) for r in all_registers()}
        mapping[int_reg(5)] = frozenset()
        with pytest.raises(ValueError):
            RegisterAssignment(2, mapping)

    def test_describe_mentions_clusters(self):
        text = RegisterAssignment.even_odd_dual().describe()
        assert "cluster 0" in text and "globals" in text


class TestRoundRobin:
    """The modulo-N map behind the gym's arbitrary cluster counts."""

    def test_round_robin_two_is_exactly_even_odd(self):
        rr = RegisterAssignment.round_robin(2)
        eo = RegisterAssignment.even_odd_dual()
        for reg in all_registers():
            assert rr.clusters_of(reg) == eo.clusters_of(reg)

    def test_round_robin_one_is_the_monolithic_map(self):
        rr = RegisterAssignment.round_robin(1)
        mono = RegisterAssignment.single_cluster()
        for reg in all_registers():
            assert rr.clusters_of(reg) == mono.clusters_of(reg)

    def test_modulo_three_homes(self):
        a = RegisterAssignment.round_robin(3)
        everywhere = frozenset({0, 1, 2})
        for reg in all_registers():
            owners = a.clusters_of(reg)
            if owners == everywhere:
                continue  # zero registers, SP/GP
            assert owners == frozenset({reg.index % 3})
        assert a.clusters_of(INT_ZERO) == everywhere
        assert a.is_global(STACK_POINTER) and a.is_global(GLOBAL_POINTER)

    def test_extra_globals_widened_everywhere(self):
        extra = int_reg(9)
        a = RegisterAssignment.round_robin(4, extra_globals=[extra])
        assert a.clusters_of(extra) == frozenset({0, 1, 2, 3})
        assert a.clusters_of(int_reg(10)) == frozenset({2})
