"""Tests for the baseline partitioners and the partitioner interface."""

from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.partition import (
    LocalScheduler,
    RandomPartitioner,
    RoundRobinPartitioner,
    SingleClusterPartitioner,
    complete_partition,
)
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def sample():
    b = ProgramBuilder("p")
    sp = b.stack_pointer_value()
    b.block("b0", count=10)
    for i in range(8):
        b.op(Opcode.LDA, f"v{i}", imm=i)
    for i in range(8):
        b.store(f"v{i}", sp)
    prog = b.build()
    lrs = build_live_ranges(prog)
    designate_global_candidates(lrs)
    return prog, lrs


class TestRoundRobin:
    def test_alternates(self):
        prog, lrs = sample()
        part = RoundRobinPartitioner().partition(prog, lrs)
        values = [part[lr.lrid] for lr in lrs.local_candidates()]
        assert values == [i % 2 for i in range(len(values))]

    def test_skips_globals(self):
        prog, lrs = sample()
        part = RoundRobinPartitioner().partition(prog, lrs)
        for lr in lrs.global_candidates():
            assert lr.lrid not in part


class TestRandom:
    def test_deterministic_per_seed(self):
        prog, lrs = sample()
        p1 = RandomPartitioner(seed=7).partition(prog, lrs)
        p2 = RandomPartitioner(seed=7).partition(prog, lrs)
        assert p1 == p2

    def test_different_seeds_differ(self):
        prog, lrs = sample()
        p1 = RandomPartitioner(seed=1).partition(prog, lrs)
        p2 = RandomPartitioner(seed=2).partition(prog, lrs)
        assert p1 != p2

    def test_values_are_clusters(self):
        prog, lrs = sample()
        part = RandomPartitioner(seed=1).partition(prog, lrs)
        assert set(part.values()) <= {0, 1}


class TestSingleCluster:
    def test_everything_one_side(self):
        prog, lrs = sample()
        part = SingleClusterPartitioner(cluster=1).partition(prog, lrs)
        assert set(part.values()) == {1}


class TestInterface:
    def test_partition_by_value_collapses_webs(self):
        prog, lrs = sample()
        scheduler = LocalScheduler()
        by_value = scheduler.partition_by_value(prog, lrs)
        assert by_value
        assert all(isinstance(k, int) for k in by_value)

    def test_complete_partition_fills_unassigned(self):
        prog, lrs = sample()
        partial = {lr.lrid: None for lr in lrs.local_candidates()}
        full = complete_partition(lrs, partial)
        assert len(full) == len(lrs.local_candidates())
        counts = [0, 0]
        for c in full.values():
            counts[c] += 1
        assert abs(counts[0] - counts[1]) <= 1

    def test_local_scheduler_covers_all_candidates(self):
        prog, lrs = sample()
        part = LocalScheduler().partition(prog, lrs)
        assert set(part) == {lr.lrid for lr in lrs.local_candidates()}


class TestNClusterCompletion:
    def test_complete_partition_round_robins_three_clusters(self):
        prog, lrs = sample()
        partial = {lr.lrid: None for lr in lrs.local_candidates()}
        full = complete_partition(lrs, partial, num_clusters=3)
        assert len(full) == len(lrs.local_candidates())
        counts = [0, 0, 0]
        for c in full.values():
            assert c in (0, 1, 2)
            counts[c] += 1
        assert max(counts) - min(counts) <= 1

    def test_preassigned_clusters_survive_completion(self):
        prog, lrs = sample()
        locals_ = lrs.local_candidates()
        pinned = locals_[0].lrid
        partial = {lr.lrid: None for lr in locals_}
        partial[pinned] = 2
        full = complete_partition(lrs, partial, num_clusters=3)
        assert full[pinned] == 2
