"""Tests for the affinity-graph (Kernighan-Lin) partitioner."""

import pytest

from repro.compiler.webs import (
    build_live_ranges,
    compute_spill_weights,
    designate_global_candidates,
)
from repro.core.partition import AffinityPartitioner
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode


def two_community_program():
    """Two independent computation chains: an obvious 2-way split."""
    b = ProgramBuilder("p")
    b.block("b0", count=10)
    # Community A.
    b.op(Opcode.LDA, "a0", imm=1)
    b.op(Opcode.ADDQ, "a1", "a0", "a0")
    b.op(Opcode.ADDQ, "a2", "a1", "a0")
    b.op(Opcode.ADDQ, "a3", "a2", "a1")
    b.store("a3", "a3")
    # Community B.
    b.op(Opcode.LDA, "b0", imm=2)
    b.op(Opcode.ADDQ, "b1", "b0", "b0")
    b.op(Opcode.ADDQ, "b2", "b1", "b0")
    b.op(Opcode.ADDQ, "b3", "b2", "b1")
    b.store("b3", "b3")
    return b.build()


def prepared(prog):
    lrs = build_live_ranges(prog)
    designate_global_candidates(lrs)
    compute_spill_weights(prog, lrs)
    return lrs


class TestAffinity:
    def test_communities_not_split(self):
        prog = two_community_program()
        lrs = prepared(prog)
        partition = AffinityPartitioner().partition(prog, lrs)
        a_side = {partition[lrs.range_named(f"a{i}").lrid] for i in range(4)}
        b_side = {partition[lrs.range_named(f"b{i}").lrid] for i in range(4)}
        assert len(a_side) == 1
        assert len(b_side) == 1

    def test_communities_on_opposite_sides(self):
        prog = two_community_program()
        lrs = prepared(prog)
        partition = AffinityPartitioner().partition(prog, lrs)
        a = partition[lrs.range_named("a0").lrid]
        b = partition[lrs.range_named("b0").lrid]
        assert a != b

    def test_all_local_candidates_assigned(self):
        prog = two_community_program()
        lrs = prepared(prog)
        partition = AffinityPartitioner().partition(prog, lrs)
        assert set(partition) == {lr.lrid for lr in lrs.local_candidates()}

    def test_deterministic(self):
        prog = two_community_program()
        lrs = prepared(prog)
        p1 = AffinityPartitioner().partition(prog, lrs)
        p2 = AffinityPartitioner().partition(prog, lrs)
        assert p1 == p2

    def test_only_two_way_supported(self):
        with pytest.raises(ValueError):
            AffinityPartitioner(num_clusters=3)

    def test_empty_program(self):
        b = ProgramBuilder("empty")
        b.block("b0")
        prog = b.build()
        lrs = prepared(prog)
        assert AffinityPartitioner().partition(prog, lrs) == {}

    def test_runs_on_generated_workload(self):
        from repro.workloads.spec92 import build_ora

        workload = build_ora()
        lrs = prepared(workload.program)
        partition = AffinityPartitioner().partition(workload.program, lrs)
        clusters = set(partition.values())
        assert clusters <= {0, 1}
        # The KL balance constraint keeps both sides populated.
        assert len(clusters) == 2
