"""Tests for instruction-distribution planning (Section 2.1 scenarios)."""

from hypothesis import given, settings, strategies as st

from repro.core.distribution import (
    Scenario,
    plan_distribution,
    plan_for_instruction,
)
from repro.core.registers import RegisterAssignment
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import INT_ZERO, int_reg

C0 = frozenset({0})
C1 = frozenset({1})
BOTH = frozenset({0, 1})


def plan(srcs, dest, preferred=0):
    return plan_distribution(srcs, dest, num_clusters=2, preferred=preferred)


class TestScenario1:
    def test_all_local_same_cluster(self):
        p = plan([C0, C0], C0)
        assert p.scenario is Scenario.SINGLE
        assert p.master == 0
        assert p.slave is None

    def test_cluster1_side(self):
        p = plan([C1, C1], C1)
        assert p.scenario is Scenario.SINGLE
        assert p.master == 1


class TestScenario2:
    def test_operand_forwarded(self):
        # Paper: r1 on C2's... srcs split, dest with the majority.
        p = plan([C0, C1], C0)
        assert p.scenario is Scenario.DUAL_OPERAND
        assert p.master == 0
        assert p.slave == 1
        assert p.forwarded_src_indices == (1,)
        assert not p.result_forwarded

    def test_majority_decides_master(self):
        p = plan([C1, C0], C1)
        assert p.master == 1
        assert p.forwarded_src_indices == (1,)


class TestScenario3:
    def test_result_forwarded(self):
        p = plan([C0, C0], C1)
        assert p.scenario is Scenario.DUAL_RESULT
        assert p.master == 0  # where the sources live
        assert p.slave == 1
        assert p.forwarded_src_indices == ()
        assert p.result_forwarded

    def test_unary_source(self):
        p = plan([C0], C1)
        assert p.scenario is Scenario.DUAL_RESULT
        assert p.master == 0


class TestScenario4:
    def test_global_dest_forces_dual(self):
        p = plan([C0, C0], BOTH)
        assert p.scenario is Scenario.DUAL_GLOBAL
        assert p.master == 0
        assert p.global_dest
        assert p.result_forwarded

    def test_no_sources_global_dest(self):
        p = plan([], BOTH)
        assert p.scenario is Scenario.DUAL_GLOBAL


class TestScenario5:
    def test_operand_and_global_result(self):
        p = plan([C0, C1], BOTH)
        assert p.scenario is Scenario.DUAL_OPERAND_GLOBAL
        assert p.global_dest
        assert p.result_forwarded
        assert len(p.forwarded_src_indices) == 1


class TestEdgeCases:
    def test_no_registers_goes_to_preferred(self):
        p = plan([], None, preferred=1)
        assert p.scenario is Scenario.SINGLE
        assert p.master == 1

    def test_wildcard_sources_treated_as_everywhere(self):
        p = plan([None, C1], C1)
        assert p.scenario is Scenario.SINGLE
        assert p.master == 1

    def test_store_with_split_sources(self):
        p = plan([C0, C1], None)
        assert p.is_dual
        assert len(p.forwarded_src_indices) == 1

    def test_single_cluster_machine_never_dual(self):
        p = plan_distribution([C0, C0], C0, num_clusters=1)
        assert p.scenario is Scenario.SINGLE

    def test_clusters_property(self):
        p = plan([C0, C1], C0)
        assert set(p.clusters) == {0, 1}
        assert plan([C0], C0).clusters == (0,)


class TestPlanForInstruction:
    def test_even_odd_resolution(self):
        a = RegisterAssignment.even_odd_dual()
        instr = MachineInstruction(Opcode.ADDQ, dest=int_reg(4), srcs=(int_reg(0), int_reg(2)))
        p = plan_for_instruction(instr, a)
        assert p.scenario is Scenario.SINGLE and p.master == 0

    def test_zero_register_ignored(self):
        a = RegisterAssignment.even_odd_dual()
        instr = MachineInstruction(Opcode.ADDQ, dest=int_reg(4), srcs=(INT_ZERO, int_reg(2)))
        p = plan_for_instruction(instr, a)
        assert p.scenario is Scenario.SINGLE

    def test_global_dest_instruction(self):
        from repro.isa.registers import STACK_POINTER

        a = RegisterAssignment.even_odd_dual()
        instr = MachineInstruction(Opcode.ADDQ, dest=STACK_POINTER, srcs=(int_reg(2),))
        p = plan_for_instruction(instr, a)
        assert p.global_dest

    def test_single_cluster_assignment(self):
        a = RegisterAssignment.single_cluster()
        instr = MachineInstruction(Opcode.ADDQ, dest=int_reg(4), srcs=(int_reg(1), int_reg(2)))
        p = plan_for_instruction(instr, a)
        assert p.scenario is Scenario.SINGLE


@settings(max_examples=100, deadline=None)
@given(
    srcs=st.lists(st.sampled_from([C0, C1, BOTH, None]), min_size=0, max_size=2),
    dest=st.sampled_from([C0, C1, BOTH, None]),
    preferred=st.sampled_from([0, 1]),
)
def test_property_plan_invariants(srcs, dest, preferred):
    p = plan_distribution(srcs, dest, num_clusters=2, preferred=preferred)
    # Master is a valid cluster, slave differs.
    assert p.master in (0, 1)
    if p.slave is not None:
        assert p.slave == 1 - p.master
    # The master can read all non-forwarded sources.
    for i, s in enumerate(srcs):
        if s is not None and i not in p.forwarded_src_indices:
            assert p.master in s
    # Forwarded sources genuinely are unreadable by the master.
    for i in p.forwarded_src_indices:
        assert srcs[i] is not None and p.master not in srcs[i]
    # A global destination always dual-distributes and broadcasts.
    if dest is BOTH:
        assert p.is_dual and p.global_dest and p.result_forwarded
    # A plan with any forwarding must be dual.
    if p.forwarded_src_indices or p.result_forwarded:
        assert p.is_dual
    # SINGLE plans can write their destination locally.
    if not p.is_dual and dest is not None and dest is not BOTH:
        assert p.master in dest


# --------------------------------------------------------------------------
# N-cluster plans: multi-helper generalization regression tests.

C2 = frozenset({2})
C3 = frozenset({3})


def plan_n(srcs, dest, n, preferred=0):
    return plan_distribution(srcs, dest, num_clusters=n, preferred=preferred)


class TestTwoClusterPlansUnchanged:
    """The N-cluster fields specialize exactly to the old 2-cluster shape."""

    def test_single_slave_fields(self):
        p = plan([C0, C1], C0)
        assert p.slaves == (1,)
        assert p.forwarded_homes == (1,)
        assert p.result_receivers == ()
        assert p.clusters == (0, 1)

    def test_result_receiver_is_the_slave(self):
        p = plan([C0, C0], C1)
        assert p.slaves == (1,)
        assert p.result_receivers == (1,)

    def test_global_dest_receiver(self):
        p = plan([C0, C0], BOTH)
        assert p.result_receivers == (1,)
        assert p.slaves == (1,)


class TestMultiClusterPlans:
    def test_sources_homed_in_two_remote_clusters(self):
        # srcs on clusters 1 and 2, dest on 0: one slave copy per remote
        # source home, each shipping its own operand to the master.
        p = plan_n([C1, C2], C0, n=3)
        assert p.master == 0
        assert p.scenario is Scenario.DUAL_OPERAND
        assert p.forwarded_src_indices == (0, 1)
        assert p.forwarded_homes == (1, 2)
        assert p.result_receivers == ()
        assert p.slaves == (1, 2)
        assert p.slave == 1  # primary helper is slaves[0]
        assert p.clusters == (0, 1, 2)

    def test_remote_sources_and_remote_dest(self):
        # Master keeps its own source; the other source ships from 2 and
        # the result is forwarded to the destination's home, cluster 3.
        p = plan_n([C1, C2], C3, n=4, preferred=1)
        assert p.master == 1
        assert p.scenario is Scenario.DUAL_OPERAND_RESULT
        assert p.forwarded_src_indices == (1,)
        assert p.forwarded_homes == (2,)
        assert p.result_receivers == (3,)
        assert p.slaves == (2, 3)

    def test_global_dest_broadcasts_to_every_other_cluster(self):
        everywhere = frozenset({0, 1, 2, 3})
        p = plan_n([C0, C0], everywhere, n=4)
        assert p.master == 0
        assert p.scenario is Scenario.DUAL_GLOBAL
        assert p.result_receivers == (1, 2, 3)
        assert p.slaves == (1, 2, 3)
        assert p.global_dest and p.result_forwarded

    def test_shipper_that_also_receives_is_one_slave(self):
        # Cluster 2 both ships a source and receives the result: the two
        # roles collapse into one slave copy, not two.
        p = plan_n([C1, C1, C2], C2, n=3)
        assert p.master == 1
        assert p.forwarded_homes == (2,)
        assert p.result_receivers == (2,)
        assert p.slaves == (2,)
        assert p.scenario is Scenario.DUAL_OPERAND_RESULT

    def test_colocated_registers_stay_single_on_big_machines(self):
        p = plan_n([C2, C2], C2, n=4)
        assert p.scenario is Scenario.SINGLE
        assert p.master == 2
        assert p.slaves == ()
