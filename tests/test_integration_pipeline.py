"""Whole-stack integration and property tests.

These exercise the complete path — generator → optimizer → scheduler →
partitioner → allocator → lowering → trace → simulator — on randomized
programs, checking the invariants that must survive every stage:

* every trace instruction retires exactly once, on every machine;
* cluster-aware allocation's register parities match the partition;
* the same trace on the same machine is cycle-for-cycle deterministic;
* single-cluster never dual-distributes, dual always can.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import compile_program
from repro.core import LocalScheduler, RegisterAssignment
from repro.uarch import dual_cluster_config, simulate, single_cluster_config
from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    WorkloadSpec,
    generate_workload,
)
from repro.workloads.tracegen import TraceGenerator


def random_spec(seed: int) -> WorkloadSpec:
    rng = random.Random(seed)
    fp = rng.random() < 0.5
    mix = {
        "int_alu": 0.4 if not fp else 0.15,
        "int_mul": rng.choice([0.0, 0.02]),
        "fp_alu": 0.0 if not fp else 0.4,
        "fp_div": 0.0 if not fp else rng.choice([0.0, 0.03]),
        "load": 0.3,
        "store": 0.15,
    }
    total = sum(mix.values())
    mix = {k: v / total for k, v in mix.items()}
    arrays = [
        ArraySpec("m0", kind=rng.choice(["strided", "random", "hotcold"]),
                  size=1 << rng.randint(14, 20), fp=fp),
    ]
    loops = [
        LoopSpec(
            body_blocks=rng.randint(1, 3),
            block_size=rng.randint(4, 14),
            trip_count=rng.randint(3, 40),
            trip_jitter=rng.randint(0, 3),
            diamond_prob=rng.choice([0.0, 0.5]),
            arrays=("m0",),
        )
        for _ in range(rng.randint(1, 3))
    ]
    return WorkloadSpec(
        name=f"rand{seed}",
        seed=seed,
        mix=mix,
        arrays=arrays,
        loops=loops,
        chain_bias=rng.uniform(0.2, 0.8),
        live_window=rng.randint(5, 14),
        accumulators=rng.randint(1, 3),
        accumulate_prob=rng.uniform(0.05, 0.4),
    )


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_property_full_stack_invariants(seed):
    workload = generate_workload(random_spec(seed))
    native = compile_program(workload.program, RegisterAssignment.single_cluster())
    clustered = compile_program(
        workload.program, RegisterAssignment.even_odd_dual(), LocalScheduler()
    )

    trace_n = TraceGenerator(
        native.machine, workload.streams, workload.behaviors, seed=seed
    ).generate(2000)
    trace_c = TraceGenerator(
        clustered.machine, workload.streams, workload.behaviors, seed=seed
    ).generate(2000)

    single = simulate(trace_n, single_cluster_config())
    dual = simulate(trace_c, dual_cluster_config())

    # Everything retires exactly once.
    assert single.stats.instructions == 2000
    assert dual.stats.instructions == 2000
    # Single cluster never dual-distributes.
    assert single.stats.dual_distributed == 0
    # Register parities follow the partition.
    for lr in clustered.lrs:
        if lr.global_candidate:
            continue
        cluster = clustered.allocation.cluster_of.get(lr.lrid)
        if cluster is None:
            continue
        reg = clustered.allocation.coloring[lr.lrid]
        assert reg.index % 2 == cluster


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 10_000))
def test_property_simulation_deterministic(seed):
    workload = generate_workload(random_spec(seed))
    native = compile_program(workload.program, RegisterAssignment.single_cluster())
    trace = TraceGenerator(
        native.machine, workload.streams, workload.behaviors, seed=seed
    ).generate(1500)
    r1 = simulate(trace, dual_cluster_config())
    r2 = simulate(trace, dual_cluster_config())
    assert r1.cycles == r2.cycles
    assert r1.stats.dual_distributed == r2.stats.dual_distributed
    assert r1.stats.replay_exceptions == r2.stats.replay_exceptions


class TestCrossMachineSanity:
    @pytest.fixture(scope="class")
    def setup(self):
        workload = generate_workload(random_spec(123))
        native = compile_program(workload.program, RegisterAssignment.single_cluster())
        trace = TraceGenerator(
            native.machine, workload.streams, workload.behaviors, seed=1
        ).generate(4000)
        return trace

    def test_dual_never_faster_than_double_single(self, setup):
        """The dual machine has the same total resources: its cycles are
        bounded below by roughly the single machine's (it cannot win big
        on cycle count)."""
        single = simulate(setup, single_cluster_config())
        dual = simulate(setup, dual_cluster_config())
        assert dual.cycles > 0.8 * single.cycles

    def test_issue_conservation(self, setup):
        """Total uops issued >= instructions (duals add slave copies)."""
        dual = simulate(setup, dual_cluster_config())
        issued = sum(c.issued for c in dual.stats.clusters)
        assert issued >= dual.stats.instructions
