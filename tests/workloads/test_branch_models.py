"""Tests for branch behaviour models."""

import random

import pytest

from repro.workloads.branch_models import (
    BernoulliBranch,
    LoopBranch,
    MarkovBranch,
    PatternBranch,
)


def run(model, n, seed=0):
    rng = random.Random(seed)
    return [model.next_taken(rng) for _ in range(n)]


class TestLoopBranch:
    def test_exact_trip_count(self):
        m = LoopBranch(trip_count=5)
        outcomes = run(m, 10)
        assert outcomes == [True] * 4 + [False] + [True] * 4 + [False]

    def test_trip_count_one_never_taken(self):
        m = LoopBranch(trip_count=1)
        assert run(m, 4) == [False] * 4

    def test_jitter_varies_trip_counts(self):
        m = LoopBranch(trip_count=10, jitter=5)
        outcomes = run(m, 500, seed=1)
        runs = []
        current = 0
        for taken in outcomes:
            if taken:
                current += 1
            else:
                runs.append(current + 1)
                current = 0
        assert len(set(runs)) > 1

    def test_invalid_trip_count(self):
        with pytest.raises(ValueError):
            LoopBranch(0)

    def test_reset(self):
        m = LoopBranch(trip_count=4)
        first = run(m, 7)
        m.reset()
        assert run(m, 7) == first


class TestPatternBranch:
    def test_pattern_repeats(self):
        m = PatternBranch("TTN")
        assert run(m, 6) == [True, True, False, True, True, False]

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            PatternBranch("TXT")
        with pytest.raises(ValueError):
            PatternBranch("")

    def test_reset(self):
        m = PatternBranch("TN")
        run(m, 3)
        m.reset()
        assert run(m, 2) == [True, False]


class TestBernoulli:
    def test_frequency_close_to_p(self):
        m = BernoulliBranch(0.7)
        outcomes = run(m, 10_000, seed=2)
        assert 0.67 < sum(outcomes) / len(outcomes) < 0.73

    def test_extremes(self):
        assert all(run(BernoulliBranch(1.0), 50))
        assert not any(run(BernoulliBranch(0.0), 50))


class TestMarkov:
    def test_high_repeat_probability_creates_bursts(self):
        m = MarkovBranch(p_repeat=0.95)
        outcomes = run(m, 2000, seed=3)
        switches = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a != b)
        assert switches < 300  # far fewer than the ~1000 of a fair coin

    def test_reset_restores_start_state(self):
        m = MarkovBranch(p_repeat=1.0, start_taken=True)
        assert run(m, 3) == [True] * 3
        m.reset()
        assert run(m, 3) == [True] * 3
