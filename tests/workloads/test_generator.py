"""Tests for the synthetic workload generator."""

from repro.workloads.generator import (
    ArraySpec,
    LoopSpec,
    WorkloadSpec,
    generate_workload,
)


def small_spec(**overrides):
    base = dict(
        name="test",
        seed=5,
        arrays=[
            ArraySpec("a", kind="strided", size=1 << 16),
            ArraySpec("f", kind="strided", size=1 << 16, fp=True),
        ],
        loops=[
            LoopSpec(body_blocks=2, block_size=8, trip_count=10, arrays=("a", "f")),
            LoopSpec(body_blocks=1, block_size=6, trip_count=5, diamond_prob=0.5, arrays=("a",)),
        ],
        mix={
            "int_alu": 0.35,
            "int_mul": 0.02,
            "fp_alu": 0.2,
            "fp_div": 0.02,
            "load": 0.26,
            "store": 0.15,
        },
    )
    base.update(overrides)
    return WorkloadSpec(**base)


class TestDeterminism:
    def test_same_seed_same_program(self):
        w1 = generate_workload(small_spec())
        w2 = generate_workload(small_spec())
        assert w1.program.format() == w2.program.format()

    def test_different_seeds_differ(self):
        w1 = generate_workload(small_spec(seed=1))
        w2 = generate_workload(small_spec(seed=2))
        assert w1.program.format() != w2.program.format()


class TestStructure:
    def test_program_finalized(self):
        w = generate_workload(small_spec())
        uids = [i.uid for i in w.program.all_instructions()]
        assert uids == list(range(len(uids)))

    def test_streams_cover_arrays(self):
        w = generate_workload(small_spec())
        assert set(w.streams) == {"a", "f"}

    def test_memory_instructions_annotated(self):
        w = generate_workload(small_spec())
        annotated = [
            i.mem_stream
            for i in w.program.all_instructions()
            if i.opcode.is_memory and i.mem_stream
        ]
        assert annotated
        assert set(annotated) <= {"a", "f"}

    def test_branches_have_models(self):
        w = generate_workload(small_spec())
        for instr in w.program.all_instructions():
            if instr.opcode.is_conditional_branch:
                assert instr.branch_model in w.behaviors

    def test_loops_have_back_edges(self):
        w = generate_workload(small_spec())
        assert w.program.cfg.back_edges()

    def test_code_replicas_scale_size(self):
        small = generate_workload(small_spec(code_replicas=1))
        big = generate_workload(small_spec(code_replicas=4))
        assert big.program.instruction_count() > 3 * small.program.instruction_count()

    def test_fp_arrays_make_fp_loads(self):
        from repro.isa.opcodes import Opcode

        spec = small_spec(
            arrays=[ArraySpec("f", kind="strided", size=1 << 16, fp=True)],
            loops=[LoopSpec(body_blocks=3, block_size=20, trip_count=10, arrays=("f",))],
        )
        w = generate_workload(spec)
        fp_loads = [
            i for i in w.program.all_instructions()
            if i.opcode is Opcode.LDT and i.mem_stream == "f"
        ]
        assert fp_loads

    def test_stack_and_global_pointers_exist(self):
        w = generate_workload(small_spec())
        assert w.program.stack_pointer is not None
        assert w.program.global_pointer is not None

    def test_accumulator_drains_present(self):
        """Each loop's accumulators are stored after the loop (anti-DCE)."""
        from repro.isa.opcodes import Opcode

        w = generate_workload(small_spec())
        stores = [i for i in w.program.all_instructions() if i.opcode.is_store]
        assert stores


class TestMix:
    def test_mix_proportions_roughly_respected(self):
        spec = small_spec(
            seed=9,
            loops=[LoopSpec(body_blocks=4, block_size=30, trip_count=10, arrays=("a", "f"))],
        )
        w = generate_workload(spec)
        ops = [i for i in w.program.all_instructions() if not i.opcode.is_control]
        loads = sum(1 for i in ops if i.opcode.is_load)
        # Requested 26% loads; array-base loads in the preamble add a few.
        assert 0.1 < loads / len(ops) < 0.45

    def test_pure_integer_mix_has_no_fp(self):
        spec = small_spec(
            mix={
                "int_alu": 0.5,
                "int_mul": 0.0,
                "fp_alu": 0.0,
                "fp_div": 0.0,
                "load": 0.3,
                "store": 0.2,
            },
            arrays=[ArraySpec("a", kind="strided")],
            loops=[LoopSpec(body_blocks=2, block_size=10, trip_count=10, arrays=("a",))],
        )
        w = generate_workload(spec)
        assert not any(i.opcode.iclass.is_fp for i in w.program.all_instructions())
