"""Tests for the hand-written kernels."""

import pytest

from repro.experiments.harness import EvaluationOptions, evaluate_workload
from repro.workloads.kernels import (
    KERNELS,
    build_daxpy,
    build_dot_product,
    build_list_walk,
    build_string_hash,
)


class TestConstruction:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_build(self, name):
        workload = KERNELS[name]()
        assert workload.program.instruction_count() > 5
        assert workload.streams
        assert workload.behaviors

    def test_daxpy_unrolled_lanes(self):
        w4 = build_daxpy(unroll=4)
        w1 = build_daxpy(unroll=1)
        body4 = w4.program.cfg.block("body")
        body1 = w1.program.cfg.block("body")
        assert len(body4) >= 2.5 * len(body1)

    def test_dot_has_loop_carried_fp_chain(self):
        from repro.compiler.webs import build_live_ranges

        w = build_dot_product()
        lrs = build_live_ranges(w.program)
        s = lrs.range_named("s")
        assert s is not None
        # The accumulator is defined and used inside the loop body.
        assert len(s.def_uids) >= 2  # init convert + loop accumulate


class TestBehaviour:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_evaluate(self, name):
        workload = KERNELS[name]()
        ev = evaluate_workload(workload, EvaluationOptions(trace_length=4000))
        assert ev.single.stats.instructions == 4000
        assert ev.dual_local.stats.instructions == 4000

    def test_daxpy_has_more_ilp_than_dot(self):
        """The streaming kernel beats the reduction on IPC (the reduction
        is serialized by its loop-carried FP add)."""
        daxpy = evaluate_workload(build_daxpy(), EvaluationOptions(trace_length=6000))
        dot = evaluate_workload(build_dot_product(), EvaluationOptions(trace_length=6000))
        assert daxpy.single.stats.ipc > dot.single.stats.ipc

    def test_dot_tolerates_clustering_better_than_daxpy(self):
        """Low-ILP reductions lose little on the dual machine; high-ILP
        streams lose more (the Table 2 ordering, in miniature)."""
        daxpy = evaluate_workload(build_daxpy(), EvaluationOptions(trace_length=6000))
        dot = evaluate_workload(build_dot_product(), EvaluationOptions(trace_length=6000))
        assert dot.pct_local >= daxpy.pct_local - 2.0

    def test_list_walk_is_memory_bound(self):
        ev = evaluate_workload(build_list_walk(), EvaluationOptions(trace_length=5000))
        assert ev.single.stats.dcache_miss_rate > 0.1
        assert ev.single.stats.ipc < 2.0

    def test_strhash_is_serial(self):
        ev = evaluate_workload(build_string_hash(), EvaluationOptions(trace_length=5000))
        # The multiply chain caps throughput well below 1 IPC.
        assert ev.single.stats.ipc < 1.2
