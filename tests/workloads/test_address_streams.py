"""Tests for synthetic address streams."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.address_streams import (
    FixedStream,
    HotColdStream,
    RandomStream,
    StackStream,
    StridedStream,
)


def drain(stream, n, seed=0):
    rng = random.Random(seed)
    return [stream.next_address(rng) for _ in range(n)]


class TestStrided:
    def test_walks_by_stride(self):
        s = StridedStream(base=0x1000, stride=8, length=64)
        assert drain(s, 4) == [0x1000, 0x1008, 0x1010, 0x1018]

    def test_wraps_at_length(self):
        s = StridedStream(base=0x1000, stride=16, length=32)
        addrs = drain(s, 4)
        assert addrs == [0x1000, 0x1010, 0x1000, 0x1010]

    def test_reset(self):
        s = StridedStream(base=0, stride=8, length=1024)
        first = drain(s, 5)
        s.reset()
        assert drain(s, 5) == first

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            StridedStream(0, stride=0)

    def test_alignment(self):
        s = StridedStream(base=0x1001, stride=4, length=64)
        assert all(a % 8 == 0 for a in drain(s, 10))


class TestRandom:
    def test_stays_in_region(self):
        s = RandomStream(base=0x2000, size=0x100)
        for a in drain(s, 200):
            assert 0x2000 <= a < 0x2100

    def test_deterministic_with_seed(self):
        s = RandomStream(0, 1 << 20)
        assert drain(s, 10, seed=3) == drain(s, 10, seed=3)


class TestHotCold:
    def test_hot_fraction_respected(self):
        s = HotColdStream(base=0, hot_size=4096, cold_size=1 << 20, hot_fraction=0.9)
        addrs = drain(s, 5000, seed=1)
        hot = sum(1 for a in addrs if a < 4096)
        assert 0.85 < hot / len(addrs) < 0.95

    def test_cold_region_disjoint_from_hot(self):
        s = HotColdStream(base=0, hot_size=4096, cold_size=1 << 16, hot_fraction=0.0)
        assert all(a >= 4096 for a in drain(s, 100))


class TestFixedAndStack:
    def test_fixed_always_same(self):
        s = FixedStream(0x1238)
        assert set(drain(s, 5)) == {0x1238}

    def test_stack_within_frame(self):
        s = StackStream(base=0x7000, frame_size=256)
        for a in drain(s, 100):
            assert 0x7000 <= a < 0x7100


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 1 << 30),
    st.integers(1, 512),
    st.integers(1, 1 << 16),
)
def test_property_strided_stays_in_bounds(base, stride, length):
    s = StridedStream(base=base, stride=stride, length=length)
    rng = random.Random(0)
    for _ in range(50):
        a = s.next_address(rng)
        assert (base & ~0x7) <= a < base + length
        assert a % 8 == 0
