"""Tests for the SPEC92 benchmark profiles."""

import pytest

from repro.isa.opcodes import InstrClass
from repro.workloads.spec92 import (
    DEFAULT_TRACE_LENGTH,
    PAPER_TABLE2,
    SPEC92,
    build_benchmark,
)

ALL_NAMES = ["compress", "doduc", "gcc1", "ora", "su2cor", "tomcatv"]


class TestRegistry:
    def test_all_six_benchmarks_present(self):
        assert sorted(SPEC92) == sorted(ALL_NAMES)

    def test_paper_reference_covers_all(self):
        assert sorted(PAPER_TABLE2) == sorted(ALL_NAMES)

    def test_paper_values_match_table2(self):
        assert PAPER_TABLE2["compress"] == (-14, +6)
        assert PAPER_TABLE2["ora"] == (-5, -22)
        assert PAPER_TABLE2["tomcatv"] == (-41, -19)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_benchmark("spice")

    def test_default_trace_length_positive(self):
        assert DEFAULT_TRACE_LENGTH >= 10_000


@pytest.fixture(scope="module")
def workloads():
    return {name: build_benchmark(name) for name in ALL_NAMES}


class TestCharacter:
    def test_all_build_and_finalize(self, workloads):
        for w in workloads.values():
            assert w.program.instruction_count() > 30
            assert w.streams
            assert w.behaviors

    def test_integer_benchmarks_have_no_fp(self, workloads):
        for name in ("compress", "gcc1"):
            classes = {i.iclass for i in workloads[name].program.all_instructions()}
            assert InstrClass.FP_OTHER not in classes
            assert InstrClass.FP_DIVIDE not in classes

    def test_fp_benchmarks_have_fp(self, workloads):
        for name in ("doduc", "ora", "su2cor", "tomcatv"):
            classes = {i.iclass for i in workloads[name].program.all_instructions()}
            assert InstrClass.FP_OTHER in classes

    def test_ora_has_divides(self, workloads):
        classes = {i.iclass for i in workloads["ora"].program.all_instructions()}
        assert InstrClass.FP_DIVIDE in classes

    def test_gcc1_is_the_biggest_code(self, workloads):
        sizes = {n: w.program.instruction_count() for n, w in workloads.items()}
        assert sizes["gcc1"] == max(sizes.values())

    def test_tight_kernels_are_small(self, workloads):
        sizes = {n: w.program.instruction_count() for n, w in workloads.items()}
        # ora and the vector kernels are tiny next to gcc1.
        assert sizes["ora"] < sizes["gcc1"] / 5
        assert sizes["tomcatv"] < sizes["gcc1"] / 5

    def test_tomcatv_touches_multi_megabyte_arrays(self, workloads):
        spec = workloads["tomcatv"].spec
        assert max(a.size for a in spec.arrays) >= 1 << 21

    def test_deterministic_builds(self):
        w1 = build_benchmark("compress")
        w2 = build_benchmark("compress")
        assert w1.program.format() == w2.program.format()
