"""Tests for trace generation."""

from repro.compiler.pipeline import compile_program
from repro.core.registers import RegisterAssignment
from repro.ir.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.workloads.address_streams import StridedStream
from repro.workloads.branch_models import LoopBranch
from repro.workloads.tracegen import SPILL_BASE, TraceGenerator


def compiled_loop():
    b = ProgramBuilder("loop")
    sp = b.stack_pointer_value()
    b.block("pre", count=1)
    b.op(Opcode.LDA, "n", imm=4)
    b.block("body", count=4)
    b.load("x", sp, stream="arr")
    b.op(Opcode.SUBQ, "n", "n", "n")
    b.branch(Opcode.BNE, "n", "body", model="loop")
    b.block("post", count=1)
    b.ret()
    prog = b.build()
    prog.cfg.block("body").set_successors(["body", "post"], [0.75, 0.25])
    result = compile_program(prog, RegisterAssignment.single_cluster())
    return result.machine


def generator(machine, **kw):
    defaults = dict(
        streams={"arr": StridedStream(0x1000, 8, 64)},
        behaviors={"loop": LoopBranch(4)},
        seed=3,
    )
    defaults.update(kw)
    return TraceGenerator(machine, **defaults)


class TestBasics:
    def test_seq_equals_index(self):
        trace = generator(compiled_loop()).generate(100)
        assert [d.seq for d in trace] == list(range(len(trace)))

    def test_requested_length_respected(self):
        trace = generator(compiled_loop()).generate(57)
        assert len(trace) == 57

    def test_deterministic(self):
        t1 = generator(compiled_loop()).generate(80)
        t2 = generator(compiled_loop()).generate(80)
        assert [repr(d) for d in t1] == [repr(d) for d in t2]

    def test_program_loops_on_exit(self):
        machine = compiled_loop()
        trace = generator(machine).generate(200)
        entry_pc = machine.entry.meta[0].pc
        assert sum(1 for d in trace if d.pc == entry_pc) > 1

    def test_no_loop_program_stops_at_exit(self):
        machine = compiled_loop()
        trace = generator(machine, loop_program=False).generate(10_000)
        # One pass: 1 + 4 loop iterations * 3 + 1 instruction, roughly.
        assert len(trace) < 30


class TestDirections:
    def test_loop_branch_follows_model(self):
        trace = generator(compiled_loop()).generate(60)
        directions = [d.taken for d in trace if d.is_conditional]
        # LoopBranch(4): pattern T,T,T,F repeating.
        assert directions[:4] == [True, True, True, False]

    def test_taken_branch_goes_to_target(self):
        machine = compiled_loop()
        trace = generator(machine).generate(30)
        body_pc = machine.block("body").meta[0].pc
        for i, d in enumerate(trace[:-1]):
            if d.is_conditional and d.taken:
                assert trace[i + 1].pc == body_pc

    def test_not_taken_falls_through(self):
        machine = compiled_loop()
        trace = generator(machine).generate(30)
        post_pc = machine.block("post").meta[0].pc
        for i, d in enumerate(trace[:-1]):
            if d.is_conditional and d.taken is False:
                assert trace[i + 1].pc == post_pc


class TestAddresses:
    def test_annotated_loads_use_stream(self):
        trace = generator(compiled_loop()).generate(60)
        arr_addrs = [
            d.address for d in trace if d.instr.opcode.is_load and d.meta.mem_stream == "arr"
        ]
        assert arr_addrs
        assert all(0x1000 <= a < 0x1040 for a in arr_addrs)

    def test_spill_streams_map_to_spill_slots(self):
        from repro.ir.machine_program import MachineInstrMeta, MachineProgram
        from repro.isa.instructions import MachineInstruction
        from repro.isa.registers import int_reg

        mp = MachineProgram("sp")
        blk = mp.add_block("b0")
        blk.add(
            MachineInstruction(Opcode.LDQ, dest=int_reg(0), srcs=(int_reg(30),)),
            MachineInstrMeta(mem_stream="__spill3"),
        )
        mp.assign_pcs()
        trace = TraceGenerator(mp).generate(1)
        assert trace[0].address == SPILL_BASE + 24

    def test_unannotated_memory_gets_default_stream(self):
        from repro.ir.machine_program import MachineProgram
        from repro.isa.instructions import MachineInstruction
        from repro.isa.registers import int_reg

        mp = MachineProgram("d")
        blk = mp.add_block("b0")
        blk.add(MachineInstruction(Opcode.LDQ, dest=int_reg(0), srcs=(int_reg(30),)))
        mp.assign_pcs()
        trace = TraceGenerator(mp).generate(1)
        assert trace[0].address is not None
