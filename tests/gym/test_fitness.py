"""Tests for fitness evaluation: baselines, scoring, fingerprints."""

from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.gym.fitness import (
    BASELINE_POINT,
    GymSettings,
    compute_baseline,
    config_cycle_time,
    evaluate_point,
    geomean,
    trial_fingerprint,
    trial_key,
)
from repro.gym.space import (
    PAPER_DUAL_POINT,
    PAPER_SINGLE_POINT,
    ClusterSpec,
    DesignPoint,
)
from repro.perf.cache import ArtifactCache

#: One short workload keeps the module's simulations CI-friendly; the
#: module-scoped cache shares the compile/trace across tests.
SETTINGS = GymSettings(benchmarks=("compress",), trace_length=600)

#: The 3-cluster asymmetric point exercised throughout tests/gym.
ASYMMETRIC_POINT = DesignPoint(
    clusters=(ClusterSpec(4, 64, 64), ClusterSpec(2, 32, 64), ClusterSpec(1, 16, 64)),
    buffer_entries=4,
    extra_globals=2,
)


@pytest.fixture(scope="module")
def cache():
    return ArtifactCache()


@pytest.fixture(scope="module")
def baseline(cache):
    return compute_baseline(SETTINGS, cache)


class TestSettings:
    def test_defaults_are_valid(self):
        GymSettings()

    def test_unknown_tech_rejected(self):
        with pytest.raises(ConfigError, match="technology"):
            GymSettings(tech="7nm")

    def test_unknown_part_rejected(self):
        with pytest.raises(ConfigError, match="part"):
            GymSettings(part="single")

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError, match="benchmark"):
            GymSettings(benchmarks=("dhrystone",))

    def test_empty_benchmarks_rejected(self):
        with pytest.raises(ConfigError, match="benchmarks"):
            GymSettings(benchmarks=())


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            geomean([])


class TestCycleTime:
    def test_slowest_cluster_sets_the_clock(self):
        mixed = DesignPoint(
            clusters=(ClusterSpec(8, 128, 128), ClusterSpec(1, 16, 16)),
            buffer_entries=1,
        ).to_config()
        fat = PAPER_SINGLE_POINT.to_config()
        assert config_cycle_time(mixed, "0.35um") == pytest.approx(
            config_cycle_time(fat, "0.35um")
        )

    def test_narrow_clusters_clock_faster(self):
        dual = PAPER_DUAL_POINT.to_config()
        single = PAPER_SINGLE_POINT.to_config()
        assert config_cycle_time(dual, "0.35um") < config_cycle_time(single, "0.35um")


class TestEvaluation:
    def test_baseline_point_scores_exactly_one(self, cache, baseline):
        """The 1x8 genome evaluated against itself is the identity."""
        trial = evaluate_point(BASELINE_POINT, SETTINGS, baseline, cache)
        assert dict(trial.cycles) == dict(baseline.cycles)
        assert trial.rel_cycles == pytest.approx(1.0)
        assert trial.cycle_time_ps == pytest.approx(baseline.cycle_time_ps)
        assert trial.speedup == pytest.approx(1.0)

    def test_speedup_is_clock_ratio_over_rel_cycles(self, cache, baseline):
        trial = evaluate_point(PAPER_DUAL_POINT, SETTINGS, baseline, cache)
        assert trial.speedup == pytest.approx(
            (baseline.cycle_time_ps / trial.cycle_time_ps) / trial.rel_cycles
        )

    def test_three_cluster_asymmetric_point_runs(self, cache, baseline):
        trial = evaluate_point(ASYMMETRIC_POINT, SETTINGS, baseline, cache)
        assert trial.cycles["compress"] > 0
        assert trial.cycle_time_ps < baseline.cycle_time_ps

    def test_dual_local_reschedules_for_n_clusters(self, cache, baseline):
        # Exercises the N-cluster partitioner/regalloc path end to end.
        settings = replace(SETTINGS, part="dual_local")
        trial = evaluate_point(ASYMMETRIC_POINT, settings, baseline, cache)
        assert trial.cycles["compress"] > 0

    def test_trial_round_trips_through_payload(self, cache, baseline):
        trial = evaluate_point(PAPER_DUAL_POINT, SETTINGS, baseline, cache)
        clone = type(trial).from_dict(trial.as_dict())
        assert clone.as_dict() == trial.as_dict()

    def test_evaluation_is_deterministic(self, cache, baseline):
        a = evaluate_point(PAPER_DUAL_POINT, SETTINGS, baseline, cache)
        b = evaluate_point(PAPER_DUAL_POINT, SETTINGS, baseline, cache)
        assert a.as_dict() == b.as_dict()


class TestJournalIdentity:
    def test_key_names_point_and_rung(self):
        key = trial_key(PAPER_DUAL_POINT, SETTINGS)
        assert PAPER_DUAL_POINT.slug in key and "L600" in key

    def test_fingerprint_tracks_value_determining_inputs(self):
        base = trial_fingerprint(PAPER_DUAL_POINT, SETTINGS)
        assert base == trial_fingerprint(PAPER_DUAL_POINT, SETTINGS)
        assert base != trial_fingerprint(PAPER_SINGLE_POINT, SETTINGS)
        assert base != trial_fingerprint(
            PAPER_DUAL_POINT, replace(SETTINGS, trace_length=700)
        )
        assert base != trial_fingerprint(
            PAPER_DUAL_POINT, replace(SETTINGS, part="dual_local")
        )

    def test_engine_choice_does_not_change_identity(self):
        # Engines are bit-identical kernels (DESIGN.md §14): a journal row
        # computed by one satisfies a resume under the other.
        assert trial_fingerprint(PAPER_DUAL_POINT, SETTINGS) == trial_fingerprint(
            PAPER_DUAL_POINT, replace(SETTINGS, engine="batched")
        )
