"""Tests for the (rel_cycles, cycle_time) Pareto frontier."""

import random

from repro.gym.fitness import TrialResult
from repro.gym.pareto import dedupe_trials, dominates, pareto_frontier
from repro.gym.space import ClusterSpec, DesignPoint

#: Distinct widths/queues give every fabricated trial a distinct genome
#: (dedupe keys on the design-point fingerprint).
_AXES = [(w, q) for w in (1, 2, 4, 8) for q in (16, 32, 64, 128)]


def trial(rel, ps, index=0, speedup=1.0):
    width, queue = _AXES[index]
    point = DesignPoint(clusters=(ClusterSpec(width, queue, 64),), buffer_entries=0)
    return TrialResult(
        point=point,
        cycles={"compress": 100 + index},
        rel_cycles=rel,
        cycle_time_ps=ps,
        speedup=speedup,
    )


class TestDominates:
    def test_strictly_better_on_both(self):
        assert dominates(trial(0.9, 500.0), trial(1.0, 600.0, 1))

    def test_better_on_one_equal_on_other(self):
        assert dominates(trial(0.9, 500.0), trial(1.0, 500.0, 1))
        assert dominates(trial(0.9, 500.0), trial(0.9, 600.0, 1))

    def test_equal_pair_does_not_dominate(self):
        assert not dominates(trial(0.9, 500.0), trial(0.9, 500.0, 1))

    def test_trade_off_does_not_dominate(self):
        a, b = trial(0.9, 600.0), trial(1.0, 500.0, 1)
        assert not dominates(a, b)
        assert not dominates(b, a)


class TestDedupe:
    def test_first_evaluation_wins(self):
        a = trial(0.9, 500.0)
        repeat = trial(0.9, 500.0)  # same genome
        other = trial(1.0, 400.0, 1)
        assert dedupe_trials([a, repeat, other]) == [a, other]


class TestFrontier:
    def test_dominated_points_removed(self):
        best = trial(0.8, 400.0)
        dominated = trial(0.9, 500.0, 1)
        assert pareto_frontier([dominated, best]) == [best]

    def test_trade_offs_all_survive(self):
        ipc = trial(0.8, 600.0)
        clock = trial(1.2, 300.0, 1)
        middle = trial(1.0, 450.0, 2)
        frontier = pareto_frontier([clock, middle, ipc])
        assert frontier == [ipc, middle, clock]  # sorted by rel_cycles

    def test_ties_survive_together(self):
        a = trial(1.0, 500.0)
        b = trial(1.0, 500.0, 1)
        assert set(t.point.slug for t in pareto_frontier([a, b])) == {
            a.point.slug,
            b.point.slug,
        }

    def test_order_invariant(self):
        trials = [
            trial(0.8, 600.0, 0),
            trial(0.9, 550.0, 1),
            trial(0.95, 560.0, 2),  # dominated by index 1
            trial(1.1, 300.0, 3),
            trial(1.1, 300.0, 4),  # tied with index 3
        ]
        reference = pareto_frontier(trials)
        for seed in range(5):
            shuffled = trials[:]
            random.Random(seed).shuffle(shuffled)
            assert pareto_frontier(shuffled) == reference

    def test_empty_input(self):
        assert pareto_frontier([]) == []
