"""Tests for trajectory/frontier reports: schema, determinism, atomicity."""

import json

import pytest

from repro.errors import ConfigError
from repro.gym.fitness import Baseline, GymSettings, TrialResult
from repro.gym.report import (
    TRAJECTORY_SCHEMA,
    dump_records,
    format_frontier,
    frontier_record,
    header_record,
    load_trajectory,
    trial_record,
    validate_record,
    write_frontier,
    write_trajectory,
)
from repro.gym.space import ClusterSpec, DesignPoint

SETTINGS = GymSettings(benchmarks=("compress",), trace_length=600)
BASELINE = Baseline(cycles={"compress": 1000}, cycle_time_ps=700.0)
TRIAL = TrialResult(
    point=DesignPoint(clusters=(ClusterSpec(4, 64, 64),) * 2, buffer_entries=8),
    cycles={"compress": 1100},
    rel_cycles=1.1,
    cycle_time_ps=500.0,
    speedup=1.27,
)


def records():
    return [
        header_record("random", 42, SETTINGS, BASELINE),
        trial_record(0, 0, TRIAL),
        frontier_record([TRIAL]),
    ]


class TestSchema:
    def test_builders_produce_valid_records(self):
        for record in records():
            validate_record(record)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown trajectory record kind"):
            validate_record({"kind": "telemetry", "schema": TRAJECTORY_SCHEMA})
        with pytest.raises(ConfigError, match="unknown"):
            validate_record({"schema": TRAJECTORY_SCHEMA})

    def test_missing_keys_rejected(self):
        record = trial_record(0, 0, TRIAL)
        del record["generation"]
        with pytest.raises(ConfigError, match="missing keys"):
            validate_record(record)

    def test_schema_mismatch_rejected(self):
        record = trial_record(0, 0, TRIAL)
        record["schema"] = TRAJECTORY_SCHEMA + 1
        with pytest.raises(ConfigError, match="schema"):
            validate_record(record)

    def test_trial_payload_keys_checked(self):
        record = frontier_record([TRIAL])
        del record["trials"][0]["speedup"]
        with pytest.raises(ConfigError, match="trial payload"):
            validate_record(record)


class TestDeterminism:
    def test_dump_is_sorted_keys_jsonl(self):
        text = dump_records(records())
        lines = text.splitlines()
        assert len(lines) == 3 and text.endswith("\n")
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True)

    def test_no_timestamps_or_provenance(self):
        text = dump_records(records()).lower()
        for forbidden in ("time_s", "timestamp", "hostname", "duration", "date"):
            assert forbidden not in text

    def test_dump_is_reproducible(self):
        assert dump_records(records()) == dump_records(records())


class TestFiles:
    def test_trajectory_round_trip(self, tmp_path):
        path = tmp_path / "runs" / "trajectory.jsonl"
        write_trajectory(path, records())
        loaded = load_trajectory(path)
        assert loaded == records()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_rewrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        write_trajectory(path, records())
        write_trajectory(path, records()[:1])
        assert load_trajectory(path) == records()[:1]

    def test_torn_line_rejected_on_load(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        write_trajectory(path, records())
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "tri')
        with pytest.raises(ConfigError, match="torn"):
            load_trajectory(path)

    def test_frontier_file_is_canonical_json(self, tmp_path):
        path = tmp_path / "frontier.json"
        write_frontier(path, [TRIAL])
        text = path.read_text()
        record = json.loads(text)
        validate_record(record)
        assert text == json.dumps(record, sort_keys=True, indent=2) + "\n"


class TestFormat:
    def test_table_lists_every_frontier_point(self):
        table = format_frontier([TRIAL], BASELINE)
        assert TRIAL.point.slug in table
        assert "baseline 1x8-way" in table
