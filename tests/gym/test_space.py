"""Tests for the N-cluster design space (genomes, sampling, operators)."""

import random
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.gym.space import (
    PAPER_DUAL_POINT,
    PAPER_SINGLE_POINT,
    ClusterSpec,
    DesignPoint,
    DesignSpace,
    extra_global_registers,
    issue_rules_for,
)
from repro.isa.registers import RegisterClass, allocatable_registers
from repro.perf.fingerprint import fingerprint
from repro.uarch.config import dual_cluster_config, single_cluster_config


class TestPaperPoints:
    """The paper's two machines are exact members of the gym family."""

    def test_dual_point_expands_to_the_paper_machine(self):
        config = PAPER_DUAL_POINT.to_config()
        reference = dual_cluster_config()
        assert config.clusters == reference.clusters
        assert (config.fetch_width, config.dispatch_width, config.retire_width) == (
            reference.fetch_width,
            reference.dispatch_width,
            reference.retire_width,
        )

    def test_single_point_expands_to_the_paper_baseline(self):
        config = PAPER_SINGLE_POINT.to_config()
        reference = single_cluster_config()
        assert config.clusters == reference.clusters
        assert (config.fetch_width, config.dispatch_width, config.retire_width) == (
            reference.fetch_width,
            reference.dispatch_width,
            reference.retire_width,
        )

    def test_paper_points_are_feasible_and_canonical(self):
        space = DesignSpace()
        for point in (PAPER_SINGLE_POINT, PAPER_DUAL_POINT):
            assert space.is_feasible(point)
            assert space.canonicalize(point) == point


class TestIssueRules:
    def test_table1_rows(self):
        assert issue_rules_for(8).total == 8
        assert issue_rules_for(8).floating_point == 4
        assert issue_rules_for(4).total == 4
        assert issue_rules_for(4).memory == 2
        assert issue_rules_for(2).control == 1

    def test_width_one_keeps_every_class_usable(self):
        rules = issue_rules_for(1)
        assert rules.total == 1
        assert min(rules.floating_point, rules.memory, rules.control) >= 1

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError, match="width"):
            issue_rules_for(0)


class TestExtraGlobals:
    def test_zero_is_empty(self):
        assert extra_global_registers(0) == ()

    def test_deterministic_highest_index_choice(self):
        pool = allocatable_registers(RegisterClass.INT)
        assert extra_global_registers(2) == tuple(pool[-2:])
        assert extra_global_registers(2) == extra_global_registers(2)

    def test_over_budget_rejected(self):
        pool = allocatable_registers(RegisterClass.INT)
        with pytest.raises(ConfigError, match="exceeds"):
            extra_global_registers(len(pool) + 1)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            extra_global_registers(-1)


class TestSerialization:
    def test_round_trip(self):
        point = DesignPoint(
            clusters=(ClusterSpec(4, 64, 64), ClusterSpec(1, 16, 32)),
            buffer_entries=4,
            extra_globals=2,
        )
        assert DesignPoint.from_dict(point.as_dict()) == point
        assert fingerprint(
            DesignPoint.from_dict(point.as_dict()).as_dict()
        ) == fingerprint(point.as_dict())

    def test_slug_encodes_the_genome(self):
        point = DesignPoint(
            clusters=(ClusterSpec(4, 64, 64), ClusterSpec(1, 16, 32)),
            buffer_entries=4,
            extra_globals=2,
        )
        assert point.slug == "gym-4w64q64r+1w16q32r-b4-g2"

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            DesignPoint.from_dict({"clusters": [{"width": 4}]})
        with pytest.raises(ConfigError, match="malformed"):
            DesignPoint.from_dict({"buffer_entries": 1, "extra_globals": 0})


class TestCanonicalize:
    def test_sorts_clusters_fattest_first(self):
        space = DesignSpace()
        point = DesignPoint(
            clusters=(ClusterSpec(1, 16, 64), ClusterSpec(4, 64, 64)),
            buffer_entries=4,
        )
        canonical = space.canonicalize(point)
        assert canonical.clusters == (ClusterSpec(4, 64, 64), ClusterSpec(1, 16, 64))

    def test_idempotent(self):
        space = DesignSpace()
        rng = random.Random(3)
        for _ in range(20):
            point = space.sample(rng)
            assert space.canonicalize(point) == point

    def test_permuted_genomes_collapse(self):
        space = DesignSpace()
        a = ClusterSpec(4, 64, 64)
        b = ClusterSpec(2, 32, 64)
        assert space.canonicalize(
            DesignPoint(clusters=(a, b), buffer_entries=4)
        ) == space.canonicalize(DesignPoint(clusters=(b, a), buffer_entries=4))

    def test_single_cluster_buffers_zeroed(self):
        space = DesignSpace()
        point = DesignPoint(clusters=(ClusterSpec(8, 128, 128),), buffer_entries=8)
        assert space.canonicalize(point).buffer_entries == 0


class TestSampling:
    def test_same_seed_same_points(self):
        space = DesignSpace()
        first = [space.sample(random.Random(11)) for _ in range(1)]
        again = [space.sample(random.Random(11)) for _ in range(1)]
        assert first == again
        rng_a, rng_b = random.Random(5), random.Random(5)
        assert [space.sample(rng_a) for _ in range(10)] == [
            space.sample(rng_b) for _ in range(10)
        ]

    def test_samples_are_feasible_canonical_members(self):
        space = DesignSpace()
        rng = random.Random(8)
        for _ in range(25):
            point = space.sample(rng)
            assert space.is_feasible(point)
            assert space.canonicalize(point) == point
            assert space.contains(point)

    def test_symmetric_space_samples_symmetric_points(self):
        space = DesignSpace(allow_asymmetric=False)
        rng = random.Random(2)
        for _ in range(10):
            point = space.sample(rng)
            assert len(set(point.clusters)) == 1

    def test_over_constrained_space_raises(self):
        # Register files far too small for the architectural namespace on
        # any permitted cluster count: every draw is infeasible.
        space = DesignSpace(min_clusters=1, max_clusters=1, registers=(16,))
        with pytest.raises(ConfigError, match="over-constrained"):
            space.sample(random.Random(0))


class TestGrid:
    def test_deterministic_and_feasible(self):
        space = DesignSpace()
        points = list(space.grid())
        assert points and points == list(space.grid())
        for point in points:
            assert space.is_feasible(point)
            assert len(set(point.clusters)) == 1  # symmetric lattice

    def test_scales_queue_and_registers_with_width(self):
        space = DesignSpace()
        for point in space.grid():
            spec = point.clusters[0]
            assert spec.queue_entries == space._nearest(
                space.queue_entries, 16 * spec.width
            )


class TestGeneticOperators:
    def test_mutate_deterministic_feasible_canonical(self):
        space = DesignSpace()
        parent = space.sample(random.Random(21))
        children = [space.mutate(parent, random.Random(9)) for _ in range(2)]
        assert children[0] == children[1]
        for _ in range(15):
            child = space.mutate(parent, random.Random(_))
            assert space.is_feasible(child)
            assert space.canonicalize(child) == child

    def test_crossover_deterministic_feasible_canonical(self):
        space = DesignSpace()
        a = space.sample(random.Random(31))
        b = space.sample(random.Random(32))
        assert space.crossover(a, b, random.Random(1)) == space.crossover(
            a, b, random.Random(1)
        )
        for seed in range(15):
            child = space.crossover(a, b, random.Random(seed))
            assert space.is_feasible(child)
            assert space.canonicalize(child) == child


class TestValidation:
    def test_no_clusters_rejected(self):
        with pytest.raises(ConfigError, match="no clusters"):
            DesignSpace().validate(DesignPoint(clusters=()))

    def test_nonpositive_axis_rejected(self):
        space = DesignSpace()
        with pytest.raises(ConfigError, match="positive integer"):
            space.validate(DesignPoint(clusters=(ClusterSpec(width=0),)))
        with pytest.raises(ConfigError, match="positive integer"):
            space.validate(
                DesignPoint(clusters=(ClusterSpec(queue_entries=-1),))
            )

    def test_bool_coordinates_rejected(self):
        with pytest.raises(ConfigError, match="positive integer"):
            DesignSpace().validate(DesignPoint(clusters=(ClusterSpec(width=True),)))

    def test_undersized_register_file_rejected(self):
        # A monolithic cluster must rename the whole namespace; 16
        # physical registers cannot hold the 31 architectural ones.
        space = DesignSpace()
        point = DesignPoint(clusters=(ClusterSpec(4, 64, 16),), buffer_entries=0)
        with pytest.raises(ConfigError, match="physical registers"):
            space.validate(point)
        assert not space.is_feasible(point)

    def test_bounds_checked_by_space(self):
        with pytest.raises(ConfigError, match="min_clusters"):
            DesignSpace(min_clusters=0)
        with pytest.raises(ConfigError, match="axis"):
            DesignSpace(widths=())

    def test_contains_is_axis_membership_not_feasibility(self):
        space = DesignSpace(widths=(2, 4))
        off_axis = DesignPoint(clusters=(ClusterSpec(8, 128, 128),), buffer_entries=0)
        assert space.is_feasible(off_axis)
        assert not space.contains(off_axis)
