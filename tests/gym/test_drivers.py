"""Tests for the search drivers: determinism, journal resume, kill/resume.

The contract under test (DESIGN.md Section 16): same spec + settings ⇒
byte-identical trajectory and frontier, serially, under ``--jobs``, and
across a SIGKILL + ``--resume``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.gym.drivers import (
    DRIVERS,
    MIN_RUNG_TRACE,
    SearchSpec,
    halving_rungs,
    run_search,
)
from repro.gym.fitness import GymSettings
from repro.gym.report import (
    dump_records,
    frontier_record,
    header_record,
    load_trajectory,
    trial_record,
)
from repro.gym.space import DesignSpace
from repro.obs.metrics import MetricsRegistry
from repro.perf.cache import ArtifactCache
from repro.robustness.journal import RunJournal

SETTINGS = GymSettings(benchmarks=("compress",), trace_length=600)

#: Small axes keep the grid driver (and rejection sampling) cheap while
#: still spanning 1-3 clusters and asymmetric genomes.
SPACE = DesignSpace(
    max_clusters=3,
    widths=(2, 4),
    queue_entries=(32, 64),
    registers=(64,),
    buffer_entries=(4, 8),
    extra_globals=(0, 2),
)


def spec_for(driver):
    return SearchSpec(
        driver=driver, seed=42, budget=3, population=3, generations=2, elite=1
    )


def trajectory_bytes(result):
    """The exact bytes ``repro explore --trajectory`` writes."""
    records = [
        header_record(
            result.spec.driver, result.spec.seed, result.settings, result.baseline
        )
    ]
    records += [trial_record(i, g, t) for i, g, t in result.trials]
    records.append(frontier_record(result.frontier))
    return dump_records(records)


@pytest.fixture(scope="module")
def cache():
    return ArtifactCache()


class TestSpecValidation:
    def test_unknown_driver(self):
        with pytest.raises(ConfigError, match="unknown search driver"):
            SearchSpec(driver="annealing")

    def test_nonpositive_budget(self):
        with pytest.raises(ConfigError, match="budget"):
            SearchSpec(budget=0)

    def test_elite_bounded_by_population(self):
        with pytest.raises(ConfigError, match="elite"):
            SearchSpec(elite=9, population=8)

    def test_eta_floor(self):
        with pytest.raises(ConfigError, match="eta"):
            SearchSpec(eta=1)

    def test_mutation_rate_range(self):
        with pytest.raises(ConfigError, match="mutation_rate"):
            SearchSpec(mutation_rate=1.5)


class TestHalvingRungs:
    def test_paper_default_schedule(self):
        spec = SearchSpec(driver="halving", budget=16, eta=3)
        assert halving_rungs(GymSettings(trace_length=12_000), spec) == [
            2_000,
            4_000,
            12_000,
        ]

    def test_last_rung_is_the_full_length(self):
        for budget in (4, 16, 64):
            spec = SearchSpec(driver="halving", budget=budget)
            rungs = halving_rungs(GymSettings(trace_length=12_000), spec)
            assert rungs[-1] == 12_000
            assert rungs == sorted(rungs)
            assert all(r >= MIN_RUNG_TRACE for r in rungs)

    def test_short_traces_collapse_to_one_rung(self):
        spec = SearchSpec(driver="halving", budget=16)
        assert halving_rungs(SETTINGS, spec) == [600]


class TestDeterminism:
    @pytest.mark.parametrize("driver", DRIVERS)
    def test_same_seed_same_bytes(self, driver, cache):
        first = run_search(spec_for(driver), SPACE, SETTINGS, cache=cache)
        again = run_search(spec_for(driver), SPACE, SETTINGS, cache=cache)
        assert trajectory_bytes(first) == trajectory_bytes(again)
        assert [t.as_dict() for t in first.frontier] == [
            t.as_dict() for t in again.frontier
        ]
        assert first.frontier, "search must report a non-empty frontier"

    def test_different_seeds_explore_differently(self, cache):
        a = run_search(spec_for("random"), SPACE, SETTINGS, cache=cache)
        b = run_search(
            replace(spec_for("random"), seed=43), SPACE, SETTINGS, cache=cache
        )
        assert [t.point.slug for _, _, t in a.trials] != [
            t.point.slug for _, _, t in b.trials
        ]

    def test_parallel_matches_serial(self, cache):
        serial = run_search(spec_for("random"), SPACE, SETTINGS, cache=cache)
        fanned = run_search(spec_for("random"), SPACE, SETTINGS, cache=cache, jobs=2)
        assert trajectory_bytes(serial) == trajectory_bytes(fanned)

    def test_best_is_the_frontier_speedup_maximizer(self, cache):
        result = run_search(spec_for("random"), SPACE, SETTINGS, cache=cache)
        assert result.best in result.frontier
        assert result.best.speedup == max(t.speedup for t in result.frontier)

    def test_metrics_observe_every_trial(self, cache):
        metrics = MetricsRegistry()
        result = run_search(
            spec_for("random"), SPACE, SETTINGS, cache=cache, metrics=metrics
        )
        counter = metrics.counter(
            "gym_trials_total", "Design points evaluated by the search"
        )
        assert counter.value == len(result.trials)


class TestJournalResume:
    def test_complete_journal_replays_every_trial(self, tmp_path, cache):
        reference = run_search(spec_for("evolutionary"), SPACE, SETTINGS, cache=cache)
        with RunJournal(tmp_path / "run") as journal:
            first = run_search(
                spec_for("evolutionary"), SPACE, SETTINGS, cache=cache, journal=journal
            )
        # Elites repeat across generations, so even the first run may hit
        # its own rows — but never for all trials.
        assert first.journal_hits < len(first.trials)
        with RunJournal(tmp_path / "run") as journal:
            resumed = run_search(
                spec_for("evolutionary"), SPACE, SETTINGS, cache=cache, journal=journal
            )
        assert resumed.journal_hits == len(resumed.trials)
        assert trajectory_bytes(resumed) == trajectory_bytes(reference)

    def test_partial_journal_resumes_bit_identically(self, tmp_path, cache):
        # A budget-2 run journals a prefix of the budget-3 run (same seed,
        # same rng draw order), so resuming the larger search replays it.
        reference = run_search(spec_for("random"), SPACE, SETTINGS, cache=cache)
        with RunJournal(tmp_path / "run") as journal:
            run_search(
                replace(spec_for("random"), budget=2),
                SPACE,
                SETTINGS,
                cache=cache,
                journal=journal,
            )
        with RunJournal(tmp_path / "run") as journal:
            resumed = run_search(
                spec_for("random"), SPACE, SETTINGS, cache=cache, journal=journal
            )
        assert resumed.journal_hits >= 2
        assert trajectory_bytes(resumed) == trajectory_bytes(reference)

    def test_changed_settings_invalidate_journal_rows(self, tmp_path, cache):
        with RunJournal(tmp_path / "run") as journal:
            run_search(
                spec_for("random"), SPACE, SETTINGS, cache=cache, journal=journal
            )
        longer = replace(SETTINGS, trace_length=700)
        with RunJournal(tmp_path / "run") as journal:
            resumed = run_search(
                spec_for("random"), SPACE, longer, cache=cache, journal=journal
            )
        assert resumed.journal_hits == 0


KILL_DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.gym.drivers import SearchSpec, run_search
from repro.gym.fitness import GymSettings
from repro.gym.space import DesignSpace
from repro.robustness.journal import RunJournal

with RunJournal({run_dir!r}) as journal:
    run_search(
        SearchSpec(driver="random", seed=42, budget=3),
        DesignSpace(max_clusters=3, widths=(2, 4), queue_entries=(32, 64),
                    registers=(64,), buffer_entries=(4, 8), extra_globals=(0, 2)),
        GymSettings(benchmarks=("compress",), trace_length=600),
        journal=journal,
    )
"""


class TestKillAndResume:
    def test_sigkill_mid_search_then_resume(self, tmp_path, cache):
        """SIGKILL a live search process, resume, demand the same bytes."""
        reference = run_search(spec_for("random"), SPACE, SETTINGS, cache=cache)
        run_dir = tmp_path / "run"
        src = str(Path(__file__).resolve().parents[2] / "src")
        driver = KILL_DRIVER.format(src=src, run_dir=str(run_dir))
        proc = subprocess.Popen([sys.executable, "-c", driver])
        journal_path = run_dir / "journal.jsonl"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before the kill; resume still must agree
            if journal_path.exists() and journal_path.stat().st_size > 0:
                os.kill(proc.pid, signal.SIGKILL)
                break
            time.sleep(0.01)
        proc.wait(timeout=60)

        survivors = [
            json.loads(line)
            for line in journal_path.read_text().splitlines()
            if line.strip()
        ]
        assert survivors, "at least one row should have been journaled"

        with RunJournal(run_dir) as journal:
            resumed = run_search(
                spec_for("random"), SPACE, SETTINGS, cache=cache, journal=journal
            )
        assert trajectory_bytes(resumed) == trajectory_bytes(reference)
        assert [t.as_dict() for t in resumed.frontier] == [
            t.as_dict() for t in reference.frontier
        ]


class TestGridDriver:
    def test_empty_grid_rejected(self, cache):
        # Every lattice point infeasible: 16-register files can hold the
        # namespace at neither one nor two clusters.
        barren = DesignSpace(
            max_clusters=2,
            widths=(8,),
            queue_entries=(16,),
            registers=(16,),
            buffer_entries=(1,),
            extra_globals=(0,),
        )
        with pytest.raises(ConfigError, match="grid is empty"):
            run_search(spec_for("grid"), barren, SETTINGS, cache=cache)


class TestGymSpans:
    def _spans(self, tmp_path, name, driver="random"):
        from repro.obs.spans import SpanWriter, canonical_lines, split_spans

        run_dir = tmp_path / name
        with SpanWriter(run_dir) as writer:
            run_search(
                spec_for(driver), SPACE, SETTINGS,
                cache=ArtifactCache(), spans=writer,
            )
            trace_id = writer.trace_id
        from repro.obs.spans import load_run_spans

        det, wall = split_spans(load_run_spans(run_dir))
        return trace_id, det, wall, canonical_lines(det)

    def test_rung_and_trial_spans_emitted(self, tmp_path):
        trace_id, det, _, _ = self._spans(tmp_path, "a")
        kinds = {s.kind for s in det}
        assert kinds == {"gym_rung", "gym_trial"}
        rungs = [s for s in det if s.kind == "gym_rung"]
        trials = [s for s in det if s.kind == "gym_trial"]
        assert rungs and trials
        assert all(s.trace_id == trace_id for s in det)
        rung_ids = {s.span_id for s in rungs}
        assert all(s.parent_id in rung_ids for s in trials)
        # Virtual time: a trial costs its simulated cycles, a rung the
        # sum of its trials'.
        by_rung = {}
        for trial in trials:
            by_rung.setdefault(trial.parent_id, 0)
            by_rung[trial.parent_id] += trial.duration_u
        for rung in rungs:
            assert rung.duration_u == by_rung[rung.span_id]

    def test_same_search_same_span_bytes(self, tmp_path):
        _, _, _, first = self._spans(tmp_path, "a")
        _, _, _, again = self._spans(tmp_path, "b")
        assert first == again

    def test_different_seed_different_trace(self, tmp_path):
        trace_a, _, _, _ = self._spans(tmp_path, "a")
        from repro.obs.spans import SpanWriter

        run_dir = tmp_path / "c"
        with SpanWriter(run_dir) as writer:
            run_search(
                replace(spec_for("random"), seed=7), SPACE, SETTINGS,
                cache=ArtifactCache(), spans=writer,
            )
            assert writer.trace_id != trace_a
