"""Experiment E3 — Figure 1: the dual-cluster processor's composition.

Figure 1 is a block diagram; its reproduction is structural: a processor
instance must contain, per cluster, the components the figure draws —
dispatch queue, register files with renaming, operand/result transfer
buffers, functional units (including the divider) — plus the shared
front end (instruction cache, branch prediction, distribution) and the
shared data cache.
"""

from repro.isa.registers import RegisterClass
from repro.uarch.config import (
    default_assignment_for,
    dual_cluster_config,
    single_cluster_config,
)
from repro.uarch.processor import Processor


def dual_processor():
    config = dual_cluster_config()
    return Processor(config, default_assignment_for(config))


class TestFigure1Inventory:
    def test_two_clusters(self):
        assert len(dual_processor().clusters) == 2

    def test_each_cluster_has_dispatch_queue(self):
        for cluster in dual_processor().clusters:
            assert cluster.queue_free == 64

    def test_each_cluster_has_both_register_files(self):
        for cluster in dual_processor().clusters:
            assert RegisterClass.INT in cluster.rename.files
            assert RegisterClass.FP in cluster.rename.files
            assert cluster.rename.files[RegisterClass.INT].num_physical == 64

    def test_each_cluster_has_transfer_buffers(self):
        for cluster in dual_processor().clusters:
            assert cluster.operand_buffer.capacity == 8
            assert cluster.result_buffer.capacity == 8

    def test_each_cluster_has_a_divider(self):
        for cluster in dual_processor().clusters:
            assert len(cluster.divider_free_at) == 1

    def test_shared_front_end_and_caches(self):
        p = dual_processor()
        assert p.icache is not None
        assert p.dcache is not None
        assert p.predictor is not None
        # Shared, not per cluster: a single instance each.
        assert p.icache is not p.dcache

    def test_cluster_rename_covers_only_accessible_registers(self):
        """A cluster maps its local registers plus the globals, not the
        other cluster's locals (Section 2.1: a global needs a physical
        register in each cluster; a local needs one in its home only)."""
        p = dual_processor()
        int_file0 = p.clusters[0].rename.files[RegisterClass.INT]
        int_file1 = p.clusters[1].rename.files[RegisterClass.INT]
        from repro.isa.registers import int_reg

        assert int_reg(0).uid in int_file0.mapping
        assert int_reg(0).uid not in int_file1.mapping
        assert int_reg(1).uid in int_file1.mapping
        # Globals in both.
        assert int_reg(30).uid in int_file0.mapping
        assert int_reg(30).uid in int_file1.mapping

    def test_single_cluster_has_no_transfer_buffers(self):
        config = single_cluster_config()
        p = Processor(config, default_assignment_for(config))
        assert p.clusters[0].operand_buffer.capacity == 0
        assert p.clusters[0].result_buffer.capacity == 0
