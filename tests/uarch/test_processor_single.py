"""Behavioural tests of the single-cluster processor model."""

from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg, fp_reg
from repro.uarch.config import single_cluster_config

from tests.uarch.helpers import completion_cycles, issue_cycles, run_trace


def mul(dest, a, b):
    return MachineInstruction(Opcode.MULQ, dest=int_reg(dest), srcs=(int_reg(a), int_reg(b)))


def add(dest, a, b):
    return MachineInstruction(Opcode.ADDQ, dest=int_reg(dest), srcs=(int_reg(a), int_reg(b)))


class TestDependenceTiming:
    def test_mulq_chain_spaced_by_latency(self):
        instrs = [mul(0, 0, 0) for _ in range(6)]
        p, _ = run_trace(instrs, single_cluster_config())
        cycles = issue_cycles(p)
        gaps = [
            cycles[(i + 1, "master")] - cycles[(i, "master")]
            for i in range(5)
        ]
        assert all(g == 6 for g in gaps)  # integer multiply latency

    def test_addq_chain_back_to_back(self):
        instrs = [add(0, 0, 0) for _ in range(6)]
        p, _ = run_trace(instrs, single_cluster_config())
        cycles = issue_cycles(p)
        gaps = [cycles[(i + 1, "master")] - cycles[(i, "master")] for i in range(5)]
        assert all(g == 1 for g in gaps)

    def test_independent_ops_issue_same_cycle(self):
        instrs = [add(2 * i, 28, 28) for i in range(4)]
        p, _ = run_trace(instrs, single_cluster_config())
        cycles = issue_cycles(p)
        assert len({cycles[(i, "master")] for i in range(4)}) == 1

    def test_load_use_delay(self):
        """Load-to-use is 2 cycles on a hit (1 + load-delay slot)."""
        ld = MachineInstruction(Opcode.LDQ, dest=int_reg(0), srcs=(int_reg(2),))
        use = add(4, 0, 0)
        # Warm the D-cache line first with an independent load.
        warm = MachineInstruction(Opcode.LDQ, dest=int_reg(6), srcs=(int_reg(2),))
        p, _ = run_trace([warm, ld, use], single_cluster_config(),
                         addresses={0: 0x9000, 1: 0x9000})
        cycles = issue_cycles(p)
        assert cycles[(2, "master")] - cycles[(1, "master")] == 2

    def test_dcache_miss_adds_memory_latency(self):
        ld = MachineInstruction(Opcode.LDQ, dest=int_reg(0), srcs=(int_reg(2),))
        use = add(4, 0, 0)
        p, _ = run_trace([ld, use], single_cluster_config(), addresses={0: 0x50000})
        cycles = issue_cycles(p)
        assert cycles[(1, "master")] - cycles[(0, "master")] == 18  # 16 + 2


class TestIssueLimits:
    def test_eight_wide_integer_issue(self):
        instrs = [add(2 * (i % 14), 28, 28) for i in range(16)]
        p, _ = run_trace(instrs, single_cluster_config())
        cycles = issue_cycles(p)
        by_cycle = {}
        for (seq, _r), c in cycles.items():
            by_cycle.setdefault(c, []).append(seq)
        assert max(len(v) for v in by_cycle.values()) == 8

    def test_fp_limited_to_four(self):
        instrs = [
            MachineInstruction(Opcode.ADDT, dest=fp_reg(i), srcs=(fp_reg(28), fp_reg(28)))
            for i in range(8)
        ]
        p, _ = run_trace(instrs, single_cluster_config())
        cycles = issue_cycles(p)
        by_cycle = {}
        for (seq, _r), c in cycles.items():
            by_cycle.setdefault(c, []).append(seq)
        assert max(len(v) for v in by_cycle.values()) == 4

    def test_loads_limited_to_four(self):
        instrs = [
            MachineInstruction(Opcode.LDQ, dest=int_reg(2 * i), srcs=(int_reg(28),))
            for i in range(8)
        ]
        p, _ = run_trace(
            instrs, single_cluster_config(), addresses={i: 0x9000 + 8 * i for i in range(8)}
        )
        cycles = issue_cycles(p)
        by_cycle = {}
        for (seq, _r), c in cycles.items():
            by_cycle.setdefault(c, []).append(seq)
        assert max(len(v) for v in by_cycle.values()) == 4

    def test_fp_divider_not_pipelined(self):
        instrs = [
            MachineInstruction(Opcode.DIVS, dest=fp_reg(2 * i), srcs=(fp_reg(28), fp_reg(28)))
            for i in range(3)
        ]
        p, _ = run_trace(instrs, single_cluster_config())
        cycles = sorted(c for (_s, _r), c in issue_cycles(p).items())
        # Two dividers on the single-cluster machine: first two together,
        # the third waits a full 8-cycle divide.
        assert cycles[1] - cycles[0] <= 1
        assert cycles[2] - cycles[0] == 8


class TestRetirement:
    def test_all_instructions_retire(self):
        instrs = [add(0, 0, 0) for _ in range(20)]
        _p, result = run_trace(instrs, single_cluster_config())
        assert result.stats.instructions == 20

    def test_retirement_in_program_order(self):
        instrs = [mul(0, 0, 0), add(2, 4, 4)]
        p, _ = run_trace(instrs, single_cluster_config())
        retire = [(c, seq) for c, kind, seq, _r, _cl in p.event_log if kind == "retire"]
        # The add completes long before the mul but retires after it.
        assert retire[0][1] == 0 and retire[1][1] == 1
        assert retire[0][0] <= retire[1][0]

    def test_retire_width_bounds_throughput(self):
        instrs = [add(2 * (i % 14), 28, 28) for i in range(64)]
        p, _ = run_trace(instrs, single_cluster_config())
        retire_cycles = [c for c, kind, *_ in p.event_log if kind == "retire"]
        by_cycle = {}
        for c in retire_cycles:
            by_cycle[c] = by_cycle.get(c, 0) + 1
        assert max(by_cycle.values()) <= 8


class TestMemoryDependences:
    def test_load_waits_for_same_address_store(self):
        store = MachineInstruction(Opcode.STQ, srcs=(int_reg(0), int_reg(2)))
        blocker = mul(0, 0, 0)  # the store's value comes from a slow mul
        store_dep = MachineInstruction(Opcode.STQ, srcs=(int_reg(0), int_reg(2)))
        load = MachineInstruction(Opcode.LDQ, dest=int_reg(4), srcs=(int_reg(2),))
        p, _ = run_trace(
            [blocker, store_dep, load],
            single_cluster_config(),
            addresses={1: 0x9100, 2: 0x9100},
        )
        cycles = issue_cycles(p)
        done = completion_cycles(p)
        assert cycles[(2, "master")] >= done[(1, "master")]

    def test_load_independent_of_other_address_store(self):
        blocker = mul(0, 0, 0)
        store_dep = MachineInstruction(Opcode.STQ, srcs=(int_reg(0), int_reg(2)))
        load = MachineInstruction(Opcode.LDQ, dest=int_reg(4), srcs=(int_reg(2),))
        p, _ = run_trace(
            [blocker, store_dep, load],
            single_cluster_config(),
            addresses={1: 0x9100, 2: 0xA200},
        )
        cycles = issue_cycles(p)
        # The load does not wait for the mul-fed store.
        assert cycles[(2, "master")] < cycles[(1, "master")]


class TestBranches:
    def test_mispredict_stalls_fetch(self):
        """An unpredictable branch delays younger instructions."""
        br = MachineInstruction(Opcode.BNE, srcs=(int_reg(0),), target="b0")
        younger = add(2, 4, 4)
        # Run twice: once with the branch "correctly predicted" is not
        # controllable directly, so compare the gap against a no-branch run.
        p, _ = run_trace([br, younger], single_cluster_config(), taken={0: False})
        cycles = issue_cycles(p)
        # Weakly-taken initial counters predict taken; actual is not-taken:
        # a misprediction. The younger instruction is fetched only after
        # the branch executes.
        assert cycles[(1, "master")] > cycles[(0, "master")] + 1

    def test_correct_prediction_no_stall(self):
        """A repeated static branch trains the predictor and stops stalling."""
        from repro.ir.machine_program import MachineProgram
        from repro.uarch.config import default_assignment_for
        from repro.uarch.processor import Processor
        from repro.workloads.trace import DynamicInstruction

        machine = MachineProgram("loop")
        block = machine.add_block("b0")
        block.add(add(2, 28, 28))
        block.add(MachineInstruction(Opcode.BEQ, srcs=(int_reg(28),), target="b0"))
        machine.assign_pcs()
        pairs = list(machine.all_instructions())
        trace = []
        for i in range(30):
            for instr, meta in pairs:
                taken = False if instr.opcode.is_control else None
                trace.append(DynamicInstruction(instr, meta, len(trace), None, taken))
        config = single_cluster_config()
        processor = Processor(config, default_assignment_for(config))
        result = processor.run(trace)
        # The same static branch repeats not-taken: after cold-start
        # mispredictions the predictor locks on.
        assert result.stats.branch_mispredictions <= 3
        assert result.stats.branch_predictions == 30
