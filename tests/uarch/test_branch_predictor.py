"""Tests for the McFarling combining predictor."""

from repro.uarch.branch_predictor import McFarlingPredictor
from repro.uarch.config import PredictorConfig


def predictor(**kw):
    return McFarlingPredictor(PredictorConfig(**kw))


def run_branch(p, pc, outcomes, resolve_immediately=True):
    """Feed a branch at `pc` a sequence of outcomes; returns accuracy."""
    correct = 0
    for i, taken in enumerate(outcomes):
        pred = p.predict(pc, taken, tag=(pc << 20) + i)
        if pred == taken:
            correct += 1
        if resolve_immediately:
            p.resolve((pc << 20) + i)
    return correct / len(outcomes)


class TestBimodalLearning:
    def test_always_taken_learned(self):
        p = predictor()
        acc = run_branch(p, 0x1000, [True] * 100)
        assert acc > 0.95

    def test_always_not_taken_learned(self):
        p = predictor()
        acc = run_branch(p, 0x1000, [False] * 100)
        assert acc > 0.9

    def test_biased_branch_tracks_bias(self):
        import random

        rng = random.Random(1)
        p = predictor()
        outcomes = [rng.random() < 0.9 for _ in range(2000)]
        acc = run_branch(p, 0x2000, outcomes)
        assert acc > 0.8


class TestGlobalComponent:
    def test_alternating_pattern_learned(self):
        """Bimodal alone cannot learn TNTN...; the global component can."""
        p = predictor()
        outcomes = [bool(i % 2) for i in range(600)]
        acc = run_branch(p, 0x3000, outcomes)
        assert acc > 0.9

    def test_period_four_pattern_learned(self):
        p = predictor()
        pattern = [True, True, False, True]
        outcomes = (pattern * 200)[:800]
        acc = run_branch(p, 0x4000, outcomes)
        assert acc > 0.85

    def test_loop_exit_predicted_via_history(self):
        """A loop taken 7x then not-taken repeats with period 8."""
        p = predictor()
        outcomes = ([True] * 7 + [False]) * 100
        acc = run_branch(p, 0x5000, outcomes)
        assert acc > 0.9


class TestDelayedUpdate:
    def test_unresolved_branches_leave_tables_stale(self):
        p1 = predictor()
        p2 = predictor()
        outcomes = [True] * 50
        # p1 resolves immediately; p2 never resolves (infinite staleness).
        acc_fresh = run_branch(p1, 0x6000, outcomes, resolve_immediately=True)
        acc_stale = run_branch(p2, 0x6000, outcomes, resolve_immediately=False)
        # Weakly-taken initial counters guess taken anyway, so accuracy is
        # equal here -- but the tables must differ.
        assert p1.bimodal != p2.bimodal
        assert acc_fresh >= acc_stale

    def test_stale_tables_hurt_not_taken_stream(self):
        p1 = predictor()
        p2 = predictor()
        outcomes = [False] * 40
        acc_fresh = run_branch(p1, 0x7000, outcomes, resolve_immediately=True)
        acc_stale = run_branch(p2, 0x7000, outcomes, resolve_immediately=False)
        assert acc_fresh > acc_stale  # stale counters never learn not-taken

    def test_resolve_applies_pending_update(self):
        p = predictor()
        p.predict(0x100, True, tag=1)
        before = list(p.bimodal)
        p.resolve(1)
        assert p.bimodal != before

    def test_abandon_discards_update(self):
        p = predictor()
        p.predict(0x100, True, tag=1)
        before = list(p.bimodal)
        p.abandon(1)
        p.resolve(1)  # no-op after abandon
        assert p.bimodal == before

    def test_resolve_unknown_tag_is_noop(self):
        p = predictor()
        p.resolve(12345)


class TestChooser:
    def test_chooser_moves_toward_better_component(self):
        p = predictor()
        # An alternating pattern: global is right, bimodal dithers.
        outcomes = [bool(i % 2) for i in range(400)]
        run_branch(p, 0x8000, outcomes)
        assert p.stats.global_correct > p.stats.bimodal_correct

    def test_stats_accuracy(self):
        p = predictor()
        run_branch(p, 0x9000, [True] * 10)
        assert p.stats.predictions == 10
        assert 0.0 <= p.stats.accuracy <= 1.0
