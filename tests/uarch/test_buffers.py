"""Tests for operand/result transfer buffers."""

import pytest

from repro.uarch.buffers import TransferBuffer


class TestAllocation:
    def test_capacity_respected(self):
        buf = TransferBuffer(2, "t")
        buf.allocate(1, 0)
        buf.allocate(2, 0)
        assert buf.is_full
        with pytest.raises(RuntimeError):
            buf.allocate(3, 0)

    def test_occupancy_and_peak(self):
        buf = TransferBuffer(4, "t")
        buf.allocate(1, 0)
        buf.allocate(2, 0)
        assert buf.occupancy == 2
        assert buf.stats.peak_occupancy == 2
        buf.free_now(1)
        assert buf.occupancy == 1
        assert buf.stats.peak_occupancy == 2

    def test_allocations_counted(self):
        buf = TransferBuffer(4, "t")
        buf.allocate(1, 0)
        buf.allocate(2, 0)
        assert buf.stats.allocations == 2


class TestScheduledFree:
    def test_free_at_releases_on_tick(self):
        buf = TransferBuffer(1, "t")
        buf.allocate(5, 0)
        buf.free_at(5, 3)
        buf.tick(2)
        assert buf.is_full
        buf.tick(3)
        assert not buf.is_full

    def test_tick_catches_up_after_skip(self):
        """Cycle-skipping simulators may tick with a jump."""
        buf = TransferBuffer(2, "t")
        buf.allocate(1, 0)
        buf.allocate(2, 0)
        buf.free_at(1, 3)
        buf.free_at(2, 5)
        buf.tick(10)
        assert buf.occupancy == 0

    def test_free_now(self):
        buf = TransferBuffer(1, "t")
        buf.allocate(9, 0)
        buf.free_now(9)
        assert buf.occupancy == 0


class TestSquash:
    def test_squash_younger_drops_entries(self):
        buf = TransferBuffer(4, "t")
        for seq in (1, 5, 9):
            buf.allocate(seq, 0)
        buf.squash_younger(5)
        assert set(buf.entries) == {1, 5}

    def test_squash_cancels_pending_frees_of_young(self):
        buf = TransferBuffer(4, "t")
        buf.allocate(1, 0)
        buf.allocate(9, 0)
        buf.free_at(9, 7)
        buf.squash_younger(5)
        buf.allocate(9, 8)  # re-dispatched after replay
        buf.tick(7)
        assert 9 in buf.entries  # the stale free must not fire
