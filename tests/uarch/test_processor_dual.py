"""Behavioural tests of the dual-cluster machine: distribution protocols,
transfer buffers, and replay exceptions (Section 2.1)."""

from repro.core.registers import RegisterAssignment
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.uarch.config import dual_cluster_config, with_buffer_entries

from tests.uarch.helpers import completion_cycles, issue_cycles, run_trace


def add(dest, *srcs):
    return MachineInstruction(Opcode.ADDQ, dest=int_reg(dest), srcs=tuple(int_reg(s) for s in srcs))


def mul(dest, *srcs):
    return MachineInstruction(Opcode.MULQ, dest=int_reg(dest), srcs=tuple(int_reg(s) for s in srcs))


class TestDistributionCounts:
    def test_single_cluster_instruction_one_uop(self):
        p, result = run_trace([add(4, 0, 2)], dual_cluster_config())
        assert result.stats.dual_distributed == 0
        assert result.stats.uops_executed == 1

    def test_split_sources_two_uops(self):
        p, result = run_trace([add(4, 0, 1)], dual_cluster_config())
        assert result.stats.dual_distributed == 1
        assert result.stats.uops_executed == 2
        assert result.stats.operand_forwards == 1

    def test_cross_cluster_dest_result_forward(self):
        p, result = run_trace([add(1, 0, 2)], dual_cluster_config())
        assert result.stats.dual_distributed == 1
        assert result.stats.result_forwards == 1

    def test_issue_counts_per_cluster(self):
        p, result = run_trace([add(4, 0, 1)], dual_cluster_config())
        assert result.stats.clusters[0].issued == 1
        assert result.stats.clusters[1].issued == 1


class TestOperandForwardProtocol:
    def test_slave_issues_before_master(self):
        p, _ = run_trace([add(4, 0, 1)], dual_cluster_config())
        cycles = issue_cycles(p)
        assert cycles[(0, "slave")] < cycles[(0, "master")]

    def test_master_issues_one_cycle_after_slave(self):
        """Section 2.1: 'the master copy [can] be issued as soon as the
        next cycle' after the slave."""
        p, _ = run_trace([add(4, 0, 1)], dual_cluster_config())
        cycles = issue_cycles(p)
        assert cycles[(0, "master")] == cycles[(0, "slave")] + 1

    def test_forwarded_operand_waits_for_producer(self):
        # The odd-side producer is slow (mulq): the slave cannot issue
        # until it completes.
        producer = mul(1, 1, 1)
        consumer = add(4, 0, 1)
        p, _ = run_trace([producer, consumer], dual_cluster_config())
        cycles = issue_cycles(p)
        done = completion_cycles(p)
        assert cycles[(1, "slave")] >= done[(0, "master")]


class TestResultForwardProtocol:
    def test_slave_issues_after_master_for_result(self):
        p, _ = run_trace([add(1, 0, 2)], dual_cluster_config())
        cycles = issue_cycles(p)
        assert cycles[(0, "slave")] == cycles[(0, "master")] + 1

    def test_dependent_in_slave_cluster_waits_for_slave_write(self):
        producer = add(1, 0, 2)      # dual: result forwarded to cluster 1
        consumer = add(3, 1, 1)      # cluster 1 reads r1
        p, _ = run_trace([producer, consumer], dual_cluster_config())
        cycles = issue_cycles(p)
        done = completion_cycles(p)
        assert cycles[(1, "master")] >= done[(0, "slave")]

    def test_result_forward_costs_one_cycle_vs_local(self):
        local = [add(0, 0, 2), add(4, 0, 0)]
        remote = [add(1, 0, 2), add(3, 1, 1)]
        p1, _ = run_trace(local, dual_cluster_config())
        p2, _ = run_trace(remote, dual_cluster_config())
        gap_local = issue_cycles(p1)[(1, "master")] - issue_cycles(p1)[(0, "master")]
        gap_remote = issue_cycles(p2)[(1, "master")] - issue_cycles(p2)[(0, "master")]
        assert gap_remote > gap_local


class TestGlobalDestination:
    def assignment(self):
        return RegisterAssignment.even_odd_dual(extra_globals=(int_reg(8),))

    def test_global_dest_two_writes(self):
        p, result = run_trace(
            [MachineInstruction(Opcode.ADDQ, dest=int_reg(8), srcs=(int_reg(0), int_reg(2)))],
            dual_cluster_config(),
            assignment=self.assignment(),
        )
        assert result.stats.dual_distributed == 1
        assert result.stats.result_forwards == 1

    def test_consumers_in_both_clusters_proceed(self):
        instrs = [
            MachineInstruction(Opcode.ADDQ, dest=int_reg(8), srcs=(int_reg(0), int_reg(2))),
            add(4, 8, 8),   # even cluster reads the global
            add(5, 8, 8),   # odd cluster reads the global
        ]
        p, result = run_trace(instrs, dual_cluster_config(), assignment=self.assignment())
        assert result.stats.instructions == 3
        cycles = issue_cycles(p)
        done = completion_cycles(p)
        # The odd-side consumer waits for the slave's register write.
        assert cycles[(2, "master")] >= done[(0, "slave")]
        # The even-side consumer only waits for the master.
        assert cycles[(1, "master")] >= done[(0, "master")]


class TestTransferBufferLimits:
    def test_operand_buffer_fills_and_stalls(self):
        """More concurrent forwards than buffer entries: slaves stall."""
        config = with_buffer_entries(dual_cluster_config(), 2)
        # One slow producer on the even side; many instructions need an
        # odd-side operand forwarded to the even side while the master
        # also waits on the slow chain value.
        instrs = [mul(0, 0, 0)]
        for i in range(6):
            instrs.append(add(2 + 2 * ((i + 1) % 8), 0, 1))  # even dest, reads r0 (slow) + r1 (fwd)
        p, result = run_trace(instrs, config)
        opbuf = p.clusters[0].operand_buffer
        assert opbuf.stats.peak_occupancy <= 2
        assert opbuf.stats.full_stall_cycles > 0

    def test_deeper_buffers_remove_stalls(self):
        config = with_buffer_entries(dual_cluster_config(), 16)
        instrs = [mul(0, 0, 0)]
        for i in range(6):
            instrs.append(add(2 + 2 * ((i + 1) % 8), 0, 1))
        p, _ = run_trace(instrs, config)
        assert p.clusters[0].operand_buffer.stats.full_stall_cycles == 0


class TestReplayException:
    def _inversion_trace(self):
        """Priority inversion: young pairs grab all operand entries while
        an older slave's operand is still being computed."""
        instrs = []
        # Old instruction whose forwarded operand (r1) comes from a very
        # slow producer chain on the odd side.
        instrs.append(mul(1, 1, 1))
        instrs.append(mul(1, 1, 1))
        instrs.append(mul(1, 1, 1))
        old = add(4, 0, 1)  # slave must forward r1 (late!)
        instrs.append(old)
        # Young pairs whose operands are ready instantly but whose masters
        # wait on the same slow chain -> they hold entries for a long time.
        for i in range(10):
            instrs.append(add(6 + 2 * (i % 8) % 22, 1, 3))
        return instrs

    def test_replay_fires_under_pressure(self):
        config = with_buffer_entries(dual_cluster_config(), 2)
        instrs = []
        # Slow odd-side chain.
        instrs.extend([mul(1, 1, 1)] * 4)
        # Many young dual instructions: master needs r1 (slow chain), slave
        # forwards r3 (ready) -> operand entries held for the chain latency.
        for i in range(12):
            instrs.append(add(2 * (i % 10) + 4 - 4, 1, 2))  # odd dest? keep mix
        for i in range(12):
            instrs.append(add(1 + 2 * (i % 8), 2, 1))
        p, result = run_trace(instrs, config)
        # Under 2-entry buffers with long-held entries, replays may fire;
        # at minimum the machine must finish correctly.
        assert result.stats.instructions == len(instrs)

    def test_replayed_instructions_reexecute_correctly(self):
        config = with_buffer_entries(dual_cluster_config(), 1)
        instrs = [mul(1, 1, 1), mul(1, 1, 1)]
        for i in range(10):
            instrs.append(add(2 + 2 * (i % 8), 1, 3))  # even dest, fwd r1 or r3
        p, result = run_trace(instrs, config)
        assert result.stats.instructions == len(instrs)
        # Every instruction retired exactly once.
        retires = [seq for _c, kind, seq, _r, _cl in p.event_log if kind == "retire"]
        assert sorted(retires) == list(range(len(instrs)))
        assert retires == sorted(retires)


class TestHomelessInstructions:
    def test_register_free_control_alternates(self):
        br = MachineInstruction(Opcode.BR, target="b0")
        trace_instrs = [br, br]
        p, _ = run_trace(trace_instrs, dual_cluster_config())
        clusters = {cl for _c, kind, _s, _r, cl in p.event_log if kind == "issue"}
        assert clusters == {0, 1}
