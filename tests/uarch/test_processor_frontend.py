"""Front-end behaviour: fetch groups, I-cache stalls, and misprediction
penalties."""

from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.uarch.config import (
    default_assignment_for,
    single_cluster_config,
)
from repro.uarch.processor import Processor, SimulationError, simulate

from tests.uarch.helpers import issue_cycles, run_trace, trace_from_instructions


def add(dest=0):
    return MachineInstruction(Opcode.ADDQ, dest=int_reg(dest), srcs=(int_reg(28), int_reg(28)))


class TestIcache:
    def test_cold_start_costs_memory_latency(self):
        p, result = run_trace([add()], single_cluster_config())
        cycles = issue_cycles(p)
        # Fetch waits ~16 cycles for the first line.
        assert cycles[(0, "master")] >= 16

    def test_warm_lines_fetch_immediately(self):
        # 16 instructions span two 32-byte lines; once both lines are warm
        # (trace loops via seq), later fetches don't stall.
        instrs = [add(2 * (i % 14)) for i in range(8)]
        p, result = run_trace(instrs, single_cluster_config())
        assert result.stats.icache_misses >= 1
        assert result.stats.icache_misses <= 2

    def test_icache_miss_rate_reported(self):
        _p, result = run_trace([add() for _ in range(16)], single_cluster_config())
        assert 0.0 < result.stats.icache_miss_rate <= 1.0


class TestMisprediction:
    def _branch_trace(self, predict_wrong: bool):
        """One conditional branch followed by an independent add."""
        br = MachineInstruction(Opcode.BNE, srcs=(int_reg(28),), target="b0")
        instrs = [br, add(2)]
        # Initial counters are weakly taken: actual taken=True is a correct
        # prediction, taken=False a misprediction.
        return trace_from_instructions(instrs, taken={0: not predict_wrong})

    def test_mispredict_costs_more_than_correct(self):
        config = single_cluster_config()
        correct = Processor(config, default_assignment_for(config))
        correct.event_log = []
        correct.run(self._branch_trace(predict_wrong=False))
        wrong = Processor(config, default_assignment_for(config))
        wrong.event_log = []
        wrong.run(self._branch_trace(predict_wrong=True))
        gap_ok = issue_cycles(correct)[(1, "master")] - issue_cycles(correct)[(0, "master")]
        gap_bad = issue_cycles(wrong)[(1, "master")] - issue_cycles(wrong)[(0, "master")]
        assert gap_bad > gap_ok

    def test_mispredict_counted(self):
        _p, result = run_trace(
            [MachineInstruction(Opcode.BNE, srcs=(int_reg(28),), target="b0"), add(2)],
            single_cluster_config(),
            taken={0: False},
        )
        assert result.stats.branch_mispredictions == 1

    def test_unconditional_flow_never_mispredicts(self):
        instrs = [MachineInstruction(Opcode.BR, target="b0"), add(2)]
        _p, result = run_trace(instrs, single_cluster_config())
        assert result.stats.branch_predictions == 0
        assert result.stats.branch_mispredictions == 0


class TestRunHarness:
    def test_simulate_wrapper_defaults_assignment(self):
        trace = trace_from_instructions([add()])
        result = simulate(trace, single_cluster_config())
        assert result.config_name == "single-8way"
        assert result.cycles == result.stats.cycles

    def test_cycle_limit_guard(self):
        import pytest

        trace = trace_from_instructions([add()])
        config = single_cluster_config()
        processor = Processor(config, default_assignment_for(config))
        with pytest.raises(SimulationError):
            processor.run(trace, max_cycles=3)

    def test_empty_trace(self):
        config = single_cluster_config()
        processor = Processor(config, default_assignment_for(config))
        result = processor.run([])
        assert result.stats.instructions == 0
        assert result.cycles == 0

    def test_issue_disorder_positive_with_mixed_latencies(self):
        # A slow head followed by independent fast ops: the fast ops issue
        # ahead of nothing (they're younger), so disorder comes from the
        # slow op issuing after younger ones only if it is older... build
        # the inverse: old slow chain, young independents that overtake.
        slow = MachineInstruction(Opcode.MULQ, dest=int_reg(0), srcs=(int_reg(0), int_reg(0)))
        instrs = [slow, slow, add(2), add(4), add(6)]
        _p, result = run_trace(instrs, single_cluster_config())
        assert result.stats.issue_disorder > 0.0
