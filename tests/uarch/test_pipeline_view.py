"""Tests for the pipeline chart renderer."""

from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.uarch.pipeline_view import build_rows, render_pipeline

from tests.uarch.helpers import run_trace, trace_from_instructions


def add(dest, *srcs):
    return MachineInstruction(
        Opcode.ADDQ, dest=int_reg(dest), srcs=tuple(int_reg(s) for s in srcs)
    )


class TestRows:
    def test_single_instruction_one_row(self):
        p, _ = run_trace([add(4, 0, 2)], dual_cluster_config())
        rows = build_rows(p.event_log)
        assert len(rows) == 1
        assert rows[0].role == "master"

    def test_dual_instruction_two_rows(self):
        p, _ = run_trace([add(4, 0, 1)], dual_cluster_config())
        rows = build_rows(p.event_log)
        assert len(rows) == 2
        assert {r.role for r in rows} == {"master", "slave"}

    def test_window_filters(self):
        p, _ = run_trace([add(0, 28, 28) for _ in range(6)], single_cluster_config())
        rows = build_rows(p.event_log, first_seq=2, last_seq=3)
        assert {r.seq for r in rows} == {2, 3}

    def test_event_letters(self):
        p, _ = run_trace([add(4, 0, 2)], dual_cluster_config())
        rows = build_rows(p.event_log)
        letters = set(rows[0].events.values())
        assert {"D", "I", "C"} <= letters
        # Retirement is attached to the master row unless it lands on the
        # same cycle as completion (the cell keeps the completion letter).
        all_cycles = rows[0].events
        assert "T" in letters or "C" in letters


class TestRendering:
    def test_render_contains_legend_and_rows(self):
        instrs = [add(4, 0, 1)]
        p, _ = run_trace(instrs, dual_cluster_config())
        trace = trace_from_instructions(instrs)
        text = render_pipeline(p.event_log, trace)
        assert "D=dispatch" in text
        assert "master" in text and "slave" in text
        assert "addq" in text

    def test_render_empty_window(self):
        assert "no events" in render_pipeline([], first_seq=10, last_seq=20)

    def test_render_deterministic(self):
        instrs = [add(4, 0, 1), add(2, 2, 2)]
        p1, _ = run_trace(instrs, dual_cluster_config())
        p2, _ = run_trace(instrs, dual_cluster_config())
        assert render_pipeline(p1.event_log) == render_pipeline(p2.event_log)

    def test_slave_issue_visible_before_master(self):
        """The rendered chart shows the Figure 2 ordering."""
        p, _ = run_trace([add(4, 0, 1)], dual_cluster_config())
        text = render_pipeline(p.event_log)
        lines = [l for l in text.splitlines()[1:]]
        master_line = next(l for l in lines if "master" in l)
        slave_line = next(l for l in lines if "slave" in l)
        assert slave_line.index("I") < master_line.index("I")

    def test_max_width_truncates_columns(self):
        p, _ = run_trace([add(0, 28, 28) for _ in range(8)], single_cluster_config())
        narrow = render_pipeline(p.event_log, max_width=4)
        wide = render_pipeline(p.event_log, max_width=200)
        narrow_cells = narrow.splitlines()[1].split("@c")[1][1:]
        wide_cells = wide.splitlines()[1].split("@c")[1][1:]
        assert len(narrow_cells) <= len(wide_cells)
        assert "cycles" in narrow.splitlines()[0]


class TestEventSources:
    """The renderer accepts recorders, typed events, and raw tuples."""

    def test_events_are_typed(self):
        from repro.obs.trace import PipelineEvent

        p, _ = run_trace([add(4, 0, 2)], dual_cluster_config())
        assert all(isinstance(e, PipelineEvent) for e in p.event_log)

    def test_recorder_renders_like_its_events(self):
        p, _ = run_trace([add(4, 0, 1)], dual_cluster_config())
        assert render_pipeline(p.recorder) == render_pipeline(p.event_log)

    def test_raw_tuples_still_render(self):
        p, _ = run_trace([add(4, 0, 1)], dual_cluster_config())
        raw = [tuple(e) for e in p.event_log]
        assert render_pipeline(raw) == render_pipeline(p.event_log)
