"""Shared helpers for processor tests."""

from repro.core.registers import RegisterAssignment
from repro.ir.machine_program import MachineProgram
from repro.isa.instructions import MachineInstruction
from repro.uarch.config import ProcessorConfig, default_assignment_for
from repro.uarch.processor import Processor
from repro.workloads.trace import DynamicInstruction


def trace_from_instructions(
    instructions: list[MachineInstruction],
    addresses: dict[int, int] | None = None,
    taken: dict[int, bool] | None = None,
) -> list[DynamicInstruction]:
    """Wrap a straight-line instruction list into a trace."""
    machine = MachineProgram("test")
    block = machine.add_block("b0")
    for instr in instructions:
        block.add(instr)
    machine.assign_pcs()
    trace = []
    addresses = addresses or {}
    taken = taken or {}
    for i, (instr, meta) in enumerate(machine.all_instructions()):
        trace.append(
            DynamicInstruction(
                instr,
                meta,
                i,
                address=addresses.get(i, 0x9000 if instr.opcode.is_memory else None),
                taken=taken.get(i, True if instr.opcode.is_control else None),
            )
        )
    return trace


def run_trace(
    instructions: list[MachineInstruction],
    config: ProcessorConfig,
    assignment: RegisterAssignment | None = None,
    addresses: dict[int, int] | None = None,
    taken: dict[int, bool] | None = None,
    log_events: bool = True,
):
    """Run a straight-line trace; returns (processor, result)."""
    trace = trace_from_instructions(instructions, addresses, taken)
    processor = Processor(config, assignment or default_assignment_for(config))
    if log_events:
        processor.event_log = []
    result = processor.run(trace)
    return processor, result


def issue_cycles(processor, kinds=("issue", "reissue")) -> dict[tuple[int, str], int]:
    """(seq, role) -> issue cycle, from the event log."""
    cycles = {}
    for cycle, kind, seq, role, _cluster in processor.event_log:
        if kind in kinds and (seq, role) not in cycles:
            cycles[(seq, role)] = cycle
    return cycles


def completion_cycles(processor) -> dict[tuple[int, str], int]:
    cycles = {}
    for cycle, kind, seq, role, _cluster in processor.event_log:
        if kind == "complete":
            cycles[(seq, role)] = cycle
    return cycles
