"""Property-based fuzzing of N-cluster configurations.

Two layers: 200+ seeded samples from the gym's :class:`DesignSpace`
(every draw must expand to a validated config/assignment pair and
round-trip exactly), and hypothesis-driven arbitrary genomes (validation
must accept or raise a typed :class:`ConfigError` — never crash, never
clamp silently).  A final layer simulates a handful of sampled machines
with ``self_check=True`` on both engines: no invariant violations, and
bit-identical statistics.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.errors import ConfigError
from repro.experiments.harness import EvaluationOptions, evaluate_workload_part
from repro.gym.space import ClusterSpec, DesignPoint, DesignSpace
from repro.perf.cache import ArtifactCache
from repro.perf.fingerprint import fingerprint
from repro.workloads.spec92 import SPEC92

#: The ISSUE's acceptance floor: the property suite samples >= 200
#: configurations in CI.
N_SAMPLED_CONFIGS = 200

SPACE = DesignSpace()
SAMPLE_RNG_SEED = 20260808


def sampled_points(count):
    rng = random.Random(SAMPLE_RNG_SEED)
    return [SPACE.sample(rng) for _ in range(count)]


class TestSampledConfigInvariants:
    def test_two_hundred_sampled_configs(self):
        seen = set()
        for point in sampled_points(N_SAMPLED_CONFIGS):
            # Feasible by construction: validation must not raise.
            config, assignment = SPACE.validate(point)
            assert config.num_clusters == point.num_clusters
            assert assignment.num_clusters == point.num_clusters
            # Issue widths sum to the genome's total width.
            assert sum(c.issue.total for c in config.clusters) == point.total_width
            # The shared front end scales with total width.
            assert config.retire_width == point.total_width
            assert config.fetch_width == config.dispatch_width
            # Canonical form is a fixpoint of sampling.
            assert SPACE.canonicalize(point) == point
            assert SPACE.contains(point)
            # Payload round-trip is exact, fingerprint included.
            clone = DesignPoint.from_dict(point.as_dict())
            assert clone == point
            assert fingerprint(clone.as_dict()) == fingerprint(point.as_dict())
            assert config.name == point.slug
            # Transfer buffers: present on multicluster machines only.
            if point.num_clusters > 1:
                assert all(
                    c.operand_buffer_entries == point.buffer_entries
                    and c.result_buffer_entries == point.buffer_entries
                    for c in config.clusters
                )
            else:
                assert config.clusters[0].operand_buffer_entries == 0
            seen.add(point.slug)
        # The space is genuinely explored, not one point repeated.
        assert len(seen) > N_SAMPLED_CONFIGS // 4

    def test_every_cluster_keeps_rename_headroom(self):
        # The deadlock-freedom rule behind validate_assignment: at least
        # one spare physical register per class beyond the accessible
        # architectural namespace.
        for point in sampled_points(N_SAMPLED_CONFIGS):
            config, assignment = SPACE.validate(point)
            from repro.isa.registers import RegisterClass, all_registers

            for index, cluster in enumerate(config.clusters):
                for rclass, capacity in (
                    (RegisterClass.INT, cluster.int_physical_registers),
                    (RegisterClass.FP, cluster.fp_physical_registers),
                ):
                    accessible = sum(
                        1
                        for reg in all_registers()
                        if reg.rclass is rclass
                        and not reg.is_zero
                        and index in assignment.clusters_of(reg)
                    )
                    assert accessible < capacity


def cluster_specs():
    return st.builds(
        ClusterSpec,
        width=st.integers(min_value=0, max_value=12),
        queue_entries=st.integers(min_value=0, max_value=160),
        registers=st.integers(min_value=0, max_value=160),
    )


def arbitrary_points():
    return st.builds(
        DesignPoint,
        clusters=st.tuples() | st.lists(cluster_specs(), min_size=1, max_size=5).map(tuple),
        buffer_entries=st.integers(min_value=-2, max_value=20),
        extra_globals=st.integers(min_value=-2, max_value=40),
    )


class TestArbitraryGenomes:
    @hyp_settings(max_examples=120, deadline=None)
    @given(point=arbitrary_points())
    def test_validate_accepts_or_raises_config_error(self, point):
        """Feasibility is a total, typed predicate over arbitrary genomes."""
        try:
            config, assignment = SPACE.validate(point)
        except ConfigError:
            assert not SPACE.is_feasible(point)
            return
        assert SPACE.is_feasible(point)
        assert config.num_clusters == assignment.num_clusters == point.num_clusters
        assert sum(c.issue.total for c in config.clusters) == point.total_width
        canonical = SPACE.canonicalize(point)
        assert SPACE.is_feasible(canonical)
        assert SPACE.canonicalize(canonical) == canonical

    @hyp_settings(max_examples=60, deadline=None)
    @given(point=arbitrary_points())
    def test_round_trip_is_exact_for_any_genome(self, point):
        assert DesignPoint.from_dict(point.as_dict()) == point


#: Machines actually simulated under self_check; a slice of the sampled
#: set plus the previously pathological shapes (asymmetric 3-cluster,
#: minimal transfer buffers).
SIMULATED_POINTS = sampled_points(8)[:6] + [
    DesignPoint(
        clusters=(ClusterSpec(4, 64, 64), ClusterSpec(2, 32, 64), ClusterSpec(1, 16, 64)),
        buffer_entries=4,
        extra_globals=2,
    ),
    DesignPoint(
        clusters=(ClusterSpec(2, 32, 64),) * 4,
        buffer_entries=1,
    ),
]


@pytest.fixture(scope="module")
def artifact_cache():
    return ArtifactCache()


class TestSelfCheckSimulation:
    @pytest.mark.parametrize("point", SIMULATED_POINTS, ids=lambda p: p.slug)
    def test_short_trace_runs_clean_on_both_engines(self, point, artifact_cache):
        """Sampled machines simulate without InvariantViolation and the
        two engines agree bit-for-bit."""
        options = EvaluationOptions(
            trace_length=400,
            self_check=True,
            dual_config=point.to_config(),
            dual_assignment=point.assignment(),
        )
        results = {}
        for engine in ("reference", "batched"):
            outcome = evaluate_workload_part(
                SPEC92["compress"](),
                "dual_none",
                replace(options, engine=engine),
                artifact_cache,
            )
            results[engine] = (
                outcome.sim.cycles,
                fingerprint(outcome.sim.stats.as_dict()),
            )
        assert results["reference"] == results["batched"]
