"""The batched engine is bit-identical to the reference model.

The contract (DESIGN.md §14): ``ProcessorConfig.engine`` selects a
simulation kernel, never a different simulated machine.  Every stats
counter — the full ``stats_fingerprint`` surface — must match the
reference model exactly, on every Table 2 benchmark, on both machines,
through checkpoints, and under fault injection.
"""

import pickle
from dataclasses import replace

import pytest

from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError, WatchdogTimeout
from repro.experiments.harness import PARTS, EvaluationOptions, evaluate_workload_part
from repro.perf.cache import ArtifactCache
from repro.perf.fingerprint import fingerprint
from repro.robustness.faultinject import DuplicateTransferEntry, StuckFunctionalUnit
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.uarch.engine import ENGINES, BatchedProcessor, make_processor
from repro.uarch.processor import Processor
from repro.workloads.spec92 import SPEC92

from tests.robustness.test_checkpoint import make_trace

#: Short traces keep the 6 benchmarks x 2 machines x 2 engines sweep
#: CI-friendly; the compile/trace artifacts are shared via a
#: module-scoped cache, so each benchmark compiles once.
TRACE_LENGTH = 1_500

#: machine name -> the harness part that simulates it.
MACHINES = {"single-8way": "single", "dual-4way": "dual_none"}


@pytest.fixture(scope="module")
def artifact_cache():
    return ArtifactCache()


def _fingerprint(name: str, part: str, engine: str, cache: ArtifactCache) -> str:
    options = EvaluationOptions(
        trace_length=TRACE_LENGTH, cache=cache, engine=engine
    )
    outcome = evaluate_workload_part(SPEC92[name](), part, options, cache)
    return fingerprint(outcome.sim.stats.as_dict())


class TestFactory:
    def test_engine_knob_selects_the_class(self):
        single = single_cluster_config()
        assert type(make_processor(single, RegisterAssignment.single_cluster())) is Processor
        batched = replace(single, engine="batched")
        assert isinstance(
            make_processor(batched, RegisterAssignment.single_cluster()),
            BatchedProcessor,
        )

    def test_unknown_engine_rejected(self):
        config = replace(single_cluster_config(), engine="warp")
        with pytest.raises(ConfigError, match="unknown engine"):
            make_processor(config, RegisterAssignment.single_cluster())

    def test_engines_registry(self):
        assert ENGINES == ("reference", "batched")


class TestFingerprintIdentity:
    """Full-suite bit-identity: the tentpole's correctness contract."""

    @pytest.mark.parametrize("machine", sorted(MACHINES))
    @pytest.mark.parametrize("name", sorted(SPEC92))
    def test_stats_fingerprints_match(self, name, machine, artifact_cache):
        part = MACHINES[machine]
        reference = _fingerprint(name, part, "reference", artifact_cache)
        batched = _fingerprint(name, part, "batched", artifact_cache)
        assert batched == reference, (
            f"{name} on {machine}: batched engine diverged from the "
            f"reference model"
        )

    def test_dual_local_part_matches_too(self, artifact_cache):
        # The rescheduled binary exercises different steering; one
        # benchmark suffices since the machine model is the same.
        reference = _fingerprint("compress", "dual_local", "reference", artifact_cache)
        batched = _fingerprint("compress", "dual_local", "batched", artifact_cache)
        assert batched == reference

    def test_parts_cover_both_machines(self):
        assert set(MACHINES.values()) < set(PARTS)


class TestWatchdogParity:
    def test_cycle_budget_raises_on_batched_engine(self):
        config = replace(dual_cluster_config(), engine="batched")
        processor = make_processor(config, RegisterAssignment.even_odd_dual())
        with pytest.raises(WatchdogTimeout) as info:
            processor.run(make_trace(), max_cycles=3)
        assert "budget" in info.value.message
        assert info.value.diagnostics

    @pytest.mark.parametrize("engine", ENGINES)
    def test_tight_progress_window_still_completes(self, engine):
        # The window is larger than any single stall the trace produces
        # (memory latency is 16), so a correct engine finishes; an engine
        # that forgets to refresh the progress clock on any productive
        # cycle trips the no-forward-progress watchdog instead.
        config = replace(dual_cluster_config(), engine=engine, progress_window=64)
        processor = make_processor(config, RegisterAssignment.even_odd_dual())
        result = processor.run(make_trace())
        assert result.stats.instructions == 400


class TestCheckpointParity:
    def test_stepwise_advance_matches_straight_run(self):
        config = replace(dual_cluster_config(), engine="batched")
        straight = make_processor(config, RegisterAssignment.even_odd_dual())
        expected = fingerprint(straight.run(make_trace()).stats.as_dict())

        stepper = make_processor(config, RegisterAssignment.even_odd_dual())
        stepper.start(make_trace())
        while not stepper.advance(max_steps=37):
            pass
        assert fingerprint(stepper.finalize().stats.as_dict()) == expected

    def test_pickle_round_trip_resumes_bit_identically(self):
        config = replace(dual_cluster_config(), engine="batched")
        straight = make_processor(config, RegisterAssignment.even_odd_dual())
        expected = fingerprint(straight.run(make_trace()).stats.as_dict())

        processor = make_processor(config, RegisterAssignment.even_odd_dual())
        processor.start(make_trace())
        assert not processor.advance(max_steps=120)
        resumed = pickle.loads(pickle.dumps(processor))
        # Dispatch recipes are keyed by object identity, so they must not
        # survive the round trip; they rebuild lazily on resume.
        assert resumed._recipes == {}
        resumed.advance()
        assert fingerprint(resumed.finalize().stats.as_dict()) == expected


class TestFaultInjectionParity:
    @pytest.mark.parametrize(
        "fault_factory",
        [
            lambda: StuckFunctionalUnit(at_cycle=40, cluster=0),
            lambda: DuplicateTransferEntry(at_cycle=40, cluster=1, kind="operand"),
        ],
        ids=["stuck-divider", "duplicate-transfer"],
    )
    def test_fault_runs_match_across_engines(self, fault_factory):
        # Faults mutate live machine state mid-run; both engines must
        # observe the sabotage at the same per-cycle point and end with
        # the same stats (neither trace has FP divides, so the stuck
        # divider degrades nothing and the duplicate entry only squats
        # on capacity — the runs complete either way).
        results = {}
        for engine in ENGINES:
            config = replace(dual_cluster_config(), engine=engine)
            processor = make_processor(config, RegisterAssignment.even_odd_dual())
            fault = fault_factory()
            processor.install_fault(fault)
            result = processor.run(make_trace())
            assert fault.fired
            results[engine] = fingerprint(result.stats.as_dict())
        assert results["batched"] == results["reference"]


class TestEventLoopProgress:
    def test_process_events_returns_processed_count(self):
        """Event-only cycles must register as forward progress.

        The watchdog counts a cycle as productive when *any* stage did
        work, including the event loop; ``_process_events`` falling
        through without a return value made event-only cycles look idle
        and tripped spurious no-forward-progress timeouts.
        """
        processor = Processor(
            single_cluster_config(), RegisterAssignment.single_cluster()
        )
        processor.start(make_trace(4))
        processor._schedule(3, ("fetch_resume", 99))
        processor._schedule(3, ("fetch_resume", 98))
        assert processor._process_events(3) == 2
        assert processor._process_events(3) == 0


# --------------------------------------------------------------------------
# N-cluster differential sweep: the batched engine must stay bit-identical
# across the whole gym design space, not just the paper's two machines.

import random

from repro.gym.space import ClusterSpec, DesignPoint, DesignSpace


def _gym_points():
    """Twenty seeded random machines, five per cluster count 1-4."""
    points = []
    rng = random.Random(97)
    for n in (1, 2, 3, 4):
        space = DesignSpace(min_clusters=n, max_clusters=n)
        points.extend(space.sample(rng) for _ in range(5))
    return points


#: Hand-picked 3-cluster asymmetric machine: the shape that exposed the
#: two-cluster hardcoding in multi-helper distribution (a slave rename
#: once looked up a third cluster's register and crashed).
ASYMMETRIC_3CLUSTER = DesignPoint(
    clusters=(ClusterSpec(4, 64, 64), ClusterSpec(2, 32, 64), ClusterSpec(1, 16, 64)),
    buffer_entries=4,
    extra_globals=2,
)

GYM_POINTS = _gym_points() + [ASYMMETRIC_3CLUSTER]


class TestNClusterIdentity:
    @pytest.mark.parametrize("point", GYM_POINTS, ids=lambda p: p.slug)
    def test_batched_matches_reference(self, point, artifact_cache):
        options = EvaluationOptions(
            trace_length=800,
            dual_config=point.to_config(),
            dual_assignment=point.assignment(),
        )
        results = {}
        for engine in ENGINES:
            outcome = evaluate_workload_part(
                SPEC92["compress"](),
                "dual_none",
                replace(options, engine=engine),
                artifact_cache,
            )
            results[engine] = (
                outcome.sim.cycles,
                fingerprint(outcome.sim.stats.as_dict()),
            )
        assert results["batched"] == results["reference"]
