"""Tests for machine configurations (Table 1, experiment E1)."""

from repro.core.registers import RegisterAssignment
from repro.isa.opcodes import InstrClass, Opcode
from repro.uarch.config import (
    DUAL_ISSUE_RULES,
    LatencyModel,
    SINGLE_ISSUE_RULES,
    default_assignment_for,
    dual_cluster_2way_config,
    dual_cluster_config,
    single_cluster_4way_config,
    single_cluster_config,
    with_buffer_entries,
)


class TestTable1IssueRules:
    def test_single_cluster_row(self):
        """Row 1 of Table 1: 8 total, 8 int, 4 fp, 4 ld/st, 4 control."""
        rules = SINGLE_ISSUE_RULES
        assert rules.total == 8
        assert rules.limit_for(InstrClass.INT_OTHER) == 8
        assert rules.limit_for(InstrClass.INT_MULTIPLY) == 8
        assert rules.limit_for(InstrClass.FP_OTHER) == 4
        assert rules.limit_for(InstrClass.FP_DIVIDE) == 4
        assert rules.limit_for(InstrClass.LOAD) == 4
        assert rules.limit_for(InstrClass.STORE) == 4
        assert rules.limit_for(InstrClass.CONTROL) == 4

    def test_dual_cluster_row(self):
        """Row 2 of Table 1: per cluster 4 total, 4 int, 2 fp, 2 ld/st, 2 cf."""
        rules = DUAL_ISSUE_RULES
        assert rules.total == 4
        assert rules.limit_for(InstrClass.INT_OTHER) == 4
        assert rules.limit_for(InstrClass.FP_OTHER) == 2
        assert rules.limit_for(InstrClass.LOAD) == 2
        assert rules.limit_for(InstrClass.CONTROL) == 2


class TestTable1Latencies:
    def test_latency_row(self):
        """Row 3 of Table 1."""
        lat = LatencyModel()
        assert lat.latency_of(Opcode.MULQ) == 6
        assert lat.latency_of(Opcode.ADDQ) == 1
        assert lat.latency_of(Opcode.DIVS) == 8    # 32-bit divide
        assert lat.latency_of(Opcode.DIVT) == 16   # 64-bit divide
        assert lat.latency_of(Opcode.ADDT) == 3
        assert lat.latency_of(Opcode.BNE) == 1
        assert lat.latency_of(Opcode.STQ) == 1

    def test_load_delay_slot(self):
        """Loads: latency 1 plus one load-delay slot (footnote)."""
        lat = LatencyModel()
        assert lat.latency_of(Opcode.LDQ) == 2
        assert lat.latency_of(Opcode.LDT) == 2


class TestSection41Resources:
    def test_single_cluster_resources(self):
        config = single_cluster_config()
        assert config.num_clusters == 1
        cluster = config.clusters[0]
        assert cluster.dispatch_queue_entries == 128
        assert cluster.int_physical_registers == 128
        assert cluster.fp_physical_registers == 128
        assert config.fetch_width == 12
        assert config.retire_width == 8

    def test_dual_cluster_resources(self):
        config = dual_cluster_config()
        assert config.num_clusters == 2
        for cluster in config.clusters:
            assert cluster.dispatch_queue_entries == 64
            assert cluster.int_physical_registers == 64
            assert cluster.operand_buffer_entries == 8
            assert cluster.result_buffer_entries == 8

    def test_total_issue_width_matches(self):
        assert single_cluster_config().total_issue_width == 8
        assert dual_cluster_config().total_issue_width == 8

    def test_caches_64k_two_way(self):
        config = dual_cluster_config()
        assert config.icache.size_bytes == 64 * 1024
        assert config.icache.associativity == 2
        assert config.dcache.size_bytes == 64 * 1024
        assert config.memory_latency == 16

    def test_four_way_variants(self):
        assert single_cluster_4way_config().total_issue_width == 4
        assert dual_cluster_2way_config().total_issue_width == 4

    def test_with_buffer_entries(self):
        config = with_buffer_entries(dual_cluster_config(), 16)
        assert all(c.operand_buffer_entries == 16 for c in config.clusters)
        assert all(c.result_buffer_entries == 16 for c in config.clusters)


class TestDefaultAssignments:
    def test_single(self):
        a = default_assignment_for(single_cluster_config())
        assert a.num_clusters == 1

    def test_dual(self):
        a = default_assignment_for(dual_cluster_config())
        assert a.num_clusters == 2

    def test_mismatch_rejected_by_processor(self):
        import pytest

        from repro.uarch.processor import Processor

        with pytest.raises(ValueError):
            Processor(dual_cluster_config(), RegisterAssignment.single_cluster())


class TestNClusterDefaultAssignment:
    def test_three_and_four_clusters_get_the_modulo_map(self):
        from repro.gym.space import ClusterSpec, DesignPoint
        from repro.isa.registers import all_registers

        for n in (3, 4):
            point = DesignPoint(
                clusters=(ClusterSpec(2, 32, 64),) * n, buffer_entries=4
            )
            a = default_assignment_for(point.to_config())
            rr = RegisterAssignment.round_robin(n)
            assert a.num_clusters == n
            for reg in all_registers():
                assert a.clusters_of(reg) == rr.clusters_of(reg)

    def test_dual_stays_even_odd(self):
        from repro.isa.registers import all_registers

        a = default_assignment_for(dual_cluster_config())
        eo = RegisterAssignment.even_odd_dual()
        for reg in all_registers():
            assert a.clusters_of(reg) == eo.clusters_of(reg)
