"""Tests for simulation statistics."""

from repro.core.distribution import Scenario
from repro.uarch.stats import ClusterStats, SimulationStats


class TestDerivedMetrics:
    def test_ipc(self):
        s = SimulationStats(cycles=100, instructions=250)
        assert s.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimulationStats().ipc == 0.0

    def test_branch_accuracy(self):
        s = SimulationStats(branch_predictions=100, branch_mispredictions=7)
        assert abs(s.branch_accuracy - 0.93) < 1e-9

    def test_branch_accuracy_no_branches(self):
        assert SimulationStats().branch_accuracy == 1.0

    def test_cache_miss_rates(self):
        s = SimulationStats(dcache_accesses=200, dcache_misses=20,
                            icache_accesses=100, icache_misses=1)
        assert s.dcache_miss_rate == 0.1
        assert s.icache_miss_rate == 0.01

    def test_dual_fraction(self):
        s = SimulationStats(instructions=100, dual_distributed=25)
        assert s.dual_fraction == 0.25

    def test_issue_disorder_empty(self):
        assert SimulationStats().issue_disorder == 0.0


class TestClusterStats:
    def test_note_issue_aggregates_by_class(self):
        c = ClusterStats()
        c.note_issue("integer")
        c.note_issue("integer")
        c.note_issue("fp")
        assert c.issued == 3
        assert c.issued_by_class == {"integer": 2, "fp": 1}


class TestSummary:
    def test_summary_contains_headline_numbers(self):
        s = SimulationStats(
            cycles=1000,
            instructions=2000,
            dual_distributed=100,
            replay_exceptions=3,
            clusters=[ClusterStats(), ClusterStats()],
        )
        s.by_scenario[Scenario.DUAL_OPERAND] = 50
        text = s.summary()
        assert "1000" in text
        assert "2.000" in text  # IPC
        assert "replay exceptions" in text
        assert "cluster 1" in text
