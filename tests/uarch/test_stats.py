"""Tests for simulation statistics."""

from repro.core.distribution import Scenario
from repro.uarch.stats import ClusterStats, SimulationStats


class TestDerivedMetrics:
    def test_ipc(self):
        s = SimulationStats(cycles=100, instructions=250)
        assert s.ipc == 2.5

    def test_ipc_zero_cycles(self):
        assert SimulationStats().ipc == 0.0

    def test_branch_accuracy(self):
        s = SimulationStats(branch_predictions=100, branch_mispredictions=7)
        assert abs(s.branch_accuracy - 0.93) < 1e-9

    def test_branch_accuracy_no_branches(self):
        assert SimulationStats().branch_accuracy == 1.0

    def test_cache_miss_rates(self):
        s = SimulationStats(dcache_accesses=200, dcache_misses=20,
                            icache_accesses=100, icache_misses=1)
        assert s.dcache_miss_rate == 0.1
        assert s.icache_miss_rate == 0.01

    def test_dual_fraction(self):
        s = SimulationStats(instructions=100, dual_distributed=25)
        assert s.dual_fraction == 0.25

    def test_issue_disorder_empty(self):
        assert SimulationStats().issue_disorder == 0.0


class TestClusterStats:
    def test_note_issue_aggregates_by_class(self):
        c = ClusterStats()
        c.note_issue("integer")
        c.note_issue("integer")
        c.note_issue("fp")
        assert c.issued == 3
        assert c.issued_by_class == {"integer": 2, "fp": 1}


class TestSummary:
    def test_summary_contains_headline_numbers(self):
        s = SimulationStats(
            cycles=1000,
            instructions=2000,
            dual_distributed=100,
            replay_exceptions=3,
            clusters=[ClusterStats(), ClusterStats()],
        )
        s.by_scenario[Scenario.DUAL_OPERAND] = 50
        text = s.summary()
        assert "1000" in text
        assert "2.000" in text  # IPC
        assert "replay exceptions" in text
        assert "cluster 1" in text


class TestMergedMissExport:
    def test_finalize_exports_merged_misses(self):
        """Regression: merged-miss counters must reach the stats surface.

        ``Cache.stats.merged_misses`` was counted but never copied into
        ``SimulationStats`` at finalize, so the inverted-MSHR behaviour
        was invisible to every report, export, and fingerprint.
        """
        from repro.core.registers import RegisterAssignment
        from repro.uarch.config import single_cluster_config
        from repro.uarch.processor import Processor

        from tests.robustness.test_checkpoint import make_trace

        processor = Processor(
            single_cluster_config(), RegisterAssignment.single_cluster()
        )
        processor.start(make_trace(20))
        processor.advance()
        processor.icache.stats.merged_misses = 7
        processor.dcache.stats.merged_misses = 3
        stats = processor.finalize().stats
        assert stats.icache_merged_misses == 7
        assert stats.dcache_merged_misses == 3
        payload = stats.as_dict()
        assert payload["icache_merged_misses"] == 7
        assert payload["dcache_merged_misses"] == 3

    def test_summary_mentions_merged_misses(self):
        s = SimulationStats(
            cycles=10,
            instructions=10,
            icache_accesses=4,
            icache_misses=2,
            icache_merged_misses=1,
            dcache_accesses=4,
            dcache_misses=2,
            dcache_merged_misses=2,
        )
        assert "(1 merged)" in s.summary()
        assert "(2 merged)" in s.summary()
