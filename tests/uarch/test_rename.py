"""Tests for register renaming and the physical-register free lists."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.registers import RegisterClass, all_registers, int_reg
from repro.uarch.rename import ClusterRename, RenameFile


def int_file(num_phys=16, arch=None):
    arch = arch if arch is not None else [int_reg(i) for i in range(4)]
    return RenameFile(num_phys, arch)


class TestInitialState:
    def test_initial_mappings_ready(self):
        f = int_file()
        for i in range(4):
            phys = f.lookup(int_reg(i))
            assert f.ready[phys]

    def test_free_count(self):
        f = int_file(num_phys=16)
        assert f.free_count == 12

    def test_zero_register_not_mapped(self):
        f = RenameFile(8, [int_reg(31), int_reg(0)])
        assert int_reg(31).uid not in f.mapping
        assert f.free_count == 7

    def test_too_many_arch_regs_rejected(self):
        with pytest.raises(ValueError):
            RenameFile(2, [int_reg(i) for i in range(4)])


class TestAllocate:
    def test_allocate_remaps(self):
        f = int_file()
        old = f.lookup(int_reg(1))
        phys, prev = f.allocate(int_reg(1))
        assert prev == old
        assert f.lookup(int_reg(1)) == phys
        assert not f.ready[phys]

    def test_allocate_fresh_register_not_ready(self):
        f = int_file()
        phys, _ = f.allocate(int_reg(0))
        assert not f.ready[phys]

    def test_release_recycles(self):
        f = int_file()
        before = f.free_count
        phys, prev = f.allocate(int_reg(2))
        f.release(prev)
        assert f.free_count == before  # one taken, one returned

    def test_undo_restores_mapping(self):
        f = int_file()
        old = f.lookup(int_reg(3))
        phys, prev = f.allocate(int_reg(3))
        f.undo(int_reg(3), phys, prev)
        assert f.lookup(int_reg(3)) == old
        assert f.free_count == 12


class TestWaiters:
    def test_mark_ready_returns_waiters(self):
        f = int_file()
        phys, _ = f.allocate(int_reg(0))
        f.waiters[phys].append("uop-a")
        f.waiters[phys].append("uop-b")
        woken = f.mark_ready(phys)
        assert woken == ["uop-a", "uop-b"]
        assert f.ready[phys]
        assert f.waiters[phys] == []


class TestClusterRename:
    def test_classes_separate(self):
        fp_regs = [r for r in all_registers() if r.rclass is RegisterClass.FP]
        cr = ClusterRename(16, 16, list(all_registers())[:8] + fp_regs[:4])
        assert cr.files[RegisterClass.INT] is not cr.files[RegisterClass.FP]

    def test_can_allocate_checks_both_classes(self):
        accessible = [int_reg(i) for i in range(4)]
        cr = ClusterRename(5, 2, accessible)
        assert cr.can_allocate(1, 0)
        assert cr.can_allocate(0, 2)
        assert not cr.can_allocate(2, 3)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.booleans()), max_size=100))
def test_property_free_list_conservation(operations):
    """allocate/release keeps (mapped + free) == total and never aliases."""
    f = int_file(num_phys=12)
    undo_stack = []
    for arch_index, do_release in operations:
        reg = int_reg(arch_index)
        if do_release and undo_stack:
            _reg, _phys, prev = undo_stack.pop(0)
            if prev is not None:
                f.release(prev)
        elif f.free_count > 0:
            phys, prev = f.allocate(reg)
            undo_stack.append((reg, phys, prev))
        mapped = set(f.mapping.values())
        free = set(f.free)
        assert not (mapped & free), "a register is both mapped and free"
        assert len(mapped) == len(f.mapping), "two arch regs share a phys reg"
