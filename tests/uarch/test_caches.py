"""Tests for the set-associative cache with inverted MSHR."""

from hypothesis import given, settings, strategies as st

from repro.uarch.caches import Cache
from repro.uarch.config import CacheConfig


def small_cache(sets=4, assoc=2, line=32, latency=16):
    config = CacheConfig(size_bytes=sets * assoc * line, associativity=assoc, line_bytes=line)
    return Cache(config, latency, "test")


class TestHitsAndMisses:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0x100, cycle=0) == 16
        assert cache.access(0x100, cycle=20) == 20
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_same_line_hits(self):
        cache = small_cache(line=32)
        cache.access(0x100, 0)
        assert cache.access(0x11F, 5) == 5   # same 32-byte line
        assert cache.access(0x120, 5) == 21  # next line misses

    def test_lru_within_set(self):
        cache = small_cache(sets=4, assoc=2, line=32)
        # Three lines mapping to set 0: lines 0, 4, 8 (line = addr>>5, set = line%4).
        a, b, c = 0x000, 0x080, 0x100
        cache.access(a, 0)
        cache.access(b, 0)
        cache.access(c, 0)      # evicts a (LRU)
        assert cache.access(b, 100) == 100   # still resident
        assert cache.access(a, 100) == 116   # was evicted

    def test_lru_updated_on_hit(self):
        cache = small_cache(sets=4, assoc=2)
        a, b, c = 0x000, 0x080, 0x100
        cache.access(a, 0)
        cache.access(b, 0)
        cache.access(a, 1)      # refresh a
        cache.access(c, 2)      # evicts b now
        assert cache.access(a, 100) == 100
        assert cache.access(b, 100) == 116

    def test_write_allocates(self):
        cache = small_cache()
        cache.access(0x200, 0, write=True)
        assert cache.access(0x200, 5) == 5


class TestInvertedMshr:
    def test_merged_miss_returns_outstanding_fill(self):
        cache = small_cache(latency=16)
        first = cache.access(0x300, 0)
        assert first == 16
        # A second access to the same line while in flight merges.
        # (The line was installed, so this is actually a hit in our
        # install-immediately model; probe the merge path via eviction.)
        assert cache.stats.merged_misses == 0

    def test_unbounded_outstanding_misses(self):
        cache = small_cache(sets=64, assoc=2)
        ready = [cache.access(0x1000 * i, 0) for i in range(50)]
        assert all(r == 16 for r in ready)
        assert cache.stats.misses == 50

    def test_miss_to_inflight_evicted_line_merges(self):
        cache = small_cache(sets=4, assoc=2, latency=16)
        a, b, c = 0x000, 0x080, 0x100  # all set 0
        cache.access(a, 0)   # miss, fill at 16
        cache.access(b, 1)
        cache.access(c, 1)   # evicts a while its fill is outstanding
        ready = cache.access(a, 2)  # a's fill is still in flight (ready 16)
        assert ready == 16
        assert cache.stats.merged_misses == 1

    def test_expire_inflight_is_safe(self):
        cache = small_cache()
        cache.access(0x40, 0)
        cache.expire_inflight(100)
        assert cache.access(0x40, 101) == 101  # still resident after expiry

    def test_inflight_map_stays_bounded(self):
        """Housekeeping regression: ``access`` must expire old fills.

        ``expire_inflight`` used to never be called, so a long run's
        inverted-MSHR map grew one entry per missed line forever.  Every
        access now expires completed fills (amortized by the size
        guard); a streaming scan over many distinct lines must leave the
        map bounded by the guard threshold, not the line count.
        """
        cache = small_cache(sets=64, assoc=2)
        distinct_lines = 10_000
        for i in range(distinct_lines):
            # Strictly increasing cycles, far enough apart that every
            # fill from before the guard-triggering access has landed.
            cache.access(i * 0x20, i * 32)
        assert cache.stats.misses == distinct_lines
        assert len(cache._inflight) <= 4097

    def test_expiry_never_drops_live_fills(self):
        cache = small_cache(sets=4, assoc=2, latency=1_000_000)
        a, b, c = 0x000, 0x080, 0x100  # all set 0
        cache.access(a, 0)
        cache.access(b, 1)
        cache.access(c, 1)  # evicts a; its (live) fill must survive expiry
        cache._inflight[999_999] = 5  # a completed fill, ripe for expiry
        for _ in range(5000):
            cache._inflight[len(cache._inflight) + 10**6] = 10**9
        cache.access(0x500, 10)  # trips the size guard
        assert 999_999 not in cache._inflight
        assert cache.access(a, 20) == 1_000_000  # still merges
        assert cache.stats.merged_misses == 1


class TestProbe:
    def test_probe_does_not_fill(self):
        cache = small_cache()
        assert not cache.probe(0x500)
        assert cache.stats.accesses == 0
        cache.access(0x500, 0)
        assert cache.probe(0x500)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 0x3FF), min_size=1, max_size=200), st.integers(1, 4))
def test_property_matches_reference_lru_model(addresses, assoc):
    """The cache agrees with a brute-force LRU reference model."""
    sets = 4
    line = 32
    cache = Cache(
        CacheConfig(size_bytes=sets * assoc * line, associativity=assoc, line_bytes=line),
        16,
    )
    reference: list[list[int]] = [[] for _ in range(sets)]
    for t, addr in enumerate(addresses):
        lineno = addr // line
        idx = lineno % sets
        expected_hit = lineno in reference[idx]
        got = cache.access(addr, t)
        assert (got == t) == expected_hit
        if expected_hit:
            reference[idx].remove(lineno)
        reference[idx].append(lineno)
        if len(reference[idx]) > assoc:
            reference[idx].pop(0)
