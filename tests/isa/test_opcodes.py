"""Tests for opcodes and instruction classes."""

from repro.isa.opcodes import MOVE_OPCODES, InstrClass, Opcode


class TestInstrClass:
    def test_integer_classes(self):
        assert InstrClass.INT_MULTIPLY.is_integer
        assert InstrClass.INT_OTHER.is_integer
        assert not InstrClass.FP_OTHER.is_integer

    def test_fp_classes(self):
        assert InstrClass.FP_DIVIDE.is_fp
        assert InstrClass.FP_OTHER.is_fp
        assert not InstrClass.LOAD.is_fp

    def test_memory_classes(self):
        assert InstrClass.LOAD.is_memory
        assert InstrClass.STORE.is_memory
        assert not InstrClass.CONTROL.is_memory


class TestOpcodeClassification:
    def test_every_opcode_has_a_class(self):
        for op in Opcode:
            assert isinstance(op.iclass, InstrClass)

    def test_loads(self):
        for op in (Opcode.LDQ, Opcode.LDL, Opcode.LDT, Opcode.LDS):
            assert op.is_load
            assert op.is_memory
            assert not op.is_store

    def test_stores(self):
        for op in (Opcode.STQ, Opcode.STL, Opcode.STT, Opcode.STS):
            assert op.is_store
            assert op.is_memory
            assert not op.is_load

    def test_conditional_branches(self):
        for op in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.FBEQ, Opcode.FBNE):
            assert op.is_conditional_branch
            assert op.is_control
            assert not op.is_unconditional

    def test_unconditional_flow(self):
        for op in (Opcode.BR, Opcode.JSR, Opcode.RET, Opcode.JMP):
            assert op.is_unconditional
            assert op.is_control
            assert not op.is_conditional_branch

    def test_divides_are_fp_divide_class(self):
        assert Opcode.DIVS.iclass is InstrClass.FP_DIVIDE
        assert Opcode.DIVT.iclass is InstrClass.FP_DIVIDE

    def test_multiply_class(self):
        assert Opcode.MULQ.iclass is InstrClass.INT_MULTIPLY
        assert Opcode.UMULH.iclass is InstrClass.INT_MULTIPLY
        # FP multiply is an ordinary FP op, not the multiply class.
        assert Opcode.MULT.iclass is InstrClass.FP_OTHER

    def test_writes_fp(self):
        assert Opcode.ADDT.writes_fp
        assert Opcode.LDT.writes_fp
        assert Opcode.LDS.writes_fp
        assert not Opcode.LDQ.writes_fp
        assert not Opcode.ADDQ.writes_fp

    def test_mnemonics_unique(self):
        mnemonics = [op.mnemonic for op in Opcode]
        assert len(mnemonics) == len(set(mnemonics))

    def test_move_opcodes(self):
        assert MOVE_OPCODES["int"] is Opcode.BIS
        assert MOVE_OPCODES["fp"] is Opcode.CPYS
