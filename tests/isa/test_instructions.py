"""Tests for machine instructions."""

from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.registers import FP_ZERO, INT_ZERO, fp_reg, int_reg


def addq(dest, *srcs, **kw):
    return MachineInstruction(Opcode.ADDQ, dest=dest, srcs=tuple(srcs), **kw)


class TestEffectiveOperands:
    def test_plain_dest_and_srcs(self):
        instr = addq(int_reg(3), int_reg(1), int_reg(2))
        assert instr.effective_dest is int_reg(3)
        assert instr.effective_srcs == (int_reg(1), int_reg(2))

    def test_zero_dest_is_discarded(self):
        instr = addq(INT_ZERO, int_reg(1), int_reg(2))
        assert instr.effective_dest is None

    def test_zero_srcs_are_dropped(self):
        instr = addq(int_reg(3), INT_ZERO, int_reg(2))
        assert instr.effective_srcs == (int_reg(2),)

    def test_fp_zero_dropped(self):
        instr = MachineInstruction(Opcode.ADDT, dest=fp_reg(2), srcs=(FP_ZERO, fp_reg(1)))
        assert instr.effective_srcs == (fp_reg(1),)

    def test_named_registers_excludes_zero(self):
        instr = addq(INT_ZERO, INT_ZERO, int_reg(2))
        assert instr.named_registers() == (int_reg(2),)

    def test_named_registers_includes_dest(self):
        instr = addq(int_reg(4), int_reg(1))
        assert int_reg(4) in instr.named_registers()


class TestStructural:
    def test_iclass_delegates_to_opcode(self):
        assert addq(int_reg(1)).iclass is InstrClass.INT_OTHER

    def test_srcs_normalized_to_tuple(self):
        srcs = [int_reg(2)]  # deliberately a list, not a tuple
        instr = MachineInstruction(Opcode.ADDQ, dest=int_reg(1), srcs=srcs)
        assert isinstance(instr.srcs, tuple)

    def test_with_uid(self):
        instr = addq(int_reg(1), int_reg(2))
        renumbered = instr.with_uid(42)
        assert renumbered.uid == 42
        assert renumbered.opcode is instr.opcode
        assert renumbered.srcs == instr.srcs
        # uid is excluded from equality.
        assert renumbered == instr

    def test_store_has_no_dest(self):
        store = MachineInstruction(Opcode.STQ, srcs=(int_reg(1), int_reg(2)))
        assert store.effective_dest is None
        assert len(store.srcs) == 2


class TestFormatting:
    def test_alu_format(self):
        assert addq(int_reg(3), int_reg(1), int_reg(2)).format() == "addq r1, r2 -> r3"

    def test_immediate_format(self):
        instr = MachineInstruction(Opcode.LDA, dest=int_reg(4), imm=16)
        assert instr.format() == "lda #16 -> r4"

    def test_branch_format(self):
        instr = MachineInstruction(Opcode.BNE, srcs=(int_reg(2),), target="loop")
        assert instr.format() == "bne r2 @loop"

    def test_str_matches_format(self):
        instr = addq(int_reg(3), int_reg(1))
        assert str(instr) == instr.format()
