"""Tests for the architectural register namespace."""

import pytest

from repro.isa.registers import (
    GLOBAL_POINTER,
    INT_ZERO,
    FP_ZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    STACK_POINTER,
    Register,
    RegisterClass,
    all_registers,
    allocatable_registers,
    fp_reg,
    int_reg,
    parse_register,
    reg_from_uid,
)


class TestInterning:
    def test_int_registers_are_interned(self):
        assert int_reg(5) is int_reg(5)

    def test_fp_registers_are_interned(self):
        assert fp_reg(31) is fp_reg(31)

    def test_int_and_fp_distinct(self):
        assert int_reg(3) is not fp_reg(3)
        assert int_reg(3) != fp_reg(3)

    def test_reg_from_uid_round_trip(self):
        for reg in all_registers():
            assert reg_from_uid(reg.uid) is reg


class TestUids:
    def test_int_uids_dense_from_zero(self):
        assert [int_reg(i).uid for i in range(4)] == [0, 1, 2, 3]

    def test_fp_uids_offset_by_int_count(self):
        assert fp_reg(0).uid == NUM_INT_REGS
        assert fp_reg(31).uid == NUM_INT_REGS + 31

    def test_all_uids_unique(self):
        uids = [r.uid for r in all_registers()]
        assert len(uids) == len(set(uids)) == NUM_INT_REGS + NUM_FP_REGS


class TestNamesAndParsing:
    def test_names(self):
        assert int_reg(7).name == "r7"
        assert fp_reg(12).name == "f12"

    def test_parse_round_trip(self):
        for reg in all_registers():
            assert parse_register(reg.name) is reg

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_register("x5")
        with pytest.raises(ValueError):
            parse_register("")

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            parse_register("r32")


class TestSpecialRegisters:
    def test_zero_registers(self):
        assert INT_ZERO.is_zero
        assert FP_ZERO.is_zero
        assert not int_reg(0).is_zero

    def test_stack_pointer_is_r30(self):
        assert STACK_POINTER is int_reg(30)
        assert STACK_POINTER.is_stack_pointer
        assert not STACK_POINTER.is_global_pointer

    def test_global_pointer_is_r29(self):
        assert GLOBAL_POINTER is int_reg(29)
        assert GLOBAL_POINTER.is_global_pointer

    def test_fp_register_is_never_stack_pointer(self):
        assert not fp_reg(30).is_stack_pointer
        assert not fp_reg(29).is_global_pointer


class TestAllocatablePools:
    def test_int_pool_excludes_reserved(self):
        pool = allocatable_registers(RegisterClass.INT)
        assert STACK_POINTER not in pool
        assert GLOBAL_POINTER not in pool
        assert INT_ZERO not in pool
        assert len(pool) == NUM_INT_REGS - 3

    def test_fp_pool_excludes_only_zero(self):
        pool = allocatable_registers(RegisterClass.FP)
        assert FP_ZERO not in pool
        assert len(pool) == NUM_FP_REGS - 1


class TestOrderingAndHashing:
    def test_ordering_by_uid(self):
        assert int_reg(1) < int_reg(2) < fp_reg(0)

    def test_usable_as_dict_keys(self):
        d = {int_reg(4): "a", fp_reg(4): "b"}
        assert d[int_reg(4)] == "a"
        assert d[fp_reg(4)] == "b"

    def test_construction_rejects_bad_index(self):
        with pytest.raises(ValueError):
            Register(RegisterClass.INT, 32)
        with pytest.raises(ValueError):
            Register(RegisterClass.FP, -1)
