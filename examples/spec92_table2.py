#!/usr/bin/env python
"""Regenerate the paper's Table 2 over the SPEC92 stand-ins.

Runs the full Section 4 methodology — native vs rescheduled binaries on
the single- and dual-cluster machines — and prints the speedup table next
to the paper's published values.

Run:  python examples/spec92_table2.py [trace_length] [benchmark ...]

The default trace length (30k) finishes in a couple of minutes; the full
experiment default (120k, via repro.experiments.table2.main) takes longer
but is less noisy.
"""

import sys

from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import format_table2, run_table2
from repro.workloads.spec92 import SPEC92


def main() -> None:
    args = sys.argv[1:]
    trace_length = int(args[0]) if args else 30_000
    benchmarks = args[1:] or sorted(SPEC92)
    print(
        f"Running Table 2 on {', '.join(benchmarks)} "
        f"({trace_length} dynamic instructions each; 3 simulations per benchmark)"
    )
    result = run_table2(benchmarks, EvaluationOptions(trace_length=trace_length))
    print()
    print(format_table2(result, detailed=True))
    print()
    print("Reading the table: ratios are 100 - 100*(C_dual/C_single);")
    print("negative = the dual-cluster machine needs more cycles. The paper's")
    print("claim is about *shape*: the local scheduler recovers most of the")
    print("unscheduled slowdown (except on ora).")


if __name__ == "__main__":
    main()
