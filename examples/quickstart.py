#!/usr/bin/env python
"""Quickstart: compile a small program, trace it, and race the machines.

Builds a little hash-loop kernel in the IL, compiles it three ways
(native, and rescheduled with the local scheduler), and runs it on the
paper's two machines:

* the 8-way single-cluster processor (the baseline),
* the 2x4-way dual-cluster multicluster processor, with and without the
  local scheduler.

Run:  python examples/quickstart.py
"""

from repro.compiler.pipeline import compile_program
from repro.core import LocalScheduler, RegisterAssignment
from repro.experiments.harness import speedup_percent
from repro.ir import ProgramBuilder
from repro.isa import Opcode
from repro.uarch import dual_cluster_config, simulate, single_cluster_config
from repro.workloads import BernoulliBranch, LoopBranch, RandomStream, TraceGenerator


def build_program():
    """A toy hash-probe loop: load, mix, compare, store on collision."""
    b = ProgramBuilder("quickstart")
    sp = b.stack_pointer_value()
    b.block("init", count=1)
    b.op(Opcode.LDA, "key", imm=0x1234)
    b.op(Opcode.LDA, "count", imm=0)

    b.block("probe", count=100)
    b.load("entry", sp, stream="htab")
    b.op(Opcode.XOR, "hash", "key", "entry")
    b.op(Opcode.SLL, "hash", "hash", "key")
    b.op(Opcode.CMPEQ, "match", "hash", "entry")
    b.op(Opcode.ADDQ, "count", "count", "match")
    b.branch(Opcode.BEQ, "match", "insert", model="collision")

    b.block("insert", count=40)
    b.store("hash", sp, stream="htab")

    b.block("next", count=100)
    b.op(Opcode.ADDQ, "key", "key", "count")
    b.branch(Opcode.BNE, "key", "probe", model="trip")

    b.block("done", count=1)
    b.store("count", sp)
    b.ret()

    prog = b.build()
    prog.cfg.block("probe").set_successors(["insert", "next"], [0.4, 0.6])
    prog.cfg.block("next").set_successors(["probe", "done"], [0.95, 0.05])
    return prog


def main() -> None:
    program = build_program()
    streams = {"htab": RandomStream(base=0x100000, size=1 << 18)}
    behaviors = {"collision": BernoulliBranch(0.4), "trip": LoopBranch(20)}

    native = compile_program(program, RegisterAssignment.single_cluster())
    local = compile_program(
        program, RegisterAssignment.even_odd_dual(), LocalScheduler()
    )

    print("native machine code:")
    print(native.machine.format())
    print()

    trace_native = TraceGenerator(native.machine, streams, behaviors, seed=42).generate(30_000)
    trace_local = TraceGenerator(local.machine, streams, behaviors, seed=42).generate(30_000)

    single = simulate(trace_native, single_cluster_config())
    dual_none = simulate(trace_native, dual_cluster_config())
    dual_local = simulate(trace_local, dual_cluster_config())

    print(f"{'machine':<28} {'cycles':>9} {'IPC':>6} {'dual%':>6} {'vs single':>10}")
    for label, sim in (
        ("single 8-way (native)", single),
        ("dual 2x4 (native, 'none')", dual_none),
        ("dual 2x4 (local scheduler)", dual_local),
    ):
        pct = speedup_percent(single.cycles, sim.cycles)
        print(
            f"{label:<28} {sim.cycles:>9} {sim.stats.ipc:>6.2f} "
            f"{100 * sim.stats.dual_fraction:>5.1f}% {pct:>+9.1f}%"
        )
    print()
    print("(negative = the dual-cluster machine needs more cycles; Section 5:")
    print(" the cycle-time advantage of the narrower clusters pays that back")
    print(" below 0.35um — see examples/cycle_time_study.py)")


if __name__ == "__main__":
    main()
