#!/usr/bin/env python
"""The paper's Figure 6 worked example, end to end.

Prints the control-flow graph, the local scheduler's block-traversal and
live-range-assignment orders (which match the paper exactly), the final
cluster partition, and the resulting dual-cluster machine code.

Run:  python examples/figure6_partitioning.py
"""

from repro.compiler.pipeline import CompilerOptions, compile_program
from repro.core import LocalScheduler, RegisterAssignment, Scenario, plan_for_instruction
from repro.experiments.figure6 import (
    PAPER_ASSIGNMENT_ORDER,
    PAPER_BLOCK_ORDER,
    build_figure6_program,
    run_figure6,
)


def main() -> None:
    program = build_figure6_program()
    print("Figure 6 control-flow graph:")
    print(program.format())
    print()

    result = run_figure6()
    print(f"block traversal order : {result.block_order}")
    print(f"          paper says  : {PAPER_BLOCK_ORDER}")
    print(f"assignment order      : {result.assignment_order}")
    print(f"          paper says  : {PAPER_ASSIGNMENT_ORDER}")
    print(f"matches paper         : {result.matches_paper}")
    print(f"cluster partition     : {result.partition}")
    print()

    assignment = RegisterAssignment.even_odd_dual()
    compiled = compile_program(
        build_figure6_program(),
        assignment,
        LocalScheduler(),
        CompilerOptions(optimize=False, profile="keep"),
    )
    print("machine code after partition-aware register allocation")
    print("(even registers -> cluster 0, odd -> cluster 1):")
    print(compiled.machine.format())
    print()

    print("per-instruction distribution:")
    for instr, _meta in compiled.machine.all_instructions():
        plan = plan_for_instruction(instr, assignment)
        where = (
            f"dual (master c{plan.master}, {plan.scenario.name})"
            if plan.scenario is not Scenario.SINGLE
            else f"single -> cluster {plan.master}"
        )
        print(f"  {instr.format():<28} {where}")


if __name__ == "__main__":
    main()
