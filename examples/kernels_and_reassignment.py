#!/usr/bin/env python
"""Hand-written kernels and the dynamic-reassignment extension.

Part 1 races four classic kernels (daxpy, dot product, string hash,
pointer chasing) across the machines, showing how ILP shape decides the
clustering penalty — the mechanism behind the ordering of the paper's
Table 2.

Part 2 demonstrates the Section 6 dynamic register reassignment: a
two-phase program whose phases favour different register-to-cluster maps
beats both static maps by switching at the phase boundary.

Run:  python examples/kernels_and_reassignment.py
"""

from repro.experiments.harness import EvaluationOptions, evaluate_workload
from repro.experiments.reassignment import (
    format_reassignment_result,
    run_reassignment_demo,
)
from repro.workloads.kernels import KERNELS


def main() -> None:
    print("Part 1: kernels across the machines (10k-instruction traces)")
    print("-" * 68)
    print(f"{'kernel':<10} {'1-clu IPC':>9} {'none %':>8} {'local %':>8} {'dual% n->l':>12}")
    for name in sorted(KERNELS):
        workload = KERNELS[name]()
        ev = evaluate_workload(workload, EvaluationOptions(trace_length=10_000))
        print(
            f"{name:<10} {ev.single.stats.ipc:>9.2f} {ev.pct_none:>+8.1f} "
            f"{ev.pct_local:>+8.1f} "
            f"{100 * ev.dual_none.stats.dual_fraction:>5.1f}->"
            f"{100 * ev.dual_local.stats.dual_fraction:<5.1f}"
        )
    print()
    print("Reading: high-ILP streaming (daxpy) pays the most for clustering;")
    print("serial chains (dot, strhash) and memory-bound walks barely notice.")
    print()

    print("Part 2: dynamic register reassignment (Section 6)")
    print("-" * 68)
    print(format_reassignment_result(run_reassignment_demo()))


if __name__ == "__main__":
    main()
