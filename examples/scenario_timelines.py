#!/usr/bin/env python
"""The five execution scenarios of Section 2.1 (Figures 2-5), live.

For each scenario the script builds the minimal program, runs it on the
dual-cluster machine with event logging, and prints the master/slave
timeline — the reproduction of the paper's timing figures.

Run:  python examples/scenario_timelines.py
"""

from repro.experiments.scenarios import format_timeline, run_all_scenarios


def main() -> None:
    print("Dual-execution scenarios (Section 2.1; Figures 2-5)")
    print("=" * 60)
    for timeline in run_all_scenarios():
        print()
        print(format_timeline(timeline))
    print()
    print("Protocol summary (as in the paper):")
    print(" - scenario 2: slave issues first, master one cycle later")
    print(" - scenario 3: master first, slave receives the result")
    print(" - scenario 4: like 3, but both register files are written")
    print(" - scenario 5: slave issues twice (operand phase, then result)")


if __name__ == "__main__":
    main()
