#!/usr/bin/env python
"""Define your own synthetic benchmark and evaluate it.

Shows the workload-specification API: instruction mix, loop geometry,
branch behaviour, and memory streams — then runs the full evaluation
(native/local x single/dual) and an ablation over the local scheduler's
imbalance threshold.

Run:  python examples/custom_workload.py
"""

from repro.core import LocalScheduler
from repro.experiments.harness import EvaluationOptions, evaluate_workload
from repro.workloads import (
    ArraySpec,
    LoopSpec,
    WorkloadSpec,
    generate_workload,
)


def build_spec() -> WorkloadSpec:
    """A made-up 'stencil' benchmark: FP sweeps with an integer control
    loop and a data-dependent branch."""
    return WorkloadSpec(
        name="stencil",
        seed=2024,
        mix={
            "int_alu": 0.2,
            "int_mul": 0.01,
            "fp_alu": 0.4,
            "fp_div": 0.01,
            "load": 0.25,
            "store": 0.13,
        },
        arrays=[
            ArraySpec("grid", kind="strided", size=1 << 21, stride=8, fp=True),
            ArraySpec("next", kind="strided", size=1 << 21, stride=8, fp=True),
            ArraySpec("params", kind="stack", size=1024, fp=True),
        ],
        loops=[
            LoopSpec(
                body_blocks=2,
                block_size=14,
                trip_count=64,
                arrays=("grid", "next", "params"),
                diamond_prob=0.3,
                diamond_taken_prob=0.85,
            ),
            LoopSpec(
                body_blocks=1,
                block_size=10,
                trip_count=32,
                arrays=("next",),
            ),
        ],
        chain_bias=0.35,
        live_window=12,
        accumulators=2,
        accumulate_prob=0.15,
    )


def main() -> None:
    workload = generate_workload(build_spec())
    print(
        f"generated '{workload.name}': {workload.program.instruction_count()} static "
        f"instructions, {len(workload.program.cfg)} basic blocks, "
        f"{len(workload.streams)} memory streams"
    )

    evaluation = evaluate_workload(workload, EvaluationOptions(trace_length=20_000))
    print()
    print(f"single-cluster cycles : {evaluation.single.cycles}")
    print(f"dual, native ('none') : {evaluation.dual_none.cycles}  ({evaluation.pct_none:+.1f}%)")
    print(f"dual, local scheduler : {evaluation.dual_local.cycles}  ({evaluation.pct_local:+.1f}%)")
    print(
        f"dual-distribution     : none {100 * evaluation.dual_none.stats.dual_fraction:.1f}% "
        f"-> local {100 * evaluation.dual_local.stats.dual_fraction:.1f}%"
    )
    print()

    print("imbalance-threshold sweep (the Section 3.5 compile-time constant):")
    for threshold in (0, 2, 8):
        ev = evaluate_workload(
            workload,
            EvaluationOptions(
                trace_length=20_000,
                partitioner=LocalScheduler(imbalance_threshold=threshold),
            ),
        )
        print(
            f"  threshold={threshold:<3} local={ev.pct_local:+6.1f}%  "
            f"dual%={100 * ev.dual_local.stats.dual_fraction:.1f}"
        )


if __name__ == "__main__":
    main()
