#!/usr/bin/env python
"""The Section 4.2 / Section 5 cycle-time study.

Combines simulated cycle counts with the calibrated Palacharla-style delay
model to answer the paper's closing question: does the clock-period
advantage of 4-wide clusters pay for the cycle-count cost of clustering?

Run:  python examples/cycle_time_study.py [trace_length]
"""

import sys

from repro.experiments.cycle_time import (
    format_cycle_time_analysis,
    run_cycle_time_analysis,
)
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import run_table2
from repro.timing.analysis import format_cycle_time_report
from repro.timing.palacharla import MachineShape, TECHNOLOGIES, delay_breakdown


def main() -> None:
    trace_length = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    print("1. The delay model (calibrated to Palacharla et al.'s anchors)")
    print("-" * 64)
    print(format_cycle_time_report())
    print()

    print("2. Where the cycle time goes (per-structure breakdown, ps)")
    print("-" * 64)
    for name in ("0.35um", "0.18um"):
        tech = TECHNOLOGIES[name]
        for shape, label in (
            (MachineShape.four_issue(), "4-issue"),
            (MachineShape.eight_issue(), "8-issue"),
        ):
            b = delay_breakdown(shape, tech)
            print(
                f"  {name} {label}: rename {b.rename:6.0f}  window {b.window:6.0f}  "
                f"regfile {b.regfile:6.0f}  bypass {b.bypass:6.0f}  "
                f"-> clock {b.cycle_time:6.0f} ({b.critical_structure})"
            )
    print()

    print(f"3. Net run time on the SPEC92 stand-ins ({trace_length}-instruction traces)")
    print("-" * 64)
    table2 = run_table2(options=EvaluationOptions(trace_length=trace_length))
    report = run_cycle_time_analysis(table2)
    print(format_cycle_time_analysis(report))


if __name__ == "__main__":
    main()
