"""Fitness evaluation for design points: cycle count x cycle time.

A design point is scored against the paper's own yardstick (Section 5):
IPC alone rewards the monolithic machine, so every trial reports both

* ``rel_cycles`` — the geometric-mean ratio of the point's simulated
  cycle count to the 1x8-way baseline's, over the selected workloads
  (< 1.0 means the point retires the work in fewer cycles);
* ``cycle_time_ps`` — the Palacharla/Jouppi/Smith delay-model cycle
  time of the point's *slowest* cluster (the clock is set by the worst
  window/regfile/bypass on the die);

and the scalar ``speedup`` — geometric-mean wall-clock speedup over the
baseline, ``(T_baseline / T_point) / rel_cycles`` — which is what the
evolutionary driver maximizes.  The Pareto frontier
(:mod:`repro.gym.pareto`) minimizes the (rel_cycles, cycle_time_ps)
pair, so both the IPC-greedy and the clock-greedy corners survive.

Simulation rides the Table 2 harness
(:func:`repro.experiments.harness.evaluate_workload_part`): by default
each point runs the **native binary** (part ``dual_none`` — the
cluster-oblivious compile), so every design point in a search shares
one compile and one trace per workload through the artifact cache;
``part="dual_local"`` instead reschedules the binary with the local
scheduler generalized to the point's cluster count.  Everything is
seeded and deterministic — the same settings and point produce the same
:class:`TrialResult` bit-for-bit, which is what makes search journals
resumable and trajectories byte-identical across reruns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.core.partition.local import LocalScheduler
from repro.errors import ConfigError
from repro.experiments.harness import EvaluationOptions, evaluate_workload_part
from repro.gym.space import DesignPoint, PAPER_SINGLE_POINT
from repro.perf.cache import ArtifactCache
from repro.perf.fingerprint import fingerprint
from repro.timing.palacharla import TECHNOLOGIES, MachineShape, cycle_time
from repro.uarch.config import ProcessorConfig, single_cluster_config
from repro.workloads.spec92 import SPEC92, build_benchmark

#: The six SPEC92 stand-ins, in registry order.
ALL_BENCHMARKS: tuple[str, ...] = tuple(SPEC92)


@dataclass(frozen=True)
class GymSettings:
    """Everything (besides the point itself) that determines a trial's value.

    Frozen and picklable: settings travel into worker processes and are
    folded into journal fingerprints, so a resumed search only reuses
    trials evaluated under identical settings.
    """

    benchmarks: tuple[str, ...] = ALL_BENCHMARKS
    #: Instructions simulated per workload.  Searches default far below
    #: the Table 2 length — fitness ranks points, it does not publish
    #: tables — and the successive-halving driver raises it per rung.
    trace_length: int = 12_000
    trace_seed: int = 7
    #: Process generation for the cycle-time model.
    tech: str = "0.35um"
    #: ``dual_none`` simulates the shared native binary; ``dual_local``
    #: reschedules per point with the N-cluster local scheduler.
    part: str = "dual_none"
    #: Simulation kernel override (``None`` = reference engine).
    engine: Optional[str] = None
    self_check: bool = False
    cycle_budget: int = 0

    def __post_init__(self) -> None:
        if self.tech not in TECHNOLOGIES:
            raise ConfigError(
                f"unknown technology {self.tech!r}; choose from "
                f"{sorted(TECHNOLOGIES)}",
                tech=self.tech,
            )
        if self.part not in ("dual_none", "dual_local"):
            raise ConfigError(
                f"gym part must be 'dual_none' or 'dual_local', got {self.part!r}",
                part=self.part,
            )
        if not self.benchmarks:
            raise ConfigError("gym settings name no benchmarks")
        for name in self.benchmarks:
            if name not in SPEC92:
                raise ConfigError(
                    f"unknown benchmark {name!r}; choose from {sorted(SPEC92)}",
                    benchmark=name,
                )

    @property
    def settings_fingerprint(self) -> str:
        """Identity for journal rows (value-determining fields only)."""
        return fingerprint(
            (
                "gym-settings/v1",
                self.benchmarks,
                self.trace_length,
                self.trace_seed,
                self.tech,
                self.part,
                self.cycle_budget,
            )
        )

    def evaluation_options(self) -> EvaluationOptions:
        return EvaluationOptions(
            trace_length=self.trace_length,
            trace_seed=self.trace_seed,
            engine=self.engine,
            self_check=self.self_check,
            cycle_budget=self.cycle_budget,
        )


def config_cycle_time(config: ProcessorConfig, tech: str) -> float:
    """Cycle time (ps) of a machine: its slowest cluster sets the clock."""
    technology = TECHNOLOGIES[tech]
    return max(
        cycle_time(
            MachineShape(
                issue_width=cluster.issue.total,
                window_entries=cluster.dispatch_queue_entries,
                physical_registers=max(
                    cluster.int_physical_registers, cluster.fp_physical_registers
                ),
            ),
            technology,
        )
        for cluster in config.clusters
    )


def geomean(values) -> float:
    values = list(values)
    if not values:
        raise ConfigError("geometric mean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class TrialResult:
    """One evaluated design point (JSON-native; journal/trajectory payload)."""

    point: DesignPoint
    #: benchmark -> simulated cycles on this point's machine.
    cycles: Mapping[str, int]
    #: geomean(point cycles / baseline cycles); < 1.0 beats the 1x8 IPC.
    rel_cycles: float
    #: Palacharla cycle time of the slowest cluster (ps).
    cycle_time_ps: float
    #: geomean wall-clock speedup over the 1x8 baseline (> 1.0 is faster).
    speedup: float

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.point.as_dict())

    def as_dict(self) -> dict:
        return {
            "point": self.point.as_dict(),
            "slug": self.point.slug,
            "cycles": dict(sorted(self.cycles.items())),
            "rel_cycles": round(self.rel_cycles, 9),
            "cycle_time_ps": round(self.cycle_time_ps, 6),
            "speedup": round(self.speedup, 9),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TrialResult":
        return cls(
            point=DesignPoint.from_dict(payload["point"]),
            cycles={k: int(v) for k, v in payload["cycles"].items()},
            rel_cycles=float(payload["rel_cycles"]),
            cycle_time_ps=float(payload["cycle_time_ps"]),
            speedup=float(payload["speedup"]),
        )


@dataclass(frozen=True)
class Baseline:
    """The 1x8-way yardstick every trial is normalized against."""

    cycles: Mapping[str, int]
    cycle_time_ps: float

    def as_dict(self) -> dict:
        return {
            "cycles": dict(sorted(self.cycles.items())),
            "cycle_time_ps": round(self.cycle_time_ps, 6),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Baseline":
        return cls(
            cycles={k: int(v) for k, v in payload["cycles"].items()},
            cycle_time_ps=float(payload["cycle_time_ps"]),
        )


def compute_baseline(
    settings: GymSettings, cache: Optional[ArtifactCache] = None
) -> Baseline:
    """Simulate the paper's 1x8-way machine on every selected workload."""
    cache = cache if cache is not None else ArtifactCache()
    options = settings.evaluation_options()
    cycles: dict[str, int] = {}
    for name in settings.benchmarks:
        outcome = evaluate_workload_part(build_benchmark(name), "single", options, cache)
        cycles[name] = outcome.sim.cycles
    baseline = Baseline(
        cycles=cycles,
        cycle_time_ps=config_cycle_time(single_cluster_config(), settings.tech),
    )
    # Canonicalize through the payload encoding: a baseline replayed from
    # a journal or shipped to a worker is rounded, so rounding here too
    # keeps every path (serial, --jobs, --resume) numerically identical.
    return Baseline.from_dict(baseline.as_dict())


def evaluate_point(
    point: DesignPoint,
    settings: GymSettings,
    baseline: Baseline,
    cache: Optional[ArtifactCache] = None,
) -> TrialResult:
    """Score one feasible design point against the baseline."""
    cache = cache if cache is not None else ArtifactCache()
    config = point.to_config()
    assignment = point.assignment()
    part = settings.part
    if point.num_clusters == 1:
        # Nothing to partition on a monolithic point; the native binary
        # is the rescheduled binary.
        part = "dual_none"
    options = replace(
        settings.evaluation_options(),
        dual_config=config,
        dual_assignment=assignment,
        partitioner=(
            LocalScheduler(num_clusters=point.num_clusters)
            if part == "dual_local"
            else None
        ),
    )
    cycles: dict[str, int] = {}
    for name in settings.benchmarks:
        outcome = evaluate_workload_part(build_benchmark(name), part, options, cache)
        cycles[name] = outcome.sim.cycles
    rel = geomean(cycles[b] / baseline.cycles[b] for b in settings.benchmarks)
    time_ps = config_cycle_time(config, settings.tech)
    speedup = (baseline.cycle_time_ps / time_ps) / rel
    result = TrialResult(
        point=point,
        cycles=cycles,
        rel_cycles=rel,
        cycle_time_ps=time_ps,
        speedup=speedup,
    )
    # Same canonicalization as compute_baseline: fresh trials carry the
    # exact floats a journal replay or worker round-trip would.
    return TrialResult.from_dict(result.as_dict())


def trial_key(point: DesignPoint, settings: GymSettings) -> str:
    """Journal key for one (point, rung) evaluation."""
    return f"gym:{point.slug}:L{settings.trace_length}"


def trial_fingerprint(point: DesignPoint, settings: GymSettings) -> str:
    """Journal fingerprint: the trial's full value-determining identity."""
    return fingerprint(
        ("gym-trial/v1", settings.settings_fingerprint, point.as_dict())
    )


def _trial_task(item: tuple[dict, GymSettings, dict]) -> dict:
    """Module-level unit of work for :func:`repro.perf.parallel.parallel_map`.

    Ships JSON-native payloads both ways so worker results are exactly
    what the journal stores (the parallel and serial paths cannot drift).
    """
    from repro.perf.executor import _worker_cache

    point_payload, settings, baseline_payload = item
    result = evaluate_point(
        DesignPoint.from_dict(point_payload),
        settings,
        Baseline.from_dict(baseline_payload),
        cache=_worker_cache(),
    )
    return result.as_dict()


#: The paper's single-cluster machine as a gym baseline sanity check:
#: evaluating PAPER_SINGLE_POINT must reproduce the baseline exactly
#: (rel_cycles == speedup == 1.0); asserted in tests/gym/test_fitness.py.
BASELINE_POINT = PAPER_SINGLE_POINT
