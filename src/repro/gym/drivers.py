"""Search drivers over the design space.

Four drivers, one contract:

* ``random`` — seeded uniform sampling of the feasible region;
* ``grid`` — the symmetric lattice of :meth:`DesignSpace.grid`;
* ``evolutionary`` — (mu + lambda)-style: elitism, tournament selection,
  crossover, mutation, all drawn from one seeded ``random.Random``;
* ``halving`` — successive halving: a large seeded population triaged on
  short traces, the top ``1/eta`` promoted to each longer-trace rung,
  so simulation budget concentrates on promising machines.

The contract (DESIGN.md Section 16): same spec + same settings ⇒ the
same trials in the same order with the same values, hence byte-identical
trajectory and frontier files.  Every trial is journaled
(:mod:`repro.robustness.journal`) before the search moves on, keyed by
``(point slug, rung trace length)`` and fingerprinted over the point and
every value-determining setting — a search killed mid-run and resumed
with ``--resume`` replays completed trials from the journal and lands on
the *same bytes* as an uninterrupted run.  Fan-out rides
:func:`repro.perf.parallel.parallel_map`; workers return the same
JSON-native payloads the journal stores, so the parallel path cannot
drift from the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import random

from repro.errors import ConfigError
from repro.gym.fitness import (
    Baseline,
    GymSettings,
    TrialResult,
    _trial_task,
    compute_baseline,
    evaluate_point,
    trial_fingerprint,
    trial_key,
)
from repro.gym.pareto import pareto_frontier
from repro.gym.space import DesignPoint, DesignSpace
from repro.obs.metrics import MetricsRegistry
from repro.perf.cache import ArtifactCache
from repro.perf.parallel import parallel_map
from repro.robustness.journal import RunJournal

DRIVERS = ("random", "grid", "evolutionary", "halving")

#: Shortest trace a successive-halving rung may use.
MIN_RUNG_TRACE = 2_000


@dataclass(frozen=True)
class SearchSpec:
    """What to search and how hard."""

    driver: str = "random"
    seed: int = 42
    #: Total samples (random) / initial population (halving).
    budget: int = 16
    #: Evolutionary population per generation.
    population: int = 8
    generations: int = 4
    #: Parents copied unchanged into the next generation.
    elite: int = 2
    #: Tournament size for parent selection.
    tournament: int = 3
    #: Offspring mutation probability (crossover children are always
    #: produced; each is additionally mutated with this probability).
    mutation_rate: float = 0.5
    #: Successive-halving promotion factor (top ``1/eta`` survive a rung).
    eta: int = 3

    def __post_init__(self) -> None:
        if self.driver not in DRIVERS:
            raise ConfigError(
                f"unknown search driver {self.driver!r}; choose from {DRIVERS}",
                driver=self.driver,
            )
        for name in ("budget", "population", "generations", "tournament"):
            if getattr(self, name) < 1:
                raise ConfigError(
                    f"search {name} must be >= 1", field=name, value=getattr(self, name)
                )
        if self.elite < 0 or self.elite > self.population:
            raise ConfigError(
                "elite must be within [0, population]",
                elite=self.elite,
                population=self.population,
            )
        if self.eta < 2:
            raise ConfigError("halving eta must be >= 2", eta=self.eta)
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigError(
                "mutation_rate must be in [0, 1]", mutation_rate=self.mutation_rate
            )


@dataclass
class SearchResult:
    """Everything a finished search reports."""

    spec: SearchSpec
    settings: GymSettings
    baseline: Baseline
    #: ``(index, generation, trial)`` in evaluation order (all rungs).
    trials: list[tuple[int, int, TrialResult]]
    #: Non-dominated set over full-length trials only.
    frontier: list[TrialResult]
    #: Per-generation fitness summary (obs series; JSON-native).
    fitness_series: list[dict]
    #: Trials replayed from the journal instead of re-simulated.
    journal_hits: int = 0

    @property
    def best(self) -> Optional[TrialResult]:
        """Highest wall-clock speedup (always on the frontier: the
        speedup maximizer minimizes the rel_cycles x cycle_time product,
        which no dominated point can)."""
        return max(
            self.frontier,
            key=lambda t: (t.speedup, t.point.slug),
            default=None,
        )


class _Evaluator:
    """Journal-aware, optionally parallel batch evaluator.

    One instance per search; it owns the trial counter so trajectory
    indices are global across generations and rungs.
    """

    def __init__(
        self,
        settings: GymSettings,
        cache: Optional[ArtifactCache],
        journal: Optional[RunJournal],
        jobs: int = 1,
        metrics: Optional[MetricsRegistry] = None,
        spans=None,
    ) -> None:
        self.settings = settings
        self.cache = cache if cache is not None else ArtifactCache()
        self.journal = journal
        self.jobs = jobs
        self.metrics = metrics or MetricsRegistry()
        self.spans = spans
        self.trials: list[tuple[int, int, TrialResult]] = []
        self.journal_hits = 0
        self._index = 0
        self._baselines: dict[int, Baseline] = {}

    def baseline_for(self, settings: GymSettings) -> Baseline:
        """The 1x8 yardstick at this rung's trace length (journaled).

        Halving rungs simulate shorter traces, so each rung normalizes
        against a baseline of the *same* length — otherwise short-rung
        ``rel_cycles`` would be meaningless noise instead of a ranking.
        """
        baseline = self._baselines.get(settings.trace_length)
        if baseline is None:
            baseline = _baseline_journaled(settings, self.cache, self.journal)
            self._baselines[settings.trace_length] = baseline
        return baseline

    def evaluate(
        self,
        points: list[DesignPoint],
        generation: int,
        settings: Optional[GymSettings] = None,
    ) -> list[TrialResult]:
        """Evaluate a batch in order; journal hits skip simulation."""
        settings = settings or self.settings
        baseline = self.baseline_for(settings)
        results: list[Optional[TrialResult]] = [None] * len(points)
        missing: list[int] = []
        for i, point in enumerate(points):
            entry = None
            if self.journal is not None:
                entry = self.journal.completed(
                    trial_key(point, settings), trial_fingerprint(point, settings)
                )
            if entry is not None and entry.payload is not None:
                results[i] = TrialResult.from_dict(entry.payload)
                self.journal_hits += 1
            else:
                missing.append(i)

        if missing:
            items = [
                (points[i].as_dict(), settings, baseline.as_dict())
                for i in missing
            ]
            if self.jobs > 1:
                payloads = parallel_map(
                    _trial_task, items, jobs=self.jobs, cache_dir=self.cache.cache_dir
                )
                fresh = [TrialResult.from_dict(p) for p in payloads]
            else:
                fresh = [
                    evaluate_point(points[i], settings, baseline, self.cache)
                    for i in missing
                ]
            for i, trial in zip(missing, fresh):
                results[i] = trial
                if self.journal is not None:
                    self.journal.record_completed(
                        trial_key(points[i], settings),
                        trial_fingerprint(points[i], settings),
                        payload=trial.as_dict(),
                    )

        out: list[TrialResult] = []
        for trial in results:
            assert trial is not None
            self.trials.append((self._index, generation, trial))
            self._index += 1
            out.append(trial)
        self._record_generation(generation, out)
        self._emit_spans(generation, settings, out)
        return out

    def _emit_spans(
        self, generation: int, settings: GymSettings, trials: list[TrialResult]
    ) -> None:
        """Journal this batch's deterministic spans (DESIGN.md Section 17).

        One ``gym_rung`` span per generation/rung plus a ``gym_trial``
        child per design point, all measured in simulated cycles — a
        content-derived virtual time that replays identically from the
        journal, so a ``--resume``\\ d search emits the same span set as
        an uninterrupted one.
        """
        if self.spans is None or not trials:
            return
        from repro.obs.spans import Span, derive_span_id

        trace_id = self.spans.trace_id
        rung_name = f"gen-{generation}"
        costs = [sum(int(c) for c in t.cycles.values()) for t in trials]
        rung_id = derive_span_id(
            trace_id, "gym_rung", rung_name, settings.trace_length, sum(costs)
        )
        spans = [
            Span(
                trace_id=trace_id,
                span_id=rung_id,
                parent_id=None,
                kind="gym_rung",
                name=rung_name,
                start_u=0,
                end_u=sum(costs),
                attrs={
                    "generation": generation,
                    "trace_length": settings.trace_length,
                    "trials": len(trials),
                },
            )
        ]
        for trial, cost in zip(trials, costs):
            spans.append(
                Span(
                    trace_id=trace_id,
                    span_id=derive_span_id(
                        trace_id,
                        "gym_trial",
                        trial.point.slug,
                        settings.trace_length,
                        cost,
                    ),
                    parent_id=rung_id,
                    kind="gym_trial",
                    name=trial.point.slug,
                    start_u=0,
                    end_u=cost,
                    attrs={
                        "generation": generation,
                        "trace_length": settings.trace_length,
                    },
                )
            )
        self.spans.write_all(spans)

    def _record_generation(self, generation: int, trials: list[TrialResult]) -> None:
        if not trials:
            return
        speedups = [t.speedup for t in trials]
        best = max(speedups)
        mean = sum(speedups) / len(speedups)
        self.metrics.gauge(
            "gym_generation_best_speedup",
            "Best wall-clock speedup in a search generation",
            generation=str(generation),
        ).set(best)
        self.metrics.gauge(
            "gym_generation_mean_speedup",
            "Mean wall-clock speedup in a search generation",
            generation=str(generation),
        ).set(mean)
        self.metrics.counter(
            "gym_trials_total", "Design points evaluated by the search"
        ).inc(len(trials))


def _fitness_entry(generation: int, trials: list[TrialResult]) -> dict:
    speedups = sorted((t.speedup for t in trials), reverse=True)
    return {
        "generation": generation,
        "trials": len(trials),
        "best_speedup": round(speedups[0], 9),
        "mean_speedup": round(sum(speedups) / len(speedups), 9),
    }


def _rank_key(trial: TrialResult) -> tuple:
    """Deterministic fitness order: speedup desc, slug as tiebreak."""
    return (-trial.speedup, trial.point.slug)


# ------------------------------------------------------------------ drivers
def _run_random(
    spec: SearchSpec, space: DesignSpace, evaluator: _Evaluator
) -> list[dict]:
    rng = random.Random(spec.seed)
    points = [space.sample(rng) for _ in range(spec.budget)]
    trials = evaluator.evaluate(points, generation=0)
    return [_fitness_entry(0, trials)]


def _run_grid(
    spec: SearchSpec, space: DesignSpace, evaluator: _Evaluator
) -> list[dict]:
    points = list(space.grid())
    if not points:
        raise ConfigError("design-space grid is empty", space=repr(space))
    trials = evaluator.evaluate(points, generation=0)
    return [_fitness_entry(0, trials)]


def _run_evolutionary(
    spec: SearchSpec, space: DesignSpace, evaluator: _Evaluator
) -> list[dict]:
    rng = random.Random(spec.seed)
    series: list[dict] = []
    population = [space.sample(rng) for _ in range(spec.population)]
    scored = list(zip(population, evaluator.evaluate(population, generation=0)))
    series.append(_fitness_entry(0, [t for _, t in scored]))

    def tournament() -> DesignPoint:
        contenders = [rng.choice(scored) for _ in range(spec.tournament)]
        return min(contenders, key=lambda pair: _rank_key(pair[1]))[0]

    for generation in range(1, spec.generations):
        scored.sort(key=lambda pair: _rank_key(pair[1]))
        next_population = [point for point, _ in scored[: spec.elite]]
        while len(next_population) < spec.population:
            child = space.crossover(tournament(), tournament(), rng)
            if rng.random() < spec.mutation_rate:
                child = space.mutate(child, rng)
            next_population.append(child)
        trials = evaluator.evaluate(next_population, generation=generation)
        scored = list(zip(next_population, trials))
        series.append(_fitness_entry(generation, trials))
    return series


def halving_rungs(settings: GymSettings, spec: SearchSpec) -> list[int]:
    """Trace lengths per rung, shortest first, ending at the full length."""
    lengths = [settings.trace_length]
    population = spec.budget
    while population >= spec.eta and lengths[0] > MIN_RUNG_TRACE:
        lengths.insert(0, max(MIN_RUNG_TRACE, lengths[0] // spec.eta))
        population //= spec.eta
    return lengths


def _run_halving(
    spec: SearchSpec,
    space: DesignSpace,
    evaluator: _Evaluator,
    settings: GymSettings,
) -> list[dict]:
    rng = random.Random(spec.seed)
    survivors = [space.sample(rng) for _ in range(spec.budget)]
    series: list[dict] = []
    rungs = halving_rungs(settings, spec)
    for rung, trace_length in enumerate(rungs):
        rung_settings = replace(settings, trace_length=trace_length)
        trials = evaluator.evaluate(survivors, generation=rung, settings=rung_settings)
        series.append(_fitness_entry(rung, trials))
        if rung < len(rungs) - 1:
            ranked = sorted(zip(survivors, trials), key=lambda pair: _rank_key(pair[1]))
            keep = max(1, len(ranked) // spec.eta)
            survivors = [point for point, _ in ranked[:keep]]
    return series


# -------------------------------------------------------------- entry point
def run_search(
    spec: SearchSpec,
    space: Optional[DesignSpace] = None,
    settings: Optional[GymSettings] = None,
    *,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    journal: Optional[RunJournal] = None,
    metrics: Optional[MetricsRegistry] = None,
    spans=None,
) -> SearchResult:
    """Run one seeded search end to end.

    The baseline is computed (or replayed from the journal) first; every
    trial then flows through one :class:`_Evaluator`, so trajectory
    indices, journal rows, and obs series all agree.
    """
    space = space or DesignSpace()
    settings = settings or GymSettings()
    cache = cache if cache is not None else ArtifactCache()
    if spans is not None:
        from repro.perf.fingerprint import fingerprint

        spans.trace_id = fingerprint(
            ("gym-trace/v1", fingerprint(spec), settings.settings_fingerprint)
        )[:16]

    evaluator = _Evaluator(settings, cache, journal, jobs, metrics, spans)
    baseline = evaluator.baseline_for(settings)
    if spec.driver == "random":
        series = _run_random(spec, space, evaluator)
    elif spec.driver == "grid":
        series = _run_grid(spec, space, evaluator)
    elif spec.driver == "evolutionary":
        series = _run_evolutionary(spec, space, evaluator)
    else:
        series = _run_halving(spec, space, evaluator, settings)

    # Frontier over full-length trials only: short halving rungs rank
    # survivors but are not comparable to full-trace cycle counts.
    full = [
        trial
        for _, generation, trial in evaluator.trials
        if spec.driver != "halving"
        or generation == len(halving_rungs(settings, spec)) - 1
    ]
    return SearchResult(
        spec=spec,
        settings=settings,
        baseline=baseline,
        trials=evaluator.trials,
        frontier=pareto_frontier(full),
        fitness_series=series,
        journal_hits=evaluator.journal_hits,
    )


def _baseline_journaled(
    settings: GymSettings,
    cache: ArtifactCache,
    journal: Optional[RunJournal],
) -> Baseline:
    key = f"gym:baseline:L{settings.trace_length}"
    fp = settings.settings_fingerprint
    if journal is not None:
        entry = journal.completed(key, fp)
        if entry is not None and entry.payload is not None:
            return Baseline.from_dict(entry.payload)
    baseline = compute_baseline(settings, cache)
    if journal is not None:
        journal.record_completed(key, fp, payload=baseline.as_dict())
    return baseline
