"""Search reports: trajectory JSONL, frontier JSON, and terminal tables.

Determinism contract (DESIGN.md Section 16): a trajectory file contains
**no timestamps, hostnames, durations, or provenance** — only the seeded
search's decisions and the trials' values — and every record is dumped
with sorted keys.  Two runs of the same driver with the same seed and
settings therefore produce byte-identical files, and a run resumed from
a journal after a crash produces the *same bytes* as an uninterrupted
one.  The CI ``gym-smoke`` job and ``tests/gym`` enforce this with
literal file comparisons.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.gym.fitness import Baseline, GymSettings, TrialResult

#: Trajectory record schema version (bumped on incompatible change).
TRAJECTORY_SCHEMA = 1

#: Required keys per record kind (schema validation for tests/CI).
_RECORD_KEYS = {
    "header": {"schema", "kind", "driver", "seed", "settings", "baseline"},
    "trial": {"schema", "kind", "index", "generation", "trial"},
    "frontier": {"schema", "kind", "trials"},
}
_TRIAL_KEYS = {"point", "slug", "cycles", "rel_cycles", "cycle_time_ps", "speedup"}


def header_record(driver: str, seed: int, settings: GymSettings, baseline: Baseline) -> dict:
    return {
        "schema": TRAJECTORY_SCHEMA,
        "kind": "header",
        "driver": driver,
        "seed": seed,
        "settings": {
            "benchmarks": list(settings.benchmarks),
            "trace_length": settings.trace_length,
            "trace_seed": settings.trace_seed,
            "tech": settings.tech,
            "part": settings.part,
        },
        "baseline": baseline.as_dict(),
    }


def trial_record(index: int, generation: int, trial: TrialResult) -> dict:
    return {
        "schema": TRAJECTORY_SCHEMA,
        "kind": "trial",
        "index": index,
        "generation": generation,
        "trial": trial.as_dict(),
    }


def frontier_record(frontier: Sequence[TrialResult]) -> dict:
    return {
        "schema": TRAJECTORY_SCHEMA,
        "kind": "frontier",
        "trials": [t.as_dict() for t in frontier],
    }


def validate_record(record: dict) -> None:
    """Raise :class:`ConfigError` on a malformed trajectory record."""
    kind = record.get("kind")
    required = _RECORD_KEYS.get(kind or "")
    if required is None:
        raise ConfigError(f"unknown trajectory record kind {kind!r}", kind=kind)
    missing = required - set(record)
    if missing:
        raise ConfigError(
            f"trajectory {kind} record missing keys {sorted(missing)}",
            kind=kind,
        )
    if record["schema"] != TRAJECTORY_SCHEMA:
        raise ConfigError(
            f"trajectory schema {record['schema']} != {TRAJECTORY_SCHEMA}",
            kind=kind,
        )
    trials = [record["trial"]] if kind == "trial" else record.get("trials", [])
    for payload in trials:
        missing = _TRIAL_KEYS - set(payload)
        if missing:
            raise ConfigError(
                f"trial payload missing keys {sorted(missing)}", kind=kind
            )


def dump_records(records: Iterable[dict]) -> str:
    """Canonical JSONL text for a trajectory (sorted keys, one per line)."""
    lines = []
    for record in records:
        validate_record(record)
        lines.append(json.dumps(record, sort_keys=True))
    return "".join(line + "\n" for line in lines)


def write_trajectory(path: Union[str, os.PathLike], records: Iterable[dict]) -> None:
    """Write the whole trajectory atomically (tmp + rename): a crashed
    writer leaves the previous file intact, never a torn one.  Durability
    during the search itself is the run journal's job."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    text = dump_records(records)
    tmp = target.with_name(target.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)


def load_trajectory(path: Union[str, os.PathLike]) -> list[dict]:
    """Read and validate a trajectory file."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigError(
                    f"torn trajectory line: {error}", path=str(path)
                ) from None
            validate_record(record)
            records.append(record)
    return records


def write_frontier(path: Union[str, os.PathLike], frontier: Sequence[TrialResult]) -> None:
    """Frontier as one canonical JSON document (sorted keys, trailing \\n)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    record = frontier_record(frontier)
    validate_record(record)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, target)


def format_frontier(frontier: Sequence[TrialResult], baseline: Optional[Baseline] = None) -> str:
    """Terminal table of the frontier, IPC-best first."""
    lines = [
        f"{'design point':<34} {'clusters':>8} {'rel cycles':>10} "
        f"{'cycle ps':>9} {'speedup':>8}"
    ]
    lines.append("-" * len(lines[0]))
    for trial in frontier:
        lines.append(
            f"{trial.point.slug:<34} {trial.point.num_clusters:>8} "
            f"{trial.rel_cycles:>10.4f} {trial.cycle_time_ps:>9.1f} "
            f"{trial.speedup:>8.4f}"
        )
    if baseline is not None:
        lines.append(
            f"{'(baseline 1x8-way)':<34} {1:>8} {1.0:>10.4f} "
            f"{baseline.cycle_time_ps:>9.1f} {1.0:>8.4f}"
        )
    return "\n".join(lines)
