"""Pareto frontier over (relative cycles, cycle time).

The gym's two objectives pull in opposite directions — a monolithic
machine minimizes cycle count, a deeply clustered one minimizes cycle
time — so search results are reported as the set of non-dominated
trials: no other trial is at least as good on both objectives and
strictly better on one.

Everything here is deterministic: trials are deduplicated by design-
point fingerprint and the frontier is emitted in a stable sort order,
so the frontier of a resumed or re-run search is byte-identical
(asserted by tests/gym/test_drivers.py and the CI ``gym-smoke`` job).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.gym.fitness import TrialResult


def dominates(a: TrialResult, b: TrialResult) -> bool:
    """True when ``a`` is no worse than ``b`` on both objectives and
    strictly better on at least one (minimizing both)."""
    if a.rel_cycles > b.rel_cycles or a.cycle_time_ps > b.cycle_time_ps:
        return False
    return a.rel_cycles < b.rel_cycles or a.cycle_time_ps < b.cycle_time_ps


def dedupe_trials(trials: Iterable[TrialResult]) -> list[TrialResult]:
    """Drop repeat evaluations of the same design point (first wins; a
    deterministic search re-evaluates a point to identical numbers)."""
    seen: set[str] = set()
    unique: list[TrialResult] = []
    for trial in trials:
        fp = trial.fingerprint
        if fp not in seen:
            seen.add(fp)
            unique.append(trial)
    return unique


def pareto_frontier(trials: Sequence[TrialResult]) -> list[TrialResult]:
    """The non-dominated subset, sorted by (rel_cycles, cycle_time_ps, slug).

    Trials with identical objective pairs all survive (they are genuinely
    tied machines), which keeps the frontier independent of input order.
    """
    unique = dedupe_trials(trials)
    frontier = [
        t
        for t in unique
        if not any(dominates(other, t) for other in unique)
    ]
    frontier.sort(key=lambda t: (t.rel_cycles, t.cycle_time_ps, t.point.slug))
    return frontier
