"""The design space: arbitrary valid N-cluster machine configurations.

The paper evaluates exactly two machines (1x8-way and 2x4-way).  This
module parameterizes the whole family those two points live in — N
clusters x per-cluster issue widths x dispatch-queue sizes x register-
file sizes x transfer-buffer depths x global-register counts — so the
search drivers (:mod:`repro.gym.drivers`) can ask "where does the
IPC-for-cycle-time trade actually pay off?" instead of comparing two
hand-picked machines.

A :class:`DesignPoint` is the compact, hashable genome of one machine;
:meth:`DesignPoint.to_config` expands it into a full
:class:`~repro.uarch.config.ProcessorConfig` and
:meth:`DesignPoint.assignment` into the matching modulo-N
:class:`~repro.core.registers.RegisterAssignment` (even/odd at N=2, the
paper's default).  Asymmetric points — e.g. one fat 4-wide cluster plus
a "cheap" 1-wide cluster in the style of ineffectuality steering — are
first-class: each cluster carries its own width/queue/registers.

:class:`DesignSpace` owns sampling (seeded, deterministic), validation
(typed :class:`~repro.errors.ConfigError` for every infeasible point,
riding :mod:`repro.robustness.validate`), canonicalization (clusters
sorted fattest-first, so searches deduplicate permuted genomes), and the
genetic operators (mutate/crossover) the evolutionary driver uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional

from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError
from repro.isa.registers import Register, RegisterClass, allocatable_registers
from repro.robustness.validate import validate_assignment, validate_config
from repro.uarch.config import ClusterConfig, IssueRules, ProcessorConfig

#: How many times rejection sampling retries before declaring the space
#: over-constrained (a configuration error, not an infinite loop).
MAX_SAMPLE_ATTEMPTS = 200


def issue_rules_for(width: int) -> IssueRules:
    """Per-class issue limits for a cluster of ``width`` (Table 1 shape).

    Reproduces the paper's rows exactly: width 8 -> 8/4/4/4 (the single-
    cluster machine), width 4 -> 4/2/2/2 (one dual cluster), width 2 ->
    2/1/1/1 (one 2x2-way cluster).
    """
    if width < 1:
        raise ConfigError("cluster issue width must be >= 1", width=width)
    half = max(1, (width + 1) // 2)
    return IssueRules(
        total=width, integer=width, floating_point=half, memory=half, control=half
    )


def extra_global_registers(count: int) -> tuple[Register, ...]:
    """The ``count`` registers widened to global beyond SP/GP.

    Deterministic: the highest-index allocatable integer registers (the
    ones the paper's even/odd map would otherwise localize), so a point's
    genome fully determines its register assignment.
    """
    if count < 0:
        raise ConfigError("extra_globals must be >= 0", extra_globals=count)
    pool = allocatable_registers(RegisterClass.INT)
    if count > len(pool):
        raise ConfigError(
            f"extra_globals {count} exceeds the {len(pool)} allocatable "
            "integer registers",
            extra_globals=count,
        )
    return tuple(pool[len(pool) - count:]) if count else ()


@dataclass(frozen=True)
class ClusterSpec:
    """The genome of one cluster: width, queue depth, register file size."""

    width: int = 4
    queue_entries: int = 64
    registers: int = 64  # physical registers per class (int and fp alike)


@dataclass(frozen=True)
class DesignPoint:
    """One machine in the design space (compact, hashable, serializable)."""

    clusters: tuple[ClusterSpec, ...]
    #: Operand- and result-transfer-buffer entries per cluster (ignored,
    #: i.e. forced to zero, on single-cluster machines).
    buffer_entries: int = 8
    #: Integer registers widened to global beyond the stack/global
    #: pointers (read-port-pressure vs transfer-traffic trade).
    extra_globals: int = 0

    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_width(self) -> int:
        return sum(c.width for c in self.clusters)

    @property
    def slug(self) -> str:
        """Deterministic human-readable name, e.g. ``gym-4w64q64r+1w16q32r-b8-g2``."""
        parts = "+".join(
            f"{c.width}w{c.queue_entries}q{c.registers}r" for c in self.clusters
        )
        return f"gym-{parts}-b{self.buffer_entries}-g{self.extra_globals}"

    def as_dict(self) -> dict:
        """JSON-native encoding (stable field order; round-trips exactly)."""
        return {
            "clusters": [
                {
                    "width": c.width,
                    "queue_entries": c.queue_entries,
                    "registers": c.registers,
                }
                for c in self.clusters
            ],
            "buffer_entries": self.buffer_entries,
            "extra_globals": self.extra_globals,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DesignPoint":
        try:
            clusters = tuple(
                ClusterSpec(
                    width=int(c["width"]),
                    queue_entries=int(c["queue_entries"]),
                    registers=int(c["registers"]),
                )
                for c in payload["clusters"]
            )
            return cls(
                clusters=clusters,
                buffer_entries=int(payload["buffer_entries"]),
                extra_globals=int(payload["extra_globals"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigError(
                f"malformed design-point payload: {error}", payload=repr(payload)
            ) from None

    def to_config(self, engine: str = "reference") -> ProcessorConfig:
        """Expand the genome into a full :class:`ProcessorConfig`.

        The shared front end scales with total width by the paper's own
        ratios: fetch/dispatch = 1.5x total issue width (12 for the
        8-wide machines), retirement = total width.  The 2x(4-wide,
        64-entry, 64-register) point expands to exactly the paper's
        dual-cluster machine, and 1x(8, 128, 128) to its single-cluster
        baseline.
        """
        multi = self.num_clusters > 1
        clusters = tuple(
            ClusterConfig(
                dispatch_queue_entries=spec.queue_entries,
                int_physical_registers=spec.registers,
                fp_physical_registers=spec.registers,
                issue=issue_rules_for(spec.width),
                operand_buffer_entries=self.buffer_entries if multi else 0,
                result_buffer_entries=self.buffer_entries if multi else 0,
                fp_dividers=max(1, spec.width // 4),
            )
            for spec in self.clusters
        )
        total = self.total_width
        front = max(2, total + (total + 1) // 2)
        return ProcessorConfig(
            name=self.slug,
            clusters=clusters,
            fetch_width=front,
            dispatch_width=front,
            retire_width=max(1, total),
            engine=engine,
        )

    def assignment(self) -> RegisterAssignment:
        """The modulo-N register map with this point's extra globals."""
        return RegisterAssignment.round_robin(
            self.num_clusters, extra_global_registers(self.extra_globals)
        )


@dataclass(frozen=True)
class DesignSpace:
    """Bounds and axis choices the samplers and genetic operators draw from."""

    min_clusters: int = 1
    max_clusters: int = 4
    widths: tuple[int, ...] = (1, 2, 4, 8)
    queue_entries: tuple[int, ...] = (16, 32, 64, 128)
    registers: tuple[int, ...] = (16, 32, 64, 128)
    buffer_entries: tuple[int, ...] = (1, 2, 4, 8, 16)
    extra_globals: tuple[int, ...] = (0, 2, 4, 8)
    #: Permit per-cluster width/queue/register differences ("cheap"
    #: clusters); symmetric-only spaces set this False.
    allow_asymmetric: bool = True

    def __post_init__(self) -> None:
        if self.min_clusters < 1 or self.max_clusters < self.min_clusters:
            raise ConfigError(
                "design space needs 1 <= min_clusters <= max_clusters",
                min_clusters=self.min_clusters,
                max_clusters=self.max_clusters,
            )
        for name in ("widths", "queue_entries", "registers", "buffer_entries",
                     "extra_globals"):
            axis = getattr(self, name)
            if not axis:
                raise ConfigError(f"design-space axis {name!r} is empty", axis=name)

    # ------------------------------------------------------------ validation
    def validate(
        self, point: DesignPoint
    ) -> tuple[ProcessorConfig, RegisterAssignment]:
        """Accept a feasible point (returning its expansion) or raise.

        Feasibility is decided by the same pre-flight validators every
        simulation runs (:mod:`repro.robustness.validate`): structural
        config sanity plus the register-file capacity constraint — each
        cluster must physically hold every architectural register it can
        rename (its modulo-N locals plus all globals).  Infeasible points
        raise a typed :class:`ConfigError` naming the violated
        constraint; nothing is clamped silently.
        """
        if not point.clusters:
            raise ConfigError("design point has no clusters", point=point.as_dict())
        for index, spec in enumerate(point.clusters):
            for attr in ("width", "queue_entries", "registers"):
                value = getattr(spec, attr)
                if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                    raise ConfigError(
                        f"cluster {attr} must be a positive integer, got {value!r}",
                        cluster=index,
                        field=attr,
                    )
        if point.buffer_entries < 0:
            raise ConfigError(
                "buffer_entries must be >= 0", buffer_entries=point.buffer_entries
            )
        config = point.to_config()
        assignment = point.assignment()
        validate_config(config)
        validate_assignment(assignment, config)
        return config, assignment

    def is_feasible(self, point: DesignPoint) -> bool:
        try:
            self.validate(point)
        except ConfigError:
            return False
        return True

    def contains(self, point: DesignPoint) -> bool:
        """Axis membership (distinct from feasibility): every coordinate
        drawn from this space's choice sets and bounds."""
        if not self.min_clusters <= point.num_clusters <= self.max_clusters:
            return False
        if not self.allow_asymmetric and len({c for c in point.clusters}) > 1:
            return False
        return (
            all(
                c.width in self.widths
                and c.queue_entries in self.queue_entries
                and c.registers in self.registers
                for c in point.clusters
            )
            and (
                point.buffer_entries in self.buffer_entries
                # Canonical single-cluster points zero their (unused)
                # transfer buffers; they are still members.
                or (point.num_clusters == 1 and point.buffer_entries == 0)
            )
            and point.extra_globals in self.extra_globals
        )

    # --------------------------------------------------------- normalization
    def canonicalize(self, point: DesignPoint) -> DesignPoint:
        """Stable normal form: clusters sorted fattest-first.

        Under the modulo-N register map a permutation of clusters is the
        same machine up to register numbering, so searches treat permuted
        genomes as one point.  Idempotent; preserves feasibility.
        """
        ordered = tuple(
            sorted(
                point.clusters,
                key=lambda c: (c.width, c.queue_entries, c.registers),
                reverse=True,
            )
        )
        buffers = point.buffer_entries if point.num_clusters > 1 else 0
        return replace(point, clusters=ordered, buffer_entries=buffers)

    # -------------------------------------------------------------- sampling
    def _sample_cluster(self, rng: random.Random) -> ClusterSpec:
        return ClusterSpec(
            width=rng.choice(self.widths),
            queue_entries=rng.choice(self.queue_entries),
            registers=rng.choice(self.registers),
        )

    def sample(self, rng: random.Random) -> DesignPoint:
        """One feasible, canonical point (seeded rejection sampling)."""
        for _ in range(MAX_SAMPLE_ATTEMPTS):
            n = rng.randint(self.min_clusters, self.max_clusters)
            if self.allow_asymmetric:
                clusters = tuple(self._sample_cluster(rng) for _ in range(n))
            else:
                clusters = (self._sample_cluster(rng),) * n
            point = self.canonicalize(
                DesignPoint(
                    clusters=clusters,
                    buffer_entries=rng.choice(self.buffer_entries),
                    extra_globals=rng.choice(self.extra_globals),
                )
            )
            if self.is_feasible(point):
                return point
        raise ConfigError(
            f"no feasible design point found in {MAX_SAMPLE_ATTEMPTS} draws; "
            "the space is over-constrained (e.g. every register-file choice "
            "smaller than the architectural namespace)",
            space=repr(self),
        )

    # ------------------------------------------------------------------ grid
    def grid(self) -> Iterator[DesignPoint]:
        """The symmetric lattice: N x width x buffers, with queue/register
        files scaled to the width (16 entries/registers per issue slot,
        the paper's own ratio: 4-wide -> 64, 8-wide -> 128).

        Infeasible lattice points (e.g. a 1-wide cluster whose scaled
        16-register file cannot hold the monolithic namespace) are
        skipped, exactly as the samplers reject them.
        """
        buffers = sorted({self.buffer_entries[0], self.buffer_entries[-1]})
        for n in range(self.min_clusters, self.max_clusters + 1):
            for width in self.widths:
                queue = self._nearest(self.queue_entries, 16 * width)
                regs = self._nearest(self.registers, 16 * width)
                spec = ClusterSpec(width=width, queue_entries=queue, registers=regs)
                for depth in buffers if n > 1 else buffers[:1]:
                    point = self.canonicalize(
                        DesignPoint(clusters=(spec,) * n, buffer_entries=depth)
                    )
                    if self.is_feasible(point):
                        yield point

    @staticmethod
    def _nearest(axis: tuple[int, ...], target: int) -> int:
        return min(axis, key=lambda v: (abs(v - target), v))

    # ------------------------------------------------------ genetic operators
    def mutate(self, point: DesignPoint, rng: random.Random) -> DesignPoint:
        """Perturb one axis; always returns a feasible canonical point."""
        for _ in range(MAX_SAMPLE_ATTEMPTS):
            candidate = self._mutate_once(point, rng)
            if self.is_feasible(candidate):
                return candidate
        return point  # pathological space: keep the parent

    def _mutate_once(self, point: DesignPoint, rng: random.Random) -> DesignPoint:
        moves = ["width", "queue", "registers", "buffers", "globals"]
        if point.num_clusters < self.max_clusters:
            moves.append("grow")
        if point.num_clusters > self.min_clusters:
            moves.append("shrink")
        move = rng.choice(moves)
        clusters = list(point.clusters)
        index = rng.randrange(len(clusters))
        if move == "grow":
            clusters.append(self._sample_cluster(rng))
        elif move == "shrink":
            clusters.pop(index)
        elif move == "width":
            clusters[index] = replace(clusters[index], width=rng.choice(self.widths))
        elif move == "queue":
            clusters[index] = replace(
                clusters[index], queue_entries=rng.choice(self.queue_entries)
            )
        elif move == "registers":
            clusters[index] = replace(
                clusters[index], registers=rng.choice(self.registers)
            )
        if not self.allow_asymmetric:
            clusters = [clusters[index]] * len(clusters)
        mutated = DesignPoint(
            clusters=tuple(clusters),
            buffer_entries=(
                rng.choice(self.buffer_entries)
                if move == "buffers"
                else point.buffer_entries
            ),
            extra_globals=(
                rng.choice(self.extra_globals)
                if move == "globals"
                else point.extra_globals
            ),
        )
        return self.canonicalize(mutated)

    def crossover(
        self, a: DesignPoint, b: DesignPoint, rng: random.Random
    ) -> DesignPoint:
        """Child from two parents: clusters drawn from both pools, scalar
        genes from either parent.  Feasible and canonical (falls back to
        the fitter-by-convention first parent if recombination cannot
        produce a feasible child)."""
        for _ in range(MAX_SAMPLE_ATTEMPTS):
            pool = list(a.clusters) + list(b.clusters)
            n = rng.randint(
                max(self.min_clusters, 1),
                min(self.max_clusters, len(pool)),
            )
            clusters = tuple(rng.choice(pool) for _ in range(n))
            if not self.allow_asymmetric:
                clusters = (clusters[0],) * n
            child = self.canonicalize(
                DesignPoint(
                    clusters=clusters,
                    buffer_entries=rng.choice((a.buffer_entries, b.buffer_entries)),
                    extra_globals=rng.choice((a.extra_globals, b.extra_globals)),
                )
            )
            if self.is_feasible(child):
                return child
        return a


#: The paper's two machines, expressed as gym genomes (used by tests and
#: the EXPERIMENTS.md recipe: the 2x4 point should sit on the frontier).
PAPER_SINGLE_POINT = DesignPoint(
    clusters=(ClusterSpec(width=8, queue_entries=128, registers=128),),
    buffer_entries=0,
)
PAPER_DUAL_POINT = DesignPoint(
    clusters=(ClusterSpec(width=4, queue_entries=64, registers=64),) * 2,
    buffer_entries=8,
)
