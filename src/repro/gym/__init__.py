"""Design-space exploration gym (``repro explore``).

Generalizes the paper's two hand-picked machines (1x8-way, 2x4-way) to
a searchable family of N-cluster configurations and asks the paper's
real question — where does partitioning's cycle-time win outweigh its
cycle-count cost? — with seeded, resumable, byte-reproducible search
drivers.  See DESIGN.md Section 16.
"""

from repro.gym.drivers import (
    DRIVERS,
    SearchResult,
    SearchSpec,
    halving_rungs,
    run_search,
)
from repro.gym.fitness import (
    ALL_BENCHMARKS,
    Baseline,
    GymSettings,
    TrialResult,
    compute_baseline,
    config_cycle_time,
    evaluate_point,
)
from repro.gym.pareto import dominates, pareto_frontier
from repro.gym.space import (
    PAPER_DUAL_POINT,
    PAPER_SINGLE_POINT,
    ClusterSpec,
    DesignPoint,
    DesignSpace,
    issue_rules_for,
)

__all__ = [
    "ALL_BENCHMARKS",
    "Baseline",
    "ClusterSpec",
    "DRIVERS",
    "DesignPoint",
    "DesignSpace",
    "GymSettings",
    "PAPER_DUAL_POINT",
    "PAPER_SINGLE_POINT",
    "SearchResult",
    "SearchSpec",
    "TrialResult",
    "compute_baseline",
    "config_cycle_time",
    "dominates",
    "evaluate_point",
    "halving_rungs",
    "issue_rules_for",
    "pareto_frontier",
    "run_search",
]
