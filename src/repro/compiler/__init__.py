"""The compiler substrate: the six-step methodology of Section 3.1."""

from repro.compiler.interference import InterferenceGraph
from repro.compiler.liveness import LivenessInfo
from repro.compiler.lowering import LoweringError, lower_program
from repro.compiler.passes import optimize_program
from repro.compiler.pipeline import (
    CompilationResult,
    CompilerOptions,
    compile_program,
    make_pool_resolver,
)
from repro.compiler.profiling import profile_analytically, profile_by_walk
from repro.compiler.regalloc import (
    AllocationError,
    AllocationResult,
    Pool,
    allocate_registers,
    color_graph,
)
from repro.compiler.scheduling import (
    schedule_block,
    schedule_machine_program,
    schedule_program,
)
from repro.compiler.spill import SPILL_STREAM_PREFIX, SpillContext
from repro.compiler.webs import (
    build_live_ranges,
    compute_spill_weights,
    designate_global_candidates,
)

__all__ = [
    "InterferenceGraph",
    "LivenessInfo",
    "LoweringError",
    "lower_program",
    "optimize_program",
    "CompilationResult",
    "CompilerOptions",
    "compile_program",
    "make_pool_resolver",
    "profile_analytically",
    "profile_by_walk",
    "AllocationError",
    "AllocationResult",
    "Pool",
    "allocate_registers",
    "color_graph",
    "schedule_block",
    "schedule_machine_program",
    "schedule_program",
    "SPILL_STREAM_PREFIX",
    "SpillContext",
    "build_live_ranges",
    "compute_spill_weights",
    "designate_global_candidates",
]
