"""Prepass code scheduling (Section 3.3).

The methodology requires *prepass* scheduling — instructions are ordered
before live ranges are partitioned and registers allocated, because the
local scheduler estimates run-time instruction balance from the static
order.  Scheduling is per basic block (Section 3.3 argues per-block
scheduling is mandated by the complexity of reasoning across control-flow
paths).

This is a classic latency-weighted list scheduler:

* a data-dependence graph is built over the block (RAW with operation
  latency; WAR/WAW with zero latency to preserve correctness; conservative
  memory edges keeping every store ordered against every other memory
  operation);
* priorities are critical-path heights;
* ready instructions are issued greedily onto a ``width``-wide virtual
  machine, highest priority first, fetch order breaking ties (so the
  schedule is stable and deterministic).

The block terminator always stays last.
"""

from __future__ import annotations

import heapq

from repro.isa.opcodes import InstrClass
from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import ILInstruction
from repro.ir.program import ILProgram

#: Approximate latencies used for scheduling priorities.  These mirror the
#: machine latencies of Table 1 (integer multiply 6, FP divide ~12 on
#: average between the 8-cycle and 16-cycle forms, FP other 3, loads 2 with
#: their delay slot).
SCHEDULING_LATENCY: dict[InstrClass, int] = {
    InstrClass.INT_MULTIPLY: 6,
    InstrClass.INT_OTHER: 1,
    InstrClass.FP_DIVIDE: 12,
    InstrClass.FP_OTHER: 3,
    InstrClass.LOAD: 2,
    InstrClass.STORE: 1,
    InstrClass.CONTROL: 1,
}


def build_dependence_edges(
    instructions: list[ILInstruction],
) -> list[list[tuple[int, int]]]:
    """Dependence successors per instruction index.

    Returns ``succs`` where ``succs[i]`` is a list of ``(j, latency)``
    meaning instruction ``j`` must start at least ``latency`` cycles after
    instruction ``i``.
    """
    n = len(instructions)
    succs: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    last_def: dict[int, int] = {}  # vid -> index
    last_uses: dict[int, list[int]] = {}  # vid -> indices since last def
    last_store: int | None = None
    memory_since_store: list[int] = []

    for i, instr in enumerate(instructions):
        latency = SCHEDULING_LATENCY[instr.iclass]
        for src in instr.srcs:
            d = last_def.get(src.vid)
            if d is not None:
                succs[d].append((i, SCHEDULING_LATENCY[instructions[d].iclass]))
            last_uses.setdefault(src.vid, []).append(i)
        if instr.dest is not None:
            vid = instr.dest.vid
            d = last_def.get(vid)
            if d is not None:
                succs[d].append((i, 0))  # WAW
            for u in last_uses.get(vid, []):
                if u != i:
                    succs[u].append((i, 0))  # WAR
            last_def[vid] = i
            last_uses[vid] = []
        if instr.opcode.is_memory:
            if instr.opcode.is_store:
                if last_store is not None:
                    succs[last_store].append((i, 1))
                for m in memory_since_store:
                    succs[m].append((i, 0))
                last_store = i
                memory_since_store = []
            else:
                if last_store is not None:
                    succs[last_store].append((i, 1))
                memory_since_store.append(i)
        del latency
    # The terminator must remain last.
    if instructions and instructions[-1].opcode.is_control:
        t = n - 1
        for i in range(n - 1):
            succs[i].append((t, 0))
    return succs


def critical_path_heights(
    instructions: list[ILInstruction], succs: list[list[tuple[int, int]]]
) -> list[int]:
    """Longest latency path from each instruction to the block exit."""
    n = len(instructions)
    heights = [SCHEDULING_LATENCY[i.iclass] for i in instructions]
    for i in range(n - 1, -1, -1):
        own = SCHEDULING_LATENCY[instructions[i].iclass]
        best = own
        for j, lat in succs[i]:
            best = max(best, lat + heights[j])
        heights[i] = best
    return heights


def schedule_block(block: BasicBlock, width: int = 8) -> None:
    """Reorder ``block.instructions`` in place by list scheduling."""
    instructions = block.instructions
    n = len(instructions)
    if n <= 1:
        return
    succs = build_dependence_edges(instructions)
    heights = critical_path_heights(instructions, succs)

    indegree = [0] * n
    earliest = [0] * n
    for i in range(n):
        for j, _lat in succs[i]:
            indegree[j] += 1

    # Ready heap keyed by (-height, original index) for stable determinism.
    ready: list[tuple[int, int]] = []
    for i in range(n):
        if indegree[i] == 0:
            heapq.heappush(ready, (-heights[i], i))

    new_order: list[ILInstruction] = []
    pending: list[tuple[int, int, int]] = []  # (ready_cycle, -height, index)
    cycle = 0
    scheduled = 0
    while scheduled < n:
        while pending and pending[0][0] <= cycle:
            _, negh, idx = heapq.heappop(pending)
            heapq.heappush(ready, (negh, idx))
        issued = 0
        while ready and issued < width:
            negh, idx = heapq.heappop(ready)
            new_order.append(instructions[idx])
            scheduled += 1
            issued += 1
            for j, lat in succs[idx]:
                indegree[j] -= 1
                earliest[j] = max(earliest[j], cycle + lat)
                if indegree[j] == 0:
                    if earliest[j] <= cycle:
                        heapq.heappush(ready, (-heights[j], j))
                    else:
                        heapq.heappush(pending, (earliest[j], -heights[j], j))
        cycle = max(cycle + 1, pending[0][0] if (pending and not ready) else cycle + 1)
    block.instructions = new_order


def schedule_program(program: ILProgram, width: int = 8) -> None:
    """List-schedule every block, then renumber instruction uids."""
    for block in program.cfg.blocks():
        schedule_block(block, width)
    program.renumber()


# --------------------------------------------------------------------------
# Postpass (machine-level) scheduling — step 6 of the Section 3.1 pipeline.
# --------------------------------------------------------------------------

def _machine_edges(instructions) -> list[list[tuple[int, int]]]:
    """Dependence successors over architectural registers.

    Same structure as :func:`build_dependence_edges`, but RAW/WAR/WAW are
    keyed by register uid (allocation introduced new reuse constraints),
    and spill code participates in the memory ordering like any other
    memory operation.
    """
    n = len(instructions)
    succs: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    last_def: dict[int, int] = {}
    last_uses: dict[int, list[int]] = {}
    last_store: int | None = None
    memory_since_store: list[int] = []
    for i, instr in enumerate(instructions):
        for src in instr.effective_srcs:
            d = last_def.get(src.uid)
            if d is not None:
                succs[d].append((i, SCHEDULING_LATENCY[instructions[d].iclass]))
            last_uses.setdefault(src.uid, []).append(i)
        dest = instr.effective_dest
        if dest is not None:
            d = last_def.get(dest.uid)
            if d is not None:
                succs[d].append((i, 0))
            for u in last_uses.get(dest.uid, []):
                if u != i:
                    succs[u].append((i, 0))
            last_def[dest.uid] = i
            last_uses[dest.uid] = []
        if instr.opcode.is_memory:
            if instr.opcode.is_store:
                if last_store is not None:
                    succs[last_store].append((i, 1))
                for m in memory_since_store:
                    succs[m].append((i, 0))
                last_store = i
                memory_since_store = []
            else:
                if last_store is not None:
                    succs[last_store].append((i, 1))
                memory_since_store.append(i)
    if instructions and instructions[-1].opcode.is_control:
        t = n - 1
        for i in range(n - 1):
            succs[i].append((t, 0))
    return succs


def schedule_machine_program(machine, width: int = 8) -> None:
    """Postpass list scheduling of a machine program, in place.

    Reorders each block's instructions (and their sidecar metadata in
    lockstep) respecting register, memory, and terminator dependences,
    then reassigns uids/PCs.
    """
    for block in machine.blocks():
        n = len(block.instructions)
        if n <= 1:
            continue
        succs = _machine_edges(block.instructions)
        heights = [SCHEDULING_LATENCY[i.iclass] for i in block.instructions]
        for i in range(n - 1, -1, -1):
            own = SCHEDULING_LATENCY[block.instructions[i].iclass]
            best = own
            for j, lat in succs[i]:
                best = max(best, lat + heights[j])
            heights[i] = best
        indegree = [0] * n
        earliest = [0] * n
        for i in range(n):
            for j, _lat in succs[i]:
                indegree[j] += 1
        ready: list[tuple[int, int]] = []
        for i in range(n):
            if indegree[i] == 0:
                heapq.heappush(ready, (-heights[i], i))
        order: list[int] = []
        pending: list[tuple[int, int, int]] = []
        cycle = 0
        while len(order) < n:
            while pending and pending[0][0] <= cycle:
                _, negh, idx = heapq.heappop(pending)
                heapq.heappush(ready, (negh, idx))
            issued = 0
            while ready and issued < width:
                negh, idx = heapq.heappop(ready)
                order.append(idx)
                issued += 1
                for j, lat in succs[idx]:
                    indegree[j] -= 1
                    earliest[j] = max(earliest[j], cycle + lat)
                    if indegree[j] == 0:
                        if earliest[j] <= cycle:
                            heapq.heappush(ready, (-heights[j], j))
                        else:
                            heapq.heappush(pending, (earliest[j], -heights[j], j))
            cycle = max(cycle + 1, pending[0][0] if (pending and not ready) else cycle + 1)
        block.instructions = [block.instructions[i] for i in order]
        block.meta = [block.meta[i] for i in order]
    machine.assign_pcs()
