"""Dataflow liveness analysis over IL values.

Classic backward may-analysis (Aho et al. [9], which the paper cites for
its compiler machinery):

    live_out(B) = union of live_in(S) over successors S
    live_in(B)  = use(B) | (live_out(B) - def(B))

iterated to a fixpoint over the reverse-postorder worklist.  Results are
over :class:`~repro.ir.values.ILValue` objects; web construction refines
them into live ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import ILProgram
from repro.ir.values import ILValue


@dataclass
class BlockLiveness:
    """Liveness sets for one basic block."""

    use: set[ILValue] = field(default_factory=set)
    defs: set[ILValue] = field(default_factory=set)
    live_in: set[ILValue] = field(default_factory=set)
    live_out: set[ILValue] = field(default_factory=set)


class LivenessInfo:
    """Program-wide liveness: per-block sets plus in-block iteration help."""

    def __init__(self, program: ILProgram) -> None:
        self.program = program
        self.blocks: dict[str, BlockLiveness] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.program.cfg
        for block in cfg.blocks():
            info = BlockLiveness()
            for instr in block.instructions:
                for src in instr.srcs:
                    if src not in info.defs:
                        info.use.add(src)
                if instr.dest is not None:
                    info.defs.add(instr.dest)
            self.blocks[block.label] = info

        preds = cfg.predecessor_map()
        # Backward analysis: seed the worklist in postorder (reverse of RPO).
        order = list(reversed(cfg.reverse_postorder()))
        # Include unreachable blocks so lookups never fail.
        for label in cfg.labels():
            if label not in order:
                order.append(label)
        worklist = list(order)
        in_worklist = set(worklist)
        while worklist:
            label = worklist.pop(0)
            in_worklist.discard(label)
            block = cfg.block(label)
            info = self.blocks[label]
            new_out: set[ILValue] = set()
            for succ in block.succ_labels:
                new_out |= self.blocks[succ].live_in
            new_in = info.use | (new_out - info.defs)
            if new_out != info.live_out or new_in != info.live_in:
                info.live_out = new_out
                info.live_in = new_in
                for pred in preds[label]:
                    if pred not in in_worklist:
                        worklist.append(pred)
                        in_worklist.add(pred)

    def live_in(self, label: str) -> set[ILValue]:
        return self.blocks[label].live_in

    def live_out(self, label: str) -> set[ILValue]:
        return self.blocks[label].live_out

    def live_before_each(self, label: str) -> list[set[ILValue]]:
        """Live set immediately before each instruction of a block.

        Returned list is parallel to ``block.instructions``.
        """
        block = self.program.cfg.block(label)
        live = set(self.blocks[label].live_out)
        result: list[set[ILValue]] = [set() for _ in block.instructions]
        for idx in range(len(block.instructions) - 1, -1, -1):
            instr = block.instructions[idx]
            if instr.dest is not None:
                live.discard(instr.dest)
            live.update(instr.srcs)
            result[idx] = set(live)
        return result
