"""Dead-code elimination.

Removes pure instructions (no memory or control side effects) whose result
is never used: the destination has no later use in the block and is not
live out of it.  Iterates to a fixpoint so chains of dead code disappear.
"""

from __future__ import annotations

from repro.ir.program import ILProgram
from repro.compiler.liveness import LivenessInfo


def run_dce(program: ILProgram) -> int:
    """Run DCE on ``program`` in place; returns instructions removed."""
    removed_total = 0
    while True:
        removed = _one_round(program)
        removed_total += removed
        if removed == 0:
            return removed_total


def _one_round(program: ILProgram) -> int:
    liveness = LivenessInfo(program)
    removed = 0
    for block in program.cfg.blocks():
        live = set(liveness.live_out(block.label))
        keep = []
        for instr in reversed(block.instructions):
            is_pure = (
                instr.dest is not None
                and not instr.opcode.is_memory
                and not instr.opcode.is_control
            )
            if is_pure and instr.dest not in live:
                removed += 1
                continue
            keep.append(instr)
            if instr.dest is not None:
                live.discard(instr.dest)
            live.update(instr.srcs)
        keep.reverse()
        block.instructions = keep
    if removed:
        program.renumber()
    return removed
