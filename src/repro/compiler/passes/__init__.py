"""Conventional optimization passes (step 1 of Section 3.1's methodology).

"The application is compiled into an intermediate language (IL) to which
are applied conventional optimizations like common subexpression
elimination and constant propagation."  The paper deliberately uses
existing techniques unmodified (Section 3.2); these passes are standard
local optimizations.
"""

from repro.compiler.passes.constprop import run_constant_propagation
from repro.compiler.passes.copyprop import run_copy_propagation
from repro.compiler.passes.cse import run_cse
from repro.compiler.passes.dce import run_dce
from repro.compiler.passes.unroll import (
    find_self_loops,
    unroll_program,
    unroll_self_loop,
)

from repro.ir.program import ILProgram

__all__ = [
    "run_constant_propagation",
    "run_copy_propagation",
    "run_cse",
    "run_dce",
    "optimize_program",
    "find_self_loops",
    "unroll_program",
    "unroll_self_loop",
]


def optimize_program(program: ILProgram, max_rounds: int = 4) -> dict[str, int]:
    """Run the conventional optimization pipeline to a fixpoint.

    Returns per-pass transformation counts (useful for tests and reports).
    """
    totals = {"constprop": 0, "copyprop": 0, "cse": 0, "dce": 0}
    for _ in range(max_rounds):
        changed = 0
        for name, runner in (
            ("constprop", run_constant_propagation),
            ("copyprop", run_copy_propagation),
            ("cse", run_cse),
            ("dce", run_dce),
        ):
            count = runner(program)
            totals[name] += count
            changed += count
        if changed == 0:
            break
    program.renumber()
    return totals
