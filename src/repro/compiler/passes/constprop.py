"""Local constant propagation and folding.

``lda`` with no register sources materializes a constant; when every
source of a foldable integer operation is a known constant the operation is
replaced by an ``lda`` of the folded value.  Tracking is per block (values
entering a block are treated as unknown).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.isa.opcodes import Opcode
from repro.ir.program import ILProgram
from repro.ir.values import ILValue

_FOLDERS: dict[Opcode, Callable[[int, int], int]] = {
    Opcode.ADDQ: lambda a, b: a + b,
    Opcode.SUBQ: lambda a, b: a - b,
    Opcode.MULQ: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.BIS: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << (b & 63),
    Opcode.SRL: lambda a, b: (a & (2**64 - 1)) >> (b & 63),
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
}


def run_constant_propagation(program: ILProgram) -> int:
    """Fold constant expressions in place; returns instructions folded."""
    folded = 0
    for block in program.cfg.blocks():
        constants: dict[ILValue, int] = {}
        for idx, instr in enumerate(block.instructions):
            value = _evaluate(instr, constants)
            if instr.dest is not None:
                if value is not None:
                    if instr.opcode is not Opcode.LDA or instr.srcs:
                        block.instructions[idx] = instr.replace(
                            opcode=Opcode.LDA, srcs=()
                        )
                        block.instructions[idx].imm = value
                        folded += 1
                    constants[instr.dest] = value
                else:
                    constants.pop(instr.dest, None)
    if folded:
        program.renumber()
    return folded


def _evaluate(instr, constants: dict[ILValue, int]) -> Optional[int]:
    if instr.opcode is Opcode.LDA and not instr.srcs:
        return instr.imm if instr.imm is not None else 0
    folder = _FOLDERS.get(instr.opcode)
    if folder is None or instr.dest is None:
        return None
    operands: list[int] = []
    for src in instr.srcs:
        known = constants.get(src)
        if known is None:
            return None
        operands.append(known)
    if instr.imm is not None:
        operands.append(instr.imm)
    if len(operands) != 2:
        return None
    return folder(operands[0], operands[1])
