"""Local copy propagation.

Within each basic block, a move ``y = x`` (``bis``/``cpys`` with a single
source) makes later uses of ``y`` replaceable by ``x`` until either value
is redefined.  Dead moves are left for DCE to collect.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode
from repro.ir.program import ILProgram
from repro.ir.values import ILValue

_MOVE_OPS = (Opcode.BIS, Opcode.CPYS)


def run_copy_propagation(program: ILProgram) -> int:
    """Propagate copies in place; returns number of operands rewritten."""
    rewrites = 0
    for block in program.cfg.blocks():
        copy_of: dict[ILValue, ILValue] = {}
        for idx, instr in enumerate(block.instructions):
            if any(src in copy_of for src in instr.srcs):
                new_srcs = tuple(copy_of.get(s, s) for s in instr.srcs)
                rewrites += sum(1 for a, b in zip(instr.srcs, new_srcs) if a is not b)
                block.instructions[idx] = instr.replace(srcs=new_srcs)
                instr = block.instructions[idx]
            if instr.dest is not None:
                dest = instr.dest
                # Any copy whose source or destination is redefined dies.
                copy_of.pop(dest, None)
                for key in [k for k, v in copy_of.items() if v is dest]:
                    del copy_of[key]
                if instr.opcode in _MOVE_OPS and len(instr.srcs) == 1 and instr.imm is None:
                    src = instr.srcs[0]
                    if src is not dest and src.rclass is dest.rclass:
                        copy_of[dest] = copy_of.get(src, src)
    if rewrites:
        program.renumber()
    return rewrites
