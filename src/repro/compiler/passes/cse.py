"""Local common-subexpression elimination.

Within a basic block, a pure instruction recomputing an expression already
available (same opcode, immediate, and the same *versions* of the same
sources) is replaced by a register move from the earlier result.  Versions
are tracked with a per-value definition counter so redefinitions correctly
invalidate expressions.
"""

from __future__ import annotations

from collections import defaultdict

from repro.isa.opcodes import Opcode
from repro.ir.program import ILProgram

#: Opcodes never considered for CSE even though they have destinations.
_EXCLUDED = {Opcode.BIS, Opcode.CPYS}


def run_cse(program: ILProgram) -> int:
    """Eliminate local common subexpressions in place; returns count."""
    eliminated = 0
    for block in program.cfg.blocks():
        version: dict[int, int] = defaultdict(int)
        available: dict[tuple, object] = {}
        for idx, instr in enumerate(block.instructions):
            is_pure = (
                instr.dest is not None
                and not instr.opcode.is_memory
                and not instr.opcode.is_control
                and instr.opcode not in _EXCLUDED
            )
            if is_pure:
                key = (
                    instr.opcode,
                    instr.imm,
                    tuple((s.vid, version[s.vid]) for s in instr.srcs),
                )
                prior = available.get(key)
                if prior is not None:
                    move_op = Opcode.CPYS if instr.opcode.writes_fp else Opcode.BIS
                    block.instructions[idx] = instr.replace(
                        opcode=move_op, srcs=(prior,)
                    )
                    eliminated += 1
                    instr = block.instructions[idx]
                else:
                    available[key] = instr.dest
            if instr.dest is not None:
                version[instr.dest.vid] += 1
    if eliminated:
        program.renumber()
    return eliminated
