"""Loop unrolling (the paper's Section 6 future-work transform).

"Loop unrolling ... could also be used to generate a code schedule in
which multiple iterations of a loop were interleaved, with each iteration
scheduled to use a separate cluster of a multicluster processor."

This pass unrolls *self loops* — single-block natural loops, the shape the
synthetic workloads' innermost loops take — by a factor ``k``: the body is
replicated ``k`` times, iteration-private values are renamed per copy, and
loop-carried values thread from copy to copy.  Intermediate back-edge
branches are dropped (the unrolled body iterates ``k`` iterations per
trip), and the surviving back-edge branch keeps the original behaviour
annotation; the trace generator's trip counts then describe *unrolled*
trips, so callers should divide trip counts by ``k`` in the behaviour
model if they want identical dynamic iteration counts.

After unrolling, the local scheduler sees ``k`` mostly-independent copies
and can place alternate iterations on alternate clusters — the paper's
suggestion — which the ``unroll`` ablation experiment measures.
"""

from __future__ import annotations

from repro.ir.instructions import ILInstruction
from repro.ir.program import ILProgram
from repro.ir.values import ILValue


def find_self_loops(program: ILProgram) -> list[str]:
    """Labels of blocks that branch back to themselves."""
    return [
        block.label
        for block in program.cfg.blocks()
        if block.label in block.succ_labels
        and block.terminator is not None
        and block.terminator.opcode.is_conditional_branch
    ]


def unroll_self_loop(program: ILProgram, label: str, factor: int) -> bool:
    """Unroll the self loop at ``label`` by ``factor`` in place.

    Returns False (and changes nothing) if the block is not a conditional
    self loop.  Instruction uids are renumbered on success.
    """
    if factor < 2:
        return False
    block = program.cfg.block(label)
    term = block.terminator
    if term is None or not term.opcode.is_conditional_branch or term.target != label:
        return False

    body = block.body
    defined: set[ILValue] = {i.dest for i in body if i.dest is not None}

    new_instructions: list[ILInstruction] = []
    # Values carried from the previous copy: start with the originals
    # (reaching from outside the loop or the previous unrolled trip).
    current: dict[ILValue, ILValue] = {}

    for copy_index in range(factor):
        copy_map: dict[ILValue, ILValue] = {}
        for instr in body:
            srcs = tuple(copy_map.get(s, current.get(s, s)) for s in instr.srcs)
            dest = instr.dest
            if dest is not None:
                if copy_index < factor - 1:
                    renamed = program.new_value(
                        f"{dest.name}.it{copy_index}", dest.rclass
                    )
                else:
                    # The final copy writes the original values so that
                    # uses after the loop see the right names.
                    renamed = dest
                copy_map[dest] = renamed
                new_instructions.append(instr.replace(dest=renamed, srcs=srcs))
            else:
                new_instructions.append(instr.replace(srcs=srcs))
        # Next copy reads this copy's definitions for loop-carried values.
        for original, renamed in copy_map.items():
            current[original] = renamed
        del copy_map

    # Keep a single back-edge branch, reading the latest copy of its
    # condition value.
    cond_srcs = tuple(current.get(s, s) for s in term.srcs)
    new_instructions.append(term.replace(srcs=cond_srcs))

    block.instructions = new_instructions
    program.renumber()
    return True


def unroll_program(program: ILProgram, factor: int = 2) -> int:
    """Unroll every conditional self loop; returns loops unrolled."""
    count = 0
    for label in find_self_loops(program):
        if unroll_self_loop(program, label, factor):
            count += 1
    return count
