"""Web construction: refine IL values into live ranges.

A *web* is a maximal set of definitions and uses of one value connected
through def->use reachability; each web is one
:class:`~repro.ir.live_range.LiveRange` — the unit of both cluster
partitioning (Section 3.5) and register allocation (Section 3.4).  Distinct
webs of the same source-level value are independent and may land in
different clusters or registers.

Implementation: reaching-definitions dataflow at (value, defining
instruction) granularity, then union-find merging every pair of definitions
that reach a common use.  Values that are live into the program entry
(e.g. the stack pointer, which is never defined) get a synthetic entry
definition so they still form a web.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.ir.live_range import LiveRangeSet
from repro.ir.program import ILProgram
from repro.ir.values import ILValue

#: Synthetic uid for the program-entry definition of value ``v``.
def _entry_def(value: ILValue) -> int:
    return -1 - value.vid


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[tuple[int, int], tuple[int, int]] = {}

    def find(self, key: tuple[int, int]) -> tuple[int, int]:
        parent = self.parent.setdefault(key, key)
        if parent != key:
            root = self.find(parent)
            self.parent[key] = root
            return root
        return key

    def union(self, a: tuple[int, int], b: tuple[int, int]) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def build_live_ranges(program: ILProgram) -> LiveRangeSet:
    """Construct the live ranges (webs) of ``program``.

    Requires ``program.renumber()`` to have run (instruction uids valid).
    """
    cfg = program.cfg
    labels = cfg.labels()

    # Per-block: gen = defs reaching block end; kill handled implicitly by
    # tracking only the *last* def of each value per block plus earlier defs
    # that reach a use before being killed (those never leave the block).
    gen: dict[str, dict[ILValue, set[int]]] = {}
    for label in labels:
        block = cfg.block(label)
        last: dict[ILValue, set[int]] = {}
        for instr in block.instructions:
            if instr.dest is not None:
                last[instr.dest] = {instr.uid}
        gen[label] = last

    # Forward dataflow of reaching defs per value.
    reach_in: dict[str, dict[ILValue, set[int]]] = {
        label: defaultdict(set) for label in labels
    }
    reach_out: dict[str, dict[ILValue, set[int]]] = {
        label: defaultdict(set) for label in labels
    }
    entry = cfg.entry_label
    if entry is not None:
        for value in program.values:
            reach_in[entry][value].add(_entry_def(value))

    preds = cfg.predecessor_map()
    order = cfg.reverse_postorder()
    for label in labels:
        if label not in order:
            order.append(label)

    changed = True
    while changed:
        changed = False
        for label in order:
            rin = reach_in[label]
            for pred in preds[label]:
                for value, defs in reach_out[pred].items():
                    before = len(rin[value])
                    rin[value] |= defs
                    if len(rin[value]) != before:
                        changed = True
            rout = reach_out[label]
            block_gen = gen[label]
            for value in set(rin) | set(block_gen):
                new = block_gen.get(value) or rin.get(value, set())
                if new != rout.get(value, set()):
                    rout[value] = set(new)
                    changed = True

    # Walk blocks, merging defs that reach a common use.
    uf = _UnionFind()
    use_attach: dict[tuple[int, ILValue], tuple[int, int]] = {}
    real_defs: set[tuple[int, int]] = set()
    for label in labels:
        block = cfg.block(label)
        current: dict[ILValue, set[int]] = {
            v: set(defs) for v, defs in reach_in[label].items()
        }
        for instr in block.instructions:
            for src in instr.srcs:
                defs = current.get(src)
                if not defs:
                    defs = {_entry_def(src)}
                    current[src] = defs
                keys = [(d, src.vid) for d in defs]
                for other in keys[1:]:
                    uf.union(keys[0], other)
                use_attach[(instr.uid, src)] = keys[0]
            if instr.dest is not None:
                current[instr.dest] = {instr.uid}
                real_defs.add((instr.uid, instr.dest.vid))
                uf.find((instr.uid, instr.dest.vid))  # register in the forest

    # Build LiveRange objects, one per union-find root.
    lrs = LiveRangeSet()
    by_value = {v.vid: v for v in program.values}
    root_to_lr: dict[tuple[int, int], "object"] = {}
    web_counter: dict[int, int] = defaultdict(int)

    def lr_for_root(root: tuple[int, int]):
        if root not in root_to_lr:
            value = by_value[root[1]]
            index = web_counter[value.vid]
            web_counter[value.vid] += 1
            root_to_lr[root] = lrs.new_range(value, web_index=index)
        return root_to_lr[root]

    for def_key in sorted(real_defs):
        uid, vid = def_key
        lr = lr_for_root(uf.find(def_key))
        lr.def_uids.add(uid)
        lrs.def_map[(uid, by_value[vid])] = lr

    for (uid, value), key in sorted(use_attach.items(), key=lambda kv: (kv[0][0], kv[0][1].vid)):
        lr = lr_for_root(uf.find(key))
        lr.use_uids.add(uid)
        lrs.use_map[(uid, value)] = lr

    # Webs of a value with a single web keep the bare value name.
    for lr in lrs:
        if web_counter[lr.value.vid] == 1:
            lr.web_index = 0
    return lrs


def designate_global_candidates(
    lrs: LiveRangeSet, extra_values: Iterable[ILValue] = ()
) -> None:
    """Step 3 of the methodology (Section 3.1).

    Live ranges of the stack pointer and global pointer become candidates
    for global registers; everything else stays a local-register candidate.
    ``extra_values`` lets experiments widen the global set (a future-work
    idea the paper raises for key loop variables).
    """
    extra = set(extra_values)
    for lr in lrs:
        value = lr.value
        lr.global_candidate = (
            value.is_stack_pointer or value.is_global_pointer or value in extra
        )


def compute_spill_weights(program: ILProgram, lrs: LiveRangeSet) -> None:
    """Profile-weighted reference counts, the allocator's spill-cost metric."""
    count_of: dict[int, float] = {}
    for block in program.cfg.blocks():
        weight = float(max(block.profile_count, 1))
        for instr in block.instructions:
            count_of[instr.uid] = weight
    for lr in lrs:
        lr.spill_weight = sum(count_of.get(uid, 1.0) for uid in lr.reference_uids)
