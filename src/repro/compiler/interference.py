"""Interference graph over live ranges.

Two live ranges interfere if one is defined while the other is live (and
they belong to the same register class, so they compete for the same
register file).  The graph feeds the Briggs-style colouring allocator
(Section 3.4).
"""

from __future__ import annotations

from repro.ir.live_range import LiveRange, LiveRangeSet
from repro.ir.program import ILProgram


class InterferenceGraph:
    """Undirected interference graph keyed by live-range id."""

    def __init__(self, lrs: LiveRangeSet) -> None:
        self.lrs = lrs
        self.adjacency: dict[int, set[int]] = {lr.lrid: set() for lr in lrs}

    # ------------------------------------------------------------- building
    @classmethod
    def build(cls, program: ILProgram, lrs: LiveRangeSet) -> "InterferenceGraph":
        graph = cls(lrs)
        live_out = _range_liveness(program, lrs)
        for block in program.cfg.blocks():
            live: set[LiveRange] = set(live_out[block.label])
            for instr in reversed(block.instructions):
                dest_lr = None
                if instr.dest is not None:
                    dest_lr = lrs.def_map.get((instr.uid, instr.dest))
                if dest_lr is not None:
                    for other in live:
                        if other is not dest_lr and other.rclass is dest_lr.rclass:
                            graph.add_edge(dest_lr, other)
                    live.discard(dest_lr)
                for src in instr.srcs:
                    use_lr = lrs.use_map.get((instr.uid, src))
                    if use_lr is not None:
                        live.add(use_lr)
        return graph

    def add_edge(self, a: LiveRange, b: LiveRange) -> None:
        if a.lrid == b.lrid:
            return
        self.adjacency[a.lrid].add(b.lrid)
        self.adjacency[b.lrid].add(a.lrid)

    # -------------------------------------------------------------- queries
    def interferes(self, a: LiveRange, b: LiveRange) -> bool:
        return b.lrid in self.adjacency[a.lrid]

    def neighbors(self, lr: LiveRange) -> list[LiveRange]:
        return [self.lrs.ranges[i] for i in self.adjacency[lr.lrid]]

    def degree(self, lr: LiveRange) -> int:
        return len(self.adjacency[lr.lrid])

    def __len__(self) -> int:
        return len(self.adjacency)

    def edge_count(self) -> int:
        return sum(len(v) for v in self.adjacency.values()) // 2


def _range_liveness(
    program: ILProgram, lrs: LiveRangeSet
) -> dict[str, set[LiveRange]]:
    """Live-out set of live ranges per block (backward dataflow)."""
    cfg = program.cfg
    use: dict[str, set[LiveRange]] = {}
    defs: dict[str, set[LiveRange]] = {}
    for block in cfg.blocks():
        bu: set[LiveRange] = set()
        bd: set[LiveRange] = set()
        for instr in block.instructions:
            for src in instr.srcs:
                lr = lrs.use_map.get((instr.uid, src))
                if lr is not None and lr not in bd:
                    bu.add(lr)
            if instr.dest is not None:
                lr = lrs.def_map.get((instr.uid, instr.dest))
                if lr is not None:
                    bd.add(lr)
        use[block.label] = bu
        defs[block.label] = bd

    live_in: dict[str, set[LiveRange]] = {label: set() for label in cfg.labels()}
    live_out: dict[str, set[LiveRange]] = {label: set() for label in cfg.labels()}
    preds = cfg.predecessor_map()
    worklist = list(reversed(cfg.reverse_postorder()))
    for label in cfg.labels():
        if label not in worklist:
            worklist.append(label)
    pending = set(worklist)
    while worklist:
        label = worklist.pop(0)
        pending.discard(label)
        block = cfg.block(label)
        out: set[LiveRange] = set()
        for succ in block.succ_labels:
            out |= live_in[succ]
        lin = use[label] | (out - defs[label])
        if out != live_out[label] or lin != live_in[label]:
            live_out[label] = out
            live_in[label] = lin
            for pred in preds[label]:
                if pred not in pending:
                    worklist.append(pred)
                    pending.add(pred)
    return live_out
