"""Basic-block execution profiling.

The local scheduler sorts basic blocks by "the number of times the first
instruction in each basic block is estimated to be executed", and the
footnote says "these estimates are derived from profiling the execution of
the application" (Section 3.5).  Two estimators are provided:

* :func:`profile_by_walk` — a functional execution profile: walk the CFG's
  edge probabilities with a seeded RNG (our stand-in for running the
  instrumented binary) and count block entries.
* :func:`profile_analytically` — solve the steady-state visit-count flow
  equations ``count(b) = entry(b) + sum(count(p) * prob(p->b))`` directly;
  deterministic and exact for the Markov control-flow model.

Both write ``block.profile_count``.
"""

from __future__ import annotations

import random

from repro.ir.program import ILProgram


def profile_by_walk(
    program: ILProgram,
    max_instructions: int = 100_000,
    seed: int = 1,
    write_counts: bool = True,
    restart: bool = True,
) -> dict[str, int]:
    """Profile by stochastic CFG walk; returns label -> entry count.

    With ``restart`` (default), the walk re-enters the program when it
    reaches an exit, until the instruction budget is spent — the same
    convention the trace generator uses, so profiles match trace behaviour.
    """
    rng = random.Random(seed)
    cfg = program.cfg
    counts = {label: 0 for label in cfg.labels()}
    label = cfg.entry_label
    executed = 0
    while label is not None and executed < max_instructions:
        block = cfg.block(label)
        counts[label] += 1
        executed += max(len(block), 1)
        if not block.succ_labels:
            if not restart:
                break
            label = cfg.entry_label
            continue
        r = rng.random()
        cumulative = 0.0
        chosen = block.succ_labels[-1]
        for succ in block.succ_labels:
            cumulative += block.edge_probs.get(succ, 0.0)
            if r < cumulative:
                chosen = succ
                break
        label = chosen
    if write_counts:
        for lbl, count in counts.items():
            cfg.block(lbl).profile_count = count
    return counts


def profile_analytically(
    program: ILProgram,
    entries: float = 1.0,
    scale: float = 1000.0,
    write_counts: bool = True,
    max_sweeps: int = 10_000,
    tolerance: float = 1e-9,
) -> dict[str, float]:
    """Profile by solving visit-count flow equations with Gauss–Seidel sweeps.

    Exit probability mass (blocks with no successors, or truncated edges)
    guarantees convergence for any well-formed program.  Counts are scaled
    by ``scale`` and rounded when written back.
    """
    cfg = program.cfg
    labels = cfg.labels()
    preds = cfg.predecessor_map()
    counts = {label: 0.0 for label in labels}
    entry = cfg.entry_label
    order = cfg.reverse_postorder()
    for label in labels:
        if label not in order:
            order.append(label)
    for _ in range(max_sweeps):
        delta = 0.0
        for label in order:
            total = entries if label == entry else 0.0
            for pred in preds[label]:
                prob = cfg.block(pred).edge_probs.get(label, 0.0)
                total += counts[pred] * prob
            delta = max(delta, abs(total - counts[label]))
            counts[label] = total
        if delta < tolerance:
            break
    if write_counts:
        for label, count in counts.items():
            cfg.block(label).profile_count = int(round(count * scale))
    return counts
