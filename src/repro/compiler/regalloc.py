"""Briggs-style graph-colouring register allocation (Section 3.4).

The paper picks the Briggs et al. allocator because it "separates the
process of colouring nodes from the process of spilling live ranges",
which gives a natural place to implement the multicluster spill policy:
*"spill a live range first to a local register in the other cluster and,
if no register is available, then to memory."*

This implementation keeps that structure:

1. **Simplify** — repeatedly remove nodes whose *effective* degree (number
   of neighbours whose register pools overlap) is below the size of their
   own pool; when stuck, optimistically push the cheapest spill candidate
   (lowest ``spill_weight / (1 + degree)``).
2. **Select** — pop and colour.  A node that finds no colour in its own
   pool first retries the *other cluster's* pool (the multicluster spill
   policy), and only then is marked for a memory spill.
3. **Spill & iterate** — memory spills rewrite the program
   (:mod:`repro.compiler.spill`) and allocation restarts on fresh live
   ranges.

Register pools are supplied per live range, so the same allocator serves
both the cluster-oblivious "native" compilation and the cluster-aware
compilation driven by a partitioner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.isa.registers import Register
from repro.ir.live_range import LiveRange, LiveRangeSet
from repro.ir.program import ILProgram
from repro.compiler.interference import InterferenceGraph
from repro.compiler.spill import SpillContext, insert_spill_code
from repro.compiler.webs import (
    build_live_ranges,
    compute_spill_weights,
    designate_global_candidates,
)


class AllocationError(Exception):
    """Raised when allocation cannot converge (pathological register pressure)."""


@dataclass(frozen=True)
class Pool:
    """A named set of architectural registers a live range may use."""

    name: str
    registers: tuple[Register, ...]

    def __len__(self) -> int:
        return len(self.registers)


#: Given a live range and its cluster (or None), return (pool, alternate pool).
#: The alternate pool is the "other cluster" fallback; None disables it.
PoolResolver = Callable[[LiveRange, Optional[int]], tuple[Pool, Optional[Pool]]]


@dataclass
class AllocationResult:
    """Outcome of register allocation.

    Attributes:
        coloring: lrid -> architectural register (for the final iteration's
            live ranges).
        lrs: the final iteration's live-range set (post spill rewriting).
        cluster_of: lrid -> cluster for the final ranges (None = oblivious).
        moved_ranges: names of ranges recoloured into the other cluster's
            pool by the multicluster spill policy.
        spills: cumulative spill book-keeping.
        iterations: colouring iterations performed.
    """

    coloring: dict[int, Register]
    lrs: LiveRangeSet
    cluster_of: dict[int, Optional[int]]
    moved_ranges: list[str] = field(default_factory=list)
    spills: SpillContext = field(default_factory=SpillContext)
    iterations: int = 1

    def register_for(self, lr: LiveRange) -> Register:
        return self.coloring[lr.lrid]


def _pools_overlap_cache() -> Callable[[Pool, Pool], bool]:
    cache: dict[tuple[str, str], bool] = {}

    def overlap(a: Pool, b: Pool) -> bool:
        key = (a.name, b.name) if a.name <= b.name else (b.name, a.name)
        hit = cache.get(key)
        if hit is None:
            hit = bool(set(a.registers) & set(b.registers))
            cache[key] = hit
        return hit

    return overlap


def color_graph(
    graph: InterferenceGraph,
    pool_of: dict[int, Pool],
    alt_pool_of: dict[int, Optional[Pool]],
    spill_weight_of: dict[int, float],
) -> tuple[dict[int, Register], list[int], list[int]]:
    """One Briggs colouring pass.

    Returns ``(coloring, memory_spill_lrids, moved_lrids)``.
    """
    overlap = _pools_overlap_cache()
    nodes = sorted(graph.adjacency.keys())

    # Effective degree: neighbours whose pools overlap ours compete for our
    # registers.  Maintained incrementally so simplification is O(V + E).
    eff_degree: dict[int, int] = {}
    for n in nodes:
        pn = pool_of[n]
        eff_degree[n] = sum(1 for m in graph.adjacency[n] if overlap(pn, pool_of[m]))

    stack: list[int] = []
    remaining = set(nodes)
    trivial = [n for n in nodes if eff_degree[n] < len(pool_of[n])]
    trivial_set = set(trivial)
    while remaining:
        if trivial:
            n = trivial.pop()
            trivial_set.discard(n)
            if n not in remaining:
                continue
        else:
            # Optimistic push of the cheapest spill candidate.
            n = min(
                remaining,
                key=lambda x: (
                    spill_weight_of[x] / (1.0 + len(graph.adjacency[x])),
                    x,
                ),
            )
        remaining.discard(n)
        stack.append(n)
        pn = pool_of[n]
        for m in graph.adjacency[n]:
            if m in remaining and overlap(pool_of[m], pn):
                eff_degree[m] -= 1
                if eff_degree[m] < len(pool_of[m]) and m not in trivial_set:
                    trivial.append(m)
                    trivial_set.add(m)

    coloring: dict[int, Register] = {}
    memory_spills: list[int] = []
    moved: list[int] = []
    for n in reversed(stack):
        used = {
            coloring[m] for m in graph.adjacency[n] if m in coloring
        }
        choice = _first_free(pool_of[n], used)
        if choice is None:
            alt = alt_pool_of.get(n)
            if alt is not None:
                choice = _first_free(alt, used)
                if choice is not None:
                    moved.append(n)
        if choice is None:
            memory_spills.append(n)
        else:
            coloring[n] = choice
    return coloring, memory_spills, moved


def _first_free(pool: Pool, used: set[Register]) -> Optional[Register]:
    for reg in pool.registers:
        if reg not in used:
            return reg
    return None


def allocate_registers(
    program: ILProgram,
    resolver: PoolResolver,
    cluster_by_value: Optional[dict[int, int]] = None,
    max_iterations: int = 12,
    num_clusters: int = 2,
) -> AllocationResult:
    """Allocate architectural registers for ``program`` (rewrites it on spill).

    Args:
        program: the IL program; spill code may be inserted in place.
        resolver: maps each live range (and its cluster) to register pools.
        cluster_by_value: vid -> cluster partition produced by a
            live-range partitioner; ``None`` for cluster-oblivious
            allocation (the "native binary" of Section 4).
        max_iterations: safety bound on spill/recolour rounds.
        num_clusters: how many clusters the partition spans — a range
            recoloured into its alternate pool moves to the *next*
            cluster modulo this (the pool resolver's fallback order).
    """
    cluster_by_value = dict(cluster_by_value or {})
    spills = SpillContext()
    all_moved: list[str] = []

    for iteration in range(1, max_iterations + 1):
        program.renumber()
        lrs = build_live_ranges(program)
        designate_global_candidates(lrs)
        compute_spill_weights(program, lrs)

        cluster_of: dict[int, Optional[int]] = {}
        pool_of: dict[int, Pool] = {}
        alt_pool_of: dict[int, Optional[Pool]] = {}
        weight_of: dict[int, float] = {}
        for lr in lrs:
            cluster = cluster_by_value.get(lr.value.vid)
            cluster_of[lr.lrid] = None if lr.global_candidate else cluster
            pool, alt = resolver(lr, cluster_of[lr.lrid])
            pool_of[lr.lrid] = pool
            alt_pool_of[lr.lrid] = alt
            # Spill temporaries must not spill again: make them precious.
            weight = lr.spill_weight
            if lr.value.vid in spills.temp_vids or not lr.def_uids:
                weight = float("inf")
            weight_of[lr.lrid] = weight

        graph = InterferenceGraph.build(program, lrs)
        coloring, memory_spills, moved = color_graph(
            graph, pool_of, alt_pool_of, weight_of
        )
        for n in moved:
            all_moved.append(lrs.ranges[n].name)
            # The range now lives in the other cluster's registers; update
            # the partition so lowering reports distribution truthfully.
            old = cluster_of[n]
            if old is not None:
                moved_to = (old + 1) % num_clusters
                cluster_by_value[lrs.ranges[n].value.vid] = moved_to
                cluster_of[n] = moved_to

        if not memory_spills:
            return AllocationResult(
                coloring=coloring,
                lrs=lrs,
                cluster_of=cluster_of,
                moved_ranges=all_moved,
                spills=spills,
                iterations=iteration,
            )

        spill_ranges = [lrs.ranges[n] for n in memory_spills]
        if any(lr.value.vid in spills.temp_vids for lr in spill_ranges):
            raise AllocationError(
                "spill temporaries failed to colour; register pressure is "
                "pathological for this machine"
            )
        insert_spill_code(program, spill_ranges, spills, cluster_by_value, cluster_of)

    raise AllocationError(f"allocation did not converge in {max_iterations} iterations")
