"""The six-step code-generation pipeline of Section 3.1.

1. Conventional optimization of the IL.
2. Prepass code scheduling (per basic block).
3. Designation of global-register candidates (stack/global pointer).
4. Live-range partitioning (pluggable
   :class:`~repro.core.partition.base.Partitioner`; ``None`` reproduces the
   *native binary* — cluster-oblivious allocation, Table 2 column 2).
5. Graph-colouring register allocation (global candidates to global
   registers, local candidates to their cluster's registers; spill first to
   the other cluster, then to memory).
6. Final (postpass) scheduling of the machine code including spill code.

:func:`compile_program` runs the pipeline and returns a
:class:`CompilationResult` carrying the machine program plus everything an
experiment needs to report: the partition, allocation book-keeping, and
static distribution statistics.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.registers import RegisterClass
from repro.ir.live_range import LiveRange, LiveRangeSet
from repro.ir.machine_program import MachineProgram
from repro.ir.program import ILProgram
from repro.compiler.lowering import lower_program
from repro.compiler.passes import optimize_program
from repro.compiler.profiling import profile_analytically, profile_by_walk
from repro.compiler.regalloc import (
    AllocationResult,
    Pool,
    allocate_registers,
)
from repro.compiler.scheduling import schedule_machine_program, schedule_program
from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.balance import DistributionStats, static_distribution_stats
from repro.core.partition.base import Partitioner
from repro.core.registers import RegisterAssignment


@dataclass
class CompilerOptions:
    """Knobs for the code-generation pipeline.

    Attributes:
        optimize: run the conventional optimization passes (step 1).
        prepass_schedule: run per-block list scheduling before partitioning
            (step 2; the methodology requires it, but it is switchable for
            ablation).
        postpass_schedule: re-schedule the machine code after allocation
            (step 6).
        schedule_width: virtual issue width the list scheduler targets.
        profile: ``"analytic"`` solves the CFG flow equations,
            ``"walk"`` profiles a stochastic execution, ``"keep"`` trusts
            the counts already present on the blocks.
        profile_seed: RNG seed for ``"walk"`` profiling.
        copy_program: compile a deep copy, leaving the input IL untouched.
    """

    optimize: bool = True
    prepass_schedule: bool = True
    postpass_schedule: bool = True
    schedule_width: int = 8
    profile: str = "analytic"
    profile_seed: int = 1
    copy_program: bool = True


@dataclass
class CompilationResult:
    """Everything produced by one run of the pipeline."""

    program: ILProgram
    machine: MachineProgram
    lrs: LiveRangeSet
    allocation: AllocationResult
    assignment: RegisterAssignment
    partitioner_name: str
    partition_by_value: dict[int, int] = field(default_factory=dict)
    optimization_counts: dict[str, int] = field(default_factory=dict)
    distribution: Optional[DistributionStats] = None

    @property
    def spill_loads(self) -> int:
        return self.allocation.spills.total_loads

    @property
    def spill_stores(self) -> int:
        return self.allocation.spills.total_stores


def make_pool_resolver(assignment: RegisterAssignment, oblivious: bool):
    """Build the allocator's pool resolver for a register assignment.

    In oblivious mode every local candidate may use any allocatable
    register of its class (the native compiler's view); otherwise pools are
    the per-cluster register sets, with the other cluster's pool as the
    spill fallback (Section 3.4).  Global candidates always draw from the
    global registers; a class with no global registers falls back to the
    full pool (cannot happen for the default assignments, which reserve
    SP/GP).
    """
    from repro.isa.registers import GLOBAL_POINTER, STACK_POINTER, allocatable_registers

    all_int = Pool("int-all", allocatable_registers(RegisterClass.INT))
    all_fp = Pool("fp-all", allocatable_registers(RegisterClass.FP))
    if assignment.num_clusters > 1:
        global_int = Pool("int-global", assignment.global_registers(RegisterClass.INT))
        global_fp = Pool("fp-global", assignment.global_registers(RegisterClass.FP))
    else:
        # Single cluster: the stack/global pointers live in their
        # conventional registers, as a real compiler would place them.
        global_int = Pool("int-global", (STACK_POINTER, GLOBAL_POINTER))
        global_fp = Pool("fp-global", ())
    cluster_pools: dict[tuple[int, RegisterClass], Pool] = {}
    if assignment.num_clusters > 1:
        for c in range(assignment.num_clusters):
            for rclass in RegisterClass:
                cluster_pools[(c, rclass)] = Pool(
                    f"{rclass.value}-c{c}", assignment.local_registers(c, rclass)
                )

    def resolver(lr: LiveRange, cluster: Optional[int]) -> tuple[Pool, Optional[Pool]]:
        rclass = lr.rclass
        if lr.global_candidate:
            pool = global_int if rclass is RegisterClass.INT else global_fp
            if len(pool) == 0:
                pool = all_int if rclass is RegisterClass.INT else all_fp
            return pool, None
        if oblivious or assignment.num_clusters == 1 or cluster is None:
            return (all_int if rclass is RegisterClass.INT else all_fp), None
        own = cluster_pools[(cluster, rclass)]
        other = cluster_pools[((cluster + 1) % assignment.num_clusters, rclass)]
        return own, other

    return resolver


def compile_program(
    program: ILProgram,
    assignment: RegisterAssignment,
    partitioner: Optional[Partitioner] = None,
    options: Optional[CompilerOptions] = None,
) -> CompilationResult:
    """Run the six-step pipeline.

    Args:
        program: the IL program (finalized).
        assignment: the machine's architectural-register-to-cluster map.
        partitioner: live-range partitioner; ``None`` compiles the
            cluster-oblivious native binary.
        options: pipeline knobs.
    """
    options = options or CompilerOptions()
    if options.copy_program:
        program = copy.deepcopy(program)

    # Step 1: conventional optimization.
    opt_counts: dict[str, int] = {}
    if options.optimize:
        opt_counts = optimize_program(program)

    # Step 2: prepass scheduling.
    if options.prepass_schedule:
        schedule_program(program, options.schedule_width)

    # Profiling (footnote 1 of Section 3.5).
    if options.profile == "analytic":
        profile_analytically(program)
    elif options.profile == "walk":
        profile_by_walk(program, seed=options.profile_seed)
    elif options.profile != "keep":
        raise ValueError(f"unknown profile mode: {options.profile}")

    # Step 3: global-candidate designation, on fresh live ranges.
    program.renumber()
    lrs = build_live_ranges(program)
    designate_global_candidates(lrs)

    # Step 4: live-range partitioning.
    partition_by_value: dict[int, int] = {}
    partitioner_name = "none"
    distribution: Optional[DistributionStats] = None
    if partitioner is not None:
        partitioner_name = partitioner.name
        partition_by_lrid = partitioner.partition(program, lrs)
        for lr in lrs:
            cluster = partition_by_lrid.get(lr.lrid)
            if cluster is not None and lr.value.vid not in partition_by_value:
                partition_by_value[lr.value.vid] = cluster
        cluster_of = {lr.lrid: partition_by_lrid.get(lr.lrid) for lr in lrs}
        distribution = static_distribution_stats(
            program, lrs, cluster_of, assignment.num_clusters
        )

    # Step 5: register allocation (may insert spill code into `program`).
    resolver = make_pool_resolver(assignment, oblivious=partitioner is None)
    allocation = allocate_registers(
        program,
        resolver,
        cluster_by_value=partition_by_value if partitioner is not None else None,
        num_clusters=assignment.num_clusters,
    )

    # Lower to machine code; step 6: postpass scheduling.
    machine = lower_program(program, allocation)
    if options.postpass_schedule:
        schedule_machine_program(machine, options.schedule_width)

    return CompilationResult(
        program=program,
        machine=machine,
        lrs=allocation.lrs,
        allocation=allocation,
        assignment=assignment,
        partitioner_name=partitioner_name,
        partition_by_value=partition_by_value,
        optimization_counts=opt_counts,
        distribution=distribution,
    )
