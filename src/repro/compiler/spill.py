"""Spill-code insertion.

When the allocator cannot colour a live range it is spilled to memory
(Section 3.4): a store is inserted after every definition and a load before
every use, each through a fresh short-lived temporary.  Spill slots live in
a dedicated stack region; the trace generator maps the ``__spill<N>``
address-stream annotation to ``spill_base + 8 * N`` so spill traffic is
cache-friendly, mirroring real stack spills.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass
from repro.ir.instructions import ILInstruction
from repro.ir.live_range import LiveRange
from repro.ir.program import ILProgram
from repro.ir.values import ILValue

#: Prefix recognized by the trace generator for spill-slot address streams.
SPILL_STREAM_PREFIX = "__spill"

_LOAD_OPCODE = {RegisterClass.INT: Opcode.LDQ, RegisterClass.FP: Opcode.LDT}
_STORE_OPCODE = {RegisterClass.INT: Opcode.STQ, RegisterClass.FP: Opcode.STT}


@dataclass
class SpillRecord:
    """Book-keeping for one spilled live range."""

    range_name: str
    slot: int
    stores_inserted: int = 0
    loads_inserted: int = 0
    temp_values: list[ILValue] = field(default_factory=list)


class SpillContext:
    """Allocates spill slots and tracks cumulative spill statistics."""

    def __init__(self) -> None:
        self.next_slot = 0
        self.records: list[SpillRecord] = []
        #: vids of spill temporaries — the allocator must never respill these.
        self.temp_vids: set[int] = set()

    @property
    def total_loads(self) -> int:
        return sum(r.loads_inserted for r in self.records)

    @property
    def total_stores(self) -> int:
        return sum(r.stores_inserted for r in self.records)


def insert_spill_code(
    program: ILProgram,
    spilled: list[LiveRange],
    context: SpillContext,
    cluster_by_value: dict[int, int],
    cluster_of: dict[int, int | None],
) -> None:
    """Rewrite ``program`` in place, spilling each range in ``spilled``.

    ``cluster_by_value`` (vid -> cluster) is updated so that spill
    temporaries inherit the cluster of the range they replace, keeping the
    partition stable across allocation iterations.  ``cluster_of`` maps
    lrid -> cluster for the current iteration's ranges.
    """
    sp = program.stack_pointer
    if sp is None:
        sp = program.new_value("SP", RegisterClass.INT, is_stack_pointer=True)

    plan: dict[int, tuple[LiveRange, SpillRecord]] = {}
    for lr in spilled:
        record = SpillRecord(lr.name, context.next_slot)
        context.next_slot += 1
        context.records.append(record)
        plan[lr.lrid] = (lr, record)

    # Group rewrites by instruction uid.
    def_rewrites: dict[int, tuple[LiveRange, SpillRecord]] = {}
    use_rewrites: dict[int, list[tuple[LiveRange, SpillRecord]]] = {}
    for lr, record in plan.values():
        for uid in lr.def_uids:
            def_rewrites[uid] = (lr, record)
        for uid in lr.use_uids:
            use_rewrites.setdefault(uid, []).append((lr, record))

    for block in program.cfg.blocks():
        new_body: list[ILInstruction] = []
        for instr in block.instructions:
            current = instr
            # Loads before uses.
            for lr, record in use_rewrites.get(instr.uid, []):
                temp = program.new_value(
                    f"{lr.name}.u{instr.uid}", lr.rclass
                )
                record.temp_values.append(temp)
                context.temp_vids.add(temp.vid)
                record.loads_inserted += 1
                if lr.value.vid in cluster_by_value:
                    cluster_by_value[temp.vid] = cluster_by_value[lr.value.vid]
                elif cluster_of.get(lr.lrid) is not None:
                    cluster_by_value[temp.vid] = cluster_of[lr.lrid]  # type: ignore[assignment]
                new_body.append(
                    ILInstruction(
                        _LOAD_OPCODE[lr.rclass],
                        dest=temp,
                        srcs=(sp,),
                        imm=8 * record.slot,
                        mem_stream=f"{SPILL_STREAM_PREFIX}{record.slot}",
                    )
                )
                current = current.replace(
                    srcs=tuple(temp if s is lr.value else s for s in current.srcs)
                )
            # Definition: write a temp, then store it.
            pending_store = None
            if instr.uid in def_rewrites:
                lr, record = def_rewrites[instr.uid]
                temp = program.new_value(f"{lr.name}.d{instr.uid}", lr.rclass)
                record.temp_values.append(temp)
                context.temp_vids.add(temp.vid)
                record.stores_inserted += 1
                if lr.value.vid in cluster_by_value:
                    cluster_by_value[temp.vid] = cluster_by_value[lr.value.vid]
                elif cluster_of.get(lr.lrid) is not None:
                    cluster_by_value[temp.vid] = cluster_of[lr.lrid]  # type: ignore[assignment]
                current = current.replace(dest=temp)
                pending_store = ILInstruction(
                    _STORE_OPCODE[lr.rclass],
                    srcs=(temp, sp),
                    imm=8 * record.slot,
                    mem_stream=f"{SPILL_STREAM_PREFIX}{record.slot}",
                )
            new_body.append(current)
            if pending_store is not None:
                new_body.append(pending_store)
        block.instructions = new_body
    program.renumber()
