"""Lowering: IL program + register allocation -> machine program.

IL instructions map one-to-one onto machine instructions; lowering simply
substitutes the architectural register chosen for each operand's live range
and copies the trace-generation annotations into the machine instruction's
sidecar metadata.  Must run on the exact program state the allocator
finished with (the allocation's maps are keyed by instruction uid).
"""

from __future__ import annotations

from repro.isa.instructions import MachineInstruction
from repro.isa.registers import Register
from repro.ir.machine_program import MachineInstrMeta, MachineProgram
from repro.ir.program import ILProgram
from repro.compiler.regalloc import AllocationResult
from repro.compiler.spill import SPILL_STREAM_PREFIX


class LoweringError(Exception):
    """An operand had no allocated register (internal invariant violation)."""


def lower_program(program: ILProgram, allocation: AllocationResult) -> MachineProgram:
    """Produce the machine program for ``program`` under ``allocation``."""
    lrs = allocation.lrs
    machine = MachineProgram(program.name)
    for block in program.cfg.blocks():
        mblock = machine.add_block(block.label)
        mblock.succ_labels = list(block.succ_labels)
        mblock.edge_probs = dict(block.edge_probs)
        mblock.profile_count = block.profile_count
        for instr in block.instructions:
            srcs: list[Register] = []
            for src in instr.srcs:
                lr = lrs.use_map.get((instr.uid, src))
                if lr is None:
                    raise LoweringError(f"no live range for use of {src} at {instr!r}")
                reg = allocation.coloring.get(lr.lrid)
                if reg is None:
                    raise LoweringError(f"no register for {lr!r} at {instr!r}")
                srcs.append(reg)
            dest = None
            if instr.dest is not None:
                lr = lrs.def_map.get((instr.uid, instr.dest))
                if lr is None:
                    raise LoweringError(f"no live range for def of {instr.dest} at {instr!r}")
                dest = allocation.coloring.get(lr.lrid)
                if dest is None:
                    raise LoweringError(f"no register for {lr!r} at {instr!r}")
            mblock.add(
                MachineInstruction(
                    opcode=instr.opcode,
                    dest=dest,
                    srcs=tuple(srcs),
                    imm=instr.imm,
                    target=instr.target,
                ),
                MachineInstrMeta(
                    il_uid=instr.uid,
                    mem_stream=instr.mem_stream,
                    branch_model=instr.branch_model,
                    is_spill=bool(
                        instr.mem_stream
                        and instr.mem_stream.startswith(SPILL_STREAM_PREFIX)
                    ),
                ),
            )
    machine.assign_pcs()
    return machine
