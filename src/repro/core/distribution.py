"""Instruction distribution: which cluster(s) execute an instruction.

Implements Section 2.1's rules.  "Multiple-cluster execution is used
whenever an instruction either names source registers that are not
accessible from within one cluster or names a destination register that is
not uniquely assigned to one cluster."  When dual distribution is needed,
the master copy "is executed by cluster [c] because the majority of the
local registers named by the instruction are assigned to cluster [c]".

The planning logic is expressed over abstract *cluster sets* so the same
code serves two callers:

* the hardware model, which resolves architectural registers through a
  :class:`~repro.core.registers.RegisterAssignment`;
* the compiler's balance estimator, which resolves IL operands through a
  (possibly partial) live-range partition — unassigned ranges act as
  wildcards accessible from every cluster.

The five execution scenarios of Section 2.1 are the values of
:class:`Scenario`; Figures 2-5 of the paper illustrate scenarios 2-5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.isa.instructions import MachineInstruction
from repro.core.registers import RegisterAssignment


class Scenario(enum.Enum):
    """Execution scenarios of Section 2.1 (Figures 2-5 show 2-5)."""

    SINGLE = 1              # scenario 1: all registers in one cluster
    DUAL_OPERAND = 2        # scenario 2: slave forwards a source operand
    DUAL_RESULT = 3         # scenario 3: master forwards the result
    DUAL_GLOBAL = 4         # scenario 4: global destination, sources co-located
    DUAL_OPERAND_GLOBAL = 5  # scenario 5: operand forwarded AND global dest
    #: Not enumerated in the paper's walk-through but reachable: sources
    #: split across clusters and the (local) destination lives with the
    #: minority source, so both an operand and the result are forwarded.
    DUAL_OPERAND_RESULT = 6

    @property
    def is_dual(self) -> bool:
        return self is not Scenario.SINGLE


@dataclass(frozen=True)
class DistributionPlan:
    """How one instruction is distributed and executed.

    Attributes:
        scenario: which of the Section 2.1 scenarios applies.
        master: cluster that performs the computation.
        slave: the *primary* helper cluster for dual distribution, else
            ``None``.  On a two-cluster machine this is the only helper;
            with more clusters it is ``slaves[0]``.
        forwarded_src_indices: positions (into the instruction's source
            list) of operands a slave reads and forwards to the master
            through the slave-side issue slot and the master's operand
            transfer buffer.
        result_forwarded: the master sends its result through a slave
            cluster's result transfer buffer (scenarios 3, 4, 5, 6).
        global_dest: the destination is a global register — every copy
            allocates a physical register and every register file is
            written (scenarios 4 and 5).
        slaves: every helper cluster, in deterministic order (operand
            homes in source order, then result receivers).  Length one on
            two-cluster machines; an instruction on an N-cluster machine
            can name registers homed in three or more clusters and then
            needs one slave copy per remote cluster.
        forwarded_homes: aligned with ``forwarded_src_indices`` — the
            cluster whose slave copy reads and ships that source.
        result_receivers: clusters (other than the master) whose result
            transfer buffer receives the master's result: the
            destination's home when it is a remote local register, or
            every other cluster when the destination is global.
    """

    scenario: Scenario
    master: int
    slave: Optional[int] = None
    forwarded_src_indices: tuple[int, ...] = ()
    result_forwarded: bool = False
    global_dest: bool = False
    slaves: tuple[int, ...] = ()
    forwarded_homes: tuple[int, ...] = ()
    result_receivers: tuple[int, ...] = ()

    @property
    def is_dual(self) -> bool:
        return self.slave is not None

    @property
    def clusters(self) -> tuple[int, ...]:
        if self.slave is None:
            return (self.master,)
        if self.slaves:
            return (self.master, *self.slaves)
        return (self.master, self.slave)


def plan_distribution(
    src_clusters: Sequence[Optional[frozenset[int]]],
    dest_clusters: Optional[frozenset[int]],
    num_clusters: int,
    preferred: int = 0,
) -> DistributionPlan:
    """Plan distribution from abstract operand cluster sets.

    Args:
        src_clusters: per source operand, the set of clusters that can read
            it; ``None`` marks an operand with no constraint (zero register
            or unpartitioned live range) which is accessible everywhere.
        dest_clusters: cluster set of the destination, or ``None`` when the
            instruction has no destination (or writes a zero register).
        num_clusters: cluster count of the machine.
        preferred: tie-break/default cluster for unconstrained instructions
            (the hardware alternates; callers pass their policy's choice).
    """
    everywhere = frozenset(range(num_clusters))
    srcs = [s if s is not None else everywhere for s in src_clusters]

    if num_clusters == 1:
        return DistributionPlan(Scenario.SINGLE, master=0)

    readable = everywhere
    for s in srcs:
        readable &= s

    global_dest = dest_clusters is not None and len(dest_clusters) == num_clusters
    dest_home: Optional[int] = None
    if dest_clusters is not None and len(dest_clusters) == 1:
        dest_home = next(iter(dest_clusters))

    # --- single distribution -------------------------------------------------
    if not global_dest:
        if dest_home is not None:
            if dest_home in readable:
                return DistributionPlan(Scenario.SINGLE, master=dest_home)
        elif readable:
            master = preferred if preferred in readable else min(readable)
            return DistributionPlan(Scenario.SINGLE, master=master)

    # --- dual distribution ---------------------------------------------------
    # Master selection: majority vote over the named local registers
    # (Section 2.1, scenario 2); the destination participates in the vote.
    votes = [0] * num_clusters
    for s in srcs:
        if len(s) == 1:
            votes[next(iter(s))] += 1
    if dest_home is not None:
        votes[dest_home] += 1

    if readable:
        # All sources are co-located (or wildcarded): compute where they are.
        master = preferred if preferred in readable else min(readable)
        if dest_home is not None and dest_home in readable:
            # Only a global destination forced dual distribution.
            master = dest_home
    else:
        best = max(votes)
        candidates = [c for c in range(num_clusters) if votes[c] == best]
        master = preferred if preferred in candidates else candidates[0]
    forwarded = tuple(
        i for i, s in enumerate(srcs) if master not in s
    )
    #: Each forwarded source is shipped by the slave copy in its home
    #: cluster (the minimum of its set keeps planning deterministic; for
    #: a local register the set is a singleton).
    forwarded_homes = tuple(min(srcs[i]) for i in forwarded)
    result_forwarded = global_dest or (dest_home is not None and dest_home != master)

    if global_dest:
        result_receivers = tuple(
            c for c in range(num_clusters) if c != master
        )
    elif dest_home is not None and dest_home != master:
        result_receivers = (dest_home,)
    else:
        result_receivers = ()

    slaves: list[int] = []
    for c in (*forwarded_homes, *result_receivers):
        if c not in slaves:
            slaves.append(c)
    slave = slaves[0]

    if global_dest:
        scenario = (
            Scenario.DUAL_OPERAND_GLOBAL if forwarded else Scenario.DUAL_GLOBAL
        )
    elif forwarded and result_forwarded:
        scenario = Scenario.DUAL_OPERAND_RESULT
    elif forwarded:
        scenario = Scenario.DUAL_OPERAND
    else:
        scenario = Scenario.DUAL_RESULT

    return DistributionPlan(
        scenario=scenario,
        master=master,
        slave=slave,
        forwarded_src_indices=forwarded,
        result_forwarded=result_forwarded,
        global_dest=global_dest,
        slaves=tuple(slaves),
        forwarded_homes=forwarded_homes,
        result_receivers=result_receivers,
    )


def plan_for_instruction(
    instr: MachineInstruction,
    assignment: RegisterAssignment,
    preferred: int = 0,
) -> DistributionPlan:
    """Distribution plan for a machine instruction under ``assignment``."""
    src_sets: list[Optional[frozenset[int]]] = []
    for reg in instr.srcs:
        src_sets.append(None if reg.is_zero else assignment.clusters_of(reg))
    dest = instr.effective_dest
    dest_set = assignment.clusters_of(dest) if dest is not None else None
    return plan_distribution(
        src_sets, dest_set, assignment.num_clusters, preferred=preferred
    )
