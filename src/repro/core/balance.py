"""Compile-time distribution and balance estimation.

The compiler "can only indirectly address the workload balance by seeking
to balance the dynamic distribution of instructions" (Section 3).  These
utilities estimate, from a (possibly partial) live-range partition, how IL
instructions would distribute — the model the local scheduler uses to
detect imbalance, and the reporting model for static distribution
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import ILInstruction
from repro.ir.live_range import LiveRangeSet
from repro.ir.program import ILProgram
from repro.core.distribution import DistributionPlan, Scenario, plan_distribution


def il_plan(
    instr: ILInstruction,
    lrs: LiveRangeSet,
    cluster_of: dict[int, Optional[int]],
    num_clusters: int = 2,
    preferred: int = 0,
) -> DistributionPlan:
    """Distribution plan for an IL instruction under a live-range partition.

    ``cluster_of`` maps lrid -> cluster; a missing/None entry is a wildcard
    (unassigned range), and global candidates are accessible everywhere.
    """
    everywhere = frozenset(range(num_clusters))
    src_sets: list[Optional[frozenset[int]]] = []
    for src in instr.srcs:
        lr = lrs.use_map.get((instr.uid, src))
        if lr is None:
            src_sets.append(None)
        elif lr.global_candidate:
            src_sets.append(everywhere)
        else:
            cluster = cluster_of.get(lr.lrid)
            src_sets.append(None if cluster is None else frozenset({cluster}))
    dest_set: Optional[frozenset[int]] = None
    if instr.dest is not None:
        lr = lrs.def_map.get((instr.uid, instr.dest))
        if lr is not None:
            if lr.global_candidate:
                dest_set = everywhere
            else:
                cluster = cluster_of.get(lr.lrid)
                dest_set = None if cluster is None else frozenset({cluster})
    return plan_distribution(src_sets, dest_set, num_clusters, preferred=preferred)


def imbalance_around(
    block: BasicBlock,
    index: int,
    lrs: LiveRangeSet,
    cluster_of: dict[int, Optional[int]],
    num_clusters: int = 2,
    scope: str = "block",
) -> int:
    """Signed distribution imbalance in the vicinity of instruction ``index``.

    Section 3.5: the distribution is unbalanced around an instruction if,
    when it is distributed, "there has been more than a given number of
    instructions distributed to one cluster than the other".  Counting is
    per block (per-basic-block estimation is mandated by Section 3.3);
    positive means cluster 0 is over-subscribed.  Instructions whose
    distribution is still undetermined (wildcard operands) and
    dual-distributed instructions (which go to both clusters) contribute
    zero.

    ``scope`` selects the estimate: ``"block"`` (default) counts the whole
    block — since blocks repeat at run time, a block's net imbalance *is*
    the per-visit run-time imbalance contribution, and the bottom-up
    traversal has already fixed the distribution of the instructions below
    ``index`` — while ``"prefix"`` counts only the instructions fetched
    before ``index`` (a strictly local reading of the paper's wording,
    kept for ablation).
    """
    instructions = block.instructions[:index] if scope == "prefix" else block.instructions
    imbalance = 0
    for instr in instructions:
        plan = il_plan(instr, lrs, cluster_of, num_clusters)
        if not plan.is_dual and _is_partially_determined(instr, lrs, cluster_of):
            imbalance += 1 if plan.master == 0 else -1
    return imbalance


def imbalance_before(
    block: BasicBlock,
    index: int,
    lrs: LiveRangeSet,
    cluster_of: dict[int, Optional[int]],
    num_clusters: int = 2,
) -> int:
    """Prefix-scope imbalance (see :func:`imbalance_around`)."""
    return imbalance_around(block, index, lrs, cluster_of, num_clusters, scope="prefix")


def _is_partially_determined(
    instr: ILInstruction,
    lrs: LiveRangeSet,
    cluster_of: dict[int, Optional[int]],
) -> bool:
    """True when at least one local-candidate operand has a cluster.

    An instruction with one assigned operand will, with high likelihood, be
    distributed where that operand lives (the preference arm keeps chains
    together), so it already contributes to the estimated distribution.
    Instructions naming only unassigned ranges contribute nothing yet.
    """
    for src in instr.srcs:
        lr = lrs.use_map.get((instr.uid, src))
        if lr is not None and not lr.global_candidate and cluster_of.get(lr.lrid) is not None:
            return True
    if instr.dest is not None:
        lr = lrs.def_map.get((instr.uid, instr.dest))
        if lr is not None and not lr.global_candidate and cluster_of.get(lr.lrid) is not None:
            return True
    return False


@dataclass
class DistributionStats:
    """Static distribution statistics, profile-weighted.

    Attributes:
        single_per_cluster: weighted instruction count distributed solely
            to each cluster.
        dual: weighted count of dual-distributed instructions.
        by_scenario: weighted counts per execution scenario.
    """

    single_per_cluster: list[float]
    dual: float = 0.0
    by_scenario: dict[Scenario, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.single_per_cluster) + self.dual

    @property
    def dual_fraction(self) -> float:
        return self.dual / self.total if self.total else 0.0

    @property
    def balance(self) -> float:
        """1.0 = perfectly balanced single-distribution, 0.0 = one-sided."""
        total_single = sum(self.single_per_cluster)
        if total_single == 0:
            return 1.0
        return 1.0 - (max(self.single_per_cluster) - min(self.single_per_cluster)) / total_single


def static_distribution_stats(
    program: ILProgram,
    lrs: LiveRangeSet,
    cluster_of: dict[int, Optional[int]],
    num_clusters: int = 2,
) -> DistributionStats:
    """Profile-weighted distribution statistics for a partitioned program."""
    stats = DistributionStats(single_per_cluster=[0.0] * num_clusters)
    for block in program.cfg.blocks():
        weight = float(max(block.profile_count, 1))
        for instr in block.instructions:
            plan = il_plan(instr, lrs, cluster_of, num_clusters)
            stats.by_scenario[plan.scenario] = (
                stats.by_scenario.get(plan.scenario, 0.0) + weight
            )
            if plan.is_dual:
                stats.dual += weight
            else:
                stats.single_per_cluster[plan.master] += weight
    return stats
