"""Architectural-register-to-cluster assignment.

Section 2.1: "Each cluster is assigned a subset of the architectural
registers.  We use the term *local register* to refer to an architectural
register that has been assigned to one cluster, and the term *global
register* to refer to an architectural register that has been assigned to
both clusters."

Section 4: "the schedulers assumed that the even-numbered architectural
registers were assigned to cluster [0] and the odd-numbered registers to
cluster [1]" — that even/odd map is the default here.  The zero registers
(``r31``/``f31``) are treated as global: they are readable everywhere and
never occupy a physical register.  The stack- and global-pointer registers
are global by default (Section 2.1: "Global registers would typically be
used for stack and global pointers").

The assignment is static (the paper assumes this; dynamic reassignment is
future work).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.isa.registers import (
    GLOBAL_POINTER,
    NUM_INT_REGS,
    STACK_POINTER,
    Register,
    RegisterClass,
    all_registers,
    allocatable_registers,
)


class RegisterAssignment:
    """Maps each architectural register to the set of clusters owning it."""

    def __init__(
        self,
        num_clusters: int,
        clusters_of: dict[Register, frozenset[int]],
    ) -> None:
        self.num_clusters = num_clusters
        self._clusters_of = dict(clusters_of)
        all_clusters = frozenset(range(num_clusters))
        for reg in all_registers():
            if reg.is_zero:
                self._clusters_of[reg] = all_clusters
            elif reg not in self._clusters_of:
                raise ValueError(f"no cluster assignment for {reg}")
            elif not self._clusters_of[reg]:
                raise ValueError(f"empty cluster assignment for {reg}")

    # -------------------------------------------------------------- queries
    def clusters_of(self, reg: Register) -> frozenset[int]:
        return self._clusters_of[reg]

    def is_global(self, reg: Register) -> bool:
        return len(self._clusters_of[reg]) == self.num_clusters and self.num_clusters > 1

    def is_local(self, reg: Register) -> bool:
        return len(self._clusters_of[reg]) == 1

    def home_cluster(self, reg: Register) -> Optional[int]:
        """The unique owning cluster for a local register, else ``None``."""
        clusters = self._clusters_of[reg]
        if len(clusters) == 1:
            return next(iter(clusters))
        return None

    def local_registers(
        self, cluster: int, rclass: RegisterClass
    ) -> tuple[Register, ...]:
        """Allocatable local registers of ``rclass`` owned by ``cluster``."""
        return tuple(
            r
            for r in allocatable_registers(rclass)
            if self._clusters_of[r] == frozenset({cluster})
        )

    def global_registers(self, rclass: RegisterClass) -> tuple[Register, ...]:
        """Non-zero registers of ``rclass`` assigned to every cluster."""
        full = frozenset(range(self.num_clusters))
        return tuple(
            r
            for r in all_registers()
            if r.rclass is rclass
            and not r.is_zero
            and self._clusters_of[r] == full
        )

    def describe(self) -> str:
        """Readable summary for reports."""
        parts = [f"{self.num_clusters} cluster(s)"]
        if self.num_clusters > 1:
            for c in range(self.num_clusters):
                ints = len(self.local_registers(c, RegisterClass.INT))
                fps = len(self.local_registers(c, RegisterClass.FP))
                parts.append(f"cluster {c}: {ints} int + {fps} fp locals")
            gi = len(self.global_registers(RegisterClass.INT))
            gf = len(self.global_registers(RegisterClass.FP))
            parts.append(f"globals: {gi} int + {gf} fp")
        return "; ".join(parts)

    # ------------------------------------------------------------ factories
    @classmethod
    def single_cluster(cls) -> "RegisterAssignment":
        """Every register lives in the one cluster of a monolithic machine."""
        one = frozenset({0})
        return cls(1, {r: one for r in all_registers()})

    @classmethod
    def even_odd_dual(
        cls, extra_globals: Iterable[Register] = ()
    ) -> "RegisterAssignment":
        """The paper's default: even registers -> cluster 0, odd -> cluster 1.

        The stack and global pointers (and any ``extra_globals``) are
        assigned to both clusters.
        """
        both = frozenset({0, 1})
        globals_ = {STACK_POINTER, GLOBAL_POINTER, *extra_globals}
        mapping: dict[Register, frozenset[int]] = {}
        for reg in all_registers():
            if reg in globals_:
                mapping[reg] = both
            else:
                mapping[reg] = frozenset({reg.index % 2})
        return cls(2, mapping)

    @classmethod
    def round_robin(
        cls, num_clusters: int, extra_globals: Iterable[Register] = ()
    ) -> "RegisterAssignment":
        """The even/odd map generalized to N clusters: ``reg.index % N``.

        The stack and global pointers (and any ``extra_globals``) are
        assigned to every cluster.  ``round_robin(1)`` is the monolithic
        machine and ``round_robin(2)`` is exactly :meth:`even_odd_dual`,
        so the N-cluster design-space gym and the paper's two fixed
        machines share one assignment family.
        """
        if num_clusters < 1:
            raise ValueError(f"round_robin needs >= 1 cluster, got {num_clusters}")
        every = frozenset(range(num_clusters))
        globals_ = {STACK_POINTER, GLOBAL_POINTER, *extra_globals}
        mapping: dict[Register, frozenset[int]] = {}
        for reg in all_registers():
            if num_clusters > 1 and reg in globals_:
                mapping[reg] = every
            else:
                mapping[reg] = frozenset({reg.index % num_clusters})
        return cls(num_clusters, mapping)

    @classmethod
    def low_high_dual(
        cls, extra_globals: Iterable[Register] = ()
    ) -> "RegisterAssignment":
        """Ablation variant: registers 0..15 -> cluster 0, 16..31 -> cluster 1."""
        both = frozenset({0, 1})
        globals_ = {STACK_POINTER, GLOBAL_POINTER, *extra_globals}
        mapping: dict[Register, frozenset[int]] = {}
        half = NUM_INT_REGS // 2
        for reg in all_registers():
            if reg in globals_:
                mapping[reg] = both
            else:
                mapping[reg] = frozenset({0 if reg.index < half else 1})
        return cls(2, mapping)
