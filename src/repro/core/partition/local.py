"""The local scheduler — the paper's live-range partitioning algorithm.

Section 3.5, reproduced faithfully:

1. Sort the basic blocks by the estimated execution count of each block's
   first instruction (profile-derived); blocks with equal estimates sort
   by static instruction count.  Largest first.
2. Remove the top block and traverse its instructions **bottom-up, in
   order** (last instruction first).
3. When the visited instruction *writes* an unassigned local-candidate
   live range, choose that range's cluster:

   * if the estimated instruction distribution around the instruction is
     **unbalanced** (one cluster got more than ``imbalance_threshold``
     instructions over the other — a compile-time constant), pick the
     under-subscribed cluster;
   * otherwise pick the cluster **preferred by the majority** of the
     instructions that read or write the range, where an instruction
     prefers cluster ``c`` if assigning the range to ``c`` lets it be
     distributed to a single cluster.

4. Repeat until every block has been traversed.  A range's cluster is
   fixed the first time a writing instruction is encountered.

For the example CFG of the paper's Figure 6 this visits blocks in the
order 4, 1, 5, 3, 2 and assigns live ranges in the order
C, G, B, A, E, D, H (S being a global candidate is skipped) — verified in
``tests/core/test_local_scheduler_figure6.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.basic_block import BasicBlock
from repro.ir.live_range import LiveRange, LiveRangeSet
from repro.ir.program import ILProgram
from repro.core.balance import il_plan, imbalance_around
from repro.core.partition.base import Partitioner, complete_partition


class LocalScheduler(Partitioner):
    """The paper's local scheduler (Section 3.5).

    ``imbalance_threshold`` is the compile-time constant of Section 3.5.
    ``imbalance_scope`` selects how the in-block distribution imbalance is
    estimated (see :func:`repro.core.balance.imbalance_around`); the
    default whole-block estimate is what makes the balancing arm engage on
    loop bodies.
    """

    name = "local"
    _token_fields = ('imbalance_threshold', 'imbalance_scope')

    def __init__(
        self,
        num_clusters: int = 2,
        imbalance_threshold: int = 2,
        imbalance_scope: str = "block",
    ) -> None:
        super().__init__(num_clusters)
        self.imbalance_threshold = imbalance_threshold
        self.imbalance_scope = imbalance_scope
        #: Order in which live ranges were assigned (for tests/examples).
        self.assignment_order: list[LiveRange] = []
        self._assigned_counts = [0] * num_clusters

    # ------------------------------------------------------------------ api
    def partition(self, program: ILProgram, lrs: LiveRangeSet) -> dict[int, int]:
        self.assignment_order = []
        self._assigned_counts = [0] * self.num_clusters
        cluster_of: dict[int, Optional[int]] = {
            lr.lrid: None for lr in lrs.local_candidates()
        }
        instr_by_uid = {i.uid: i for i in program.all_instructions()}
        uid_to_block: dict[int, tuple[BasicBlock, int]] = {}
        for block in program.cfg.blocks():
            for idx, instr in enumerate(block.instructions):
                uid_to_block[instr.uid] = (block, idx)

        for block in self.block_order(program):
            for index in range(len(block.instructions) - 1, -1, -1):
                instr = block.instructions[index]
                if instr.dest is None:
                    continue
                lr = lrs.def_map.get((instr.uid, instr.dest))
                if lr is None or lr.global_candidate:
                    continue
                if cluster_of.get(lr.lrid) is not None:
                    continue
                cluster = self._choose_cluster(
                    lr, block, index, lrs, cluster_of, instr_by_uid, uid_to_block
                )
                cluster_of[lr.lrid] = cluster
                self._assigned_counts[cluster] += 1
                self.assignment_order.append(lr)
        return complete_partition(lrs, cluster_of, self.num_clusters)

    # ------------------------------------------------------------- internals
    def block_order(self, program: ILProgram) -> list[BasicBlock]:
        """Blocks sorted by (execution estimate, static size), largest first.

        The size tie-break counts the block body excluding the terminator,
        matching the paper's Figure 6 example where blocks 2 and 3 have
        equal estimates and block 3's three (non-branch) instructions beat
        block 2's two.
        """
        blocks = list(program.cfg.blocks())
        return sorted(
            blocks,
            key=lambda b: (
                -b.profile_count,
                -len(b.body),
                program.cfg.layout_index(b.label),
            ),
        )

    def _choose_cluster(
        self,
        lr: LiveRange,
        block: BasicBlock,
        index: int,
        lrs: LiveRangeSet,
        cluster_of: dict[int, Optional[int]],
        instr_by_uid,
        uid_to_block,
    ) -> int:
        imbalance = imbalance_around(
            block, index, lrs, cluster_of, self.num_clusters, self.imbalance_scope
        )
        if abs(imbalance) > self.imbalance_threshold:
            # Unbalanced: assign to the under-subscribed cluster.
            return 1 if imbalance > 0 else 0

        votes = self._preference_votes(lr, lrs, cluster_of, instr_by_uid)
        best = max(votes)
        candidates = [c for c in range(self.num_clusters) if votes[c] == best]
        if len(candidates) == 1:
            return candidates[0]
        # Tie: lean against the (sub-threshold) block imbalance, then
        # against the global assignment balance, then cluster 0.
        if imbalance > 0 and 1 in candidates:
            return 1
        if imbalance < 0 and 0 in candidates:
            return 0
        return min(candidates, key=lambda c: self._assigned_counts[c])

    def _preference_votes(
        self,
        lr: LiveRange,
        lrs: LiveRangeSet,
        cluster_of: dict[int, Optional[int]],
        instr_by_uid,
    ) -> list[int]:
        """Section 3.5: an instruction prefers cluster ``c`` if assigning the
        range to ``c`` lets the instruction distribute to one cluster."""
        votes = [0] * self.num_clusters
        for uid in sorted(lr.reference_uids):
            instr = instr_by_uid.get(uid)
            if instr is None:
                continue
            for c in range(self.num_clusters):
                cluster_of[lr.lrid] = c
                plan = il_plan(instr, lrs, cluster_of, self.num_clusters)
                if not plan.is_dual:
                    votes[c] += 1
            cluster_of[lr.lrid] = None
        return votes
