"""Live-range partitioning (step 4 of the Section 3.1 methodology)."""

from repro.core.partition.affinity import AffinityPartitioner
from repro.core.partition.base import Partitioner, complete_partition
from repro.core.partition.baselines import (
    RandomPartitioner,
    RoundRobinPartitioner,
    SingleClusterPartitioner,
)
from repro.core.partition.local import LocalScheduler

__all__ = [
    "AffinityPartitioner",
    "Partitioner",
    "complete_partition",
    "RandomPartitioner",
    "RoundRobinPartitioner",
    "SingleClusterPartitioner",
    "LocalScheduler",
]
