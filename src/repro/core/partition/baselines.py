"""Baseline partitioners used for ablation against the local scheduler.

The paper's baseline ("none", Table 2 column 2) is the *native binary*
— compiled with a cluster-oblivious allocator and run as-is on the
dual-cluster machine; that is expressed in the pipeline by passing no
partitioner at all.  The partitioners here are additional reference
points: a deterministic round-robin and a seeded random assignment, each
balance-blind and dependence-blind.
"""

from __future__ import annotations

import random

from repro.ir.live_range import LiveRangeSet
from repro.ir.program import ILProgram
from repro.core.partition.base import Partitioner


class RoundRobinPartitioner(Partitioner):
    """Alternate clusters in live-range creation order."""

    name = "round-robin"

    def partition(self, program: ILProgram, lrs: LiveRangeSet) -> dict[int, int]:
        result: dict[int, int] = {}
        nxt = 0
        for lr in lrs.local_candidates():
            result[lr.lrid] = nxt
            nxt = (nxt + 1) % self.num_clusters
        return result


class RandomPartitioner(Partitioner):
    """Uniformly random assignment (seeded, reproducible)."""

    name = "random"
    _token_fields = ('seed',)

    def __init__(self, num_clusters: int = 2, seed: int = 0) -> None:
        super().__init__(num_clusters)
        self.seed = seed

    def partition(self, program: ILProgram, lrs: LiveRangeSet) -> dict[int, int]:
        rng = random.Random(self.seed)
        return {
            lr.lrid: rng.randrange(self.num_clusters)
            for lr in lrs.local_candidates()
        }


class SingleClusterPartitioner(Partitioner):
    """Degenerate assignment: everything on one cluster (sanity baseline).

    Useful in tests — it yields zero dual-distribution but maximal
    imbalance, the opposite corner from the local scheduler.
    """

    name = "one-sided"
    _token_fields = ('cluster',)

    def __init__(self, num_clusters: int = 2, cluster: int = 0) -> None:
        super().__init__(num_clusters)
        self.cluster = cluster

    def partition(self, program: ILProgram, lrs: LiveRangeSet) -> dict[int, int]:
        return {lr.lrid: self.cluster for lr in lrs.local_candidates()}
