"""Partitioner interface: live-range -> cluster assignment (step 4, §3.1)."""

from __future__ import annotations

import abc
from typing import Optional

from repro.ir.live_range import LiveRangeSet
from repro.ir.program import ILProgram


class Partitioner(abc.ABC):
    """Assigns each local-candidate live range to a cluster.

    Global-candidate live ranges are never partitioned — they live in
    global registers replicated across clusters.
    """

    #: Short name used in reports and experiment tables.
    name: str = "base"

    #: Constructor parameters (beyond ``num_clusters``) that change the
    #: partition a subclass produces; the artifact cache keys off these,
    #: never off mutable working state left behind by a ``partition`` run.
    _token_fields: tuple[str, ...] = ()

    def __init__(self, num_clusters: int = 2) -> None:
        self.num_clusters = num_clusters

    @property
    def cache_token(self) -> str:
        """Deterministic identity for artifact-cache keys."""
        params = [f"num_clusters={self.num_clusters}"]
        params.extend(f"{n}={getattr(self, n)}" for n in self._token_fields)
        return f"{type(self).__name__}({','.join(params)})"

    @abc.abstractmethod
    def partition(
        self, program: ILProgram, lrs: LiveRangeSet
    ) -> dict[int, int]:
        """Return lrid -> cluster for every local-candidate live range."""

    def partition_by_value(
        self, program: ILProgram, lrs: LiveRangeSet
    ) -> dict[int, int]:
        """vid -> cluster, collapsing multi-web values by first assignment.

        The register allocator re-derives live ranges on every spill
        iteration, so it consumes the partition keyed by value.  Values
        whose webs were assigned to different clusters take the assignment
        of their lowest-numbered web (a documented approximation; generated
        workloads are essentially single-web).
        """
        by_lrid = self.partition(program, lrs)
        result: dict[int, int] = {}
        for lr in lrs:
            cluster = by_lrid.get(lr.lrid)
            if cluster is not None and lr.value.vid not in result:
                result[lr.value.vid] = cluster
        return result


def complete_partition(
    lrs: LiveRangeSet, partial: dict[int, Optional[int]], num_clusters: int = 2
) -> dict[int, int]:
    """Fill unassigned local candidates round-robin (fallback used by
    partitioners for ranges no instruction writes)."""
    result: dict[int, int] = {}
    next_cluster = 0
    for lr in lrs:
        if lr.global_candidate:
            continue
        cluster = partial.get(lr.lrid)
        if cluster is None:
            cluster = next_cluster
            next_cluster = (next_cluster + 1) % num_clusters
        result[lr.lrid] = cluster
    return result
