"""Affinity-graph partitioning: a whole-program alternative partitioner.

Section 3.5 presents the local scheduler as "the most successful of the
static instruction scheduling algorithms we developed" — implying a family
of alternatives. This module implements a natural competitor for the
ablation study: build a weighted *affinity graph* over live ranges (edge
weight = profile-weighted count of instructions naming both ranges, i.e.
the dual-distribution cost of separating them) and split it with a
balance-constrained Kernighan–Lin refinement.

Compared with the local scheduler it is globally informed (it sees every
pairwise affinity at once) but balance-blind at the *instruction* level —
it balances live-range weight, not distribution — which is exactly the
distinction the paper's design argues matters.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.live_range import LiveRangeSet
from repro.ir.program import ILProgram
from repro.core.partition.base import Partitioner


class AffinityPartitioner(Partitioner):
    """Balanced two-way graph partitioning of the live-range affinity graph."""

    name = "affinity-kl"
    _token_fields = ('refinement_passes', 'balance_tolerance')

    def __init__(
        self,
        num_clusters: int = 2,
        refinement_passes: int = 4,
        balance_tolerance: float = 0.2,
    ) -> None:
        if num_clusters != 2:
            raise ValueError("the KL refinement is two-way only")
        super().__init__(num_clusters)
        self.refinement_passes = refinement_passes
        self.balance_tolerance = balance_tolerance

    # ------------------------------------------------------------------ api
    def partition(self, program: ILProgram, lrs: LiveRangeSet) -> dict[int, int]:
        candidates = lrs.local_candidates()
        if not candidates:
            return {}
        weights = self._affinity_weights(program, lrs)
        node_weight = {lr.lrid: max(lr.spill_weight, 1.0) for lr in candidates}

        # Initial split: alternate by total-affinity order (heavy nodes
        # spread first), which starts roughly balanced.
        totals = defaultdict(float)
        for (a, b), w in weights.items():
            totals[a] += w
            totals[b] += w
        ordered = sorted(
            (lr.lrid for lr in candidates),
            key=lambda n: (-totals[n], n),
        )
        side = {n: i % 2 for i, n in enumerate(ordered)}

        for _ in range(self.refinement_passes):
            if not self._refine(side, weights, node_weight):
                break
        return side

    # ------------------------------------------------------------ internals
    def _affinity_weights(
        self, program: ILProgram, lrs: LiveRangeSet
    ) -> dict[tuple[int, int], float]:
        """Edge weights: profile-weighted co-naming counts."""
        weights: dict[tuple[int, int], float] = defaultdict(float)
        for block in program.cfg.blocks():
            block_weight = float(max(block.profile_count, 1))
            for instr in block.instructions:
                named: list[int] = []
                for src in instr.srcs:
                    lr = lrs.use_map.get((instr.uid, src))
                    if lr is not None and not lr.global_candidate:
                        named.append(lr.lrid)
                if instr.dest is not None:
                    lr = lrs.def_map.get((instr.uid, instr.dest))
                    if lr is not None and not lr.global_candidate:
                        named.append(lr.lrid)
                named = sorted(set(named))
                for i, a in enumerate(named):
                    for b in named[i + 1 :]:
                        weights[(a, b)] += block_weight
        return dict(weights)

    def _refine(
        self,
        side: dict[int, int],
        weights: dict[tuple[int, int], float],
        node_weight: dict[int, float],
    ) -> bool:
        """One KL-style pass of greedy single-node moves; True if improved."""
        adjacency: dict[int, list[tuple[int, float]]] = defaultdict(list)
        for (a, b), w in weights.items():
            adjacency[a].append((b, w))
            adjacency[b].append((a, w))

        total_weight = sum(node_weight.values())
        limit = total_weight / 2 * (1 + self.balance_tolerance)
        side_weight = [0.0, 0.0]
        for n, s in side.items():
            side_weight[s] += node_weight[n]

        improved = False
        for n in sorted(side, key=lambda x: -node_weight[x]):
            s = side[n]
            external = sum(w for m, w in adjacency[n] if side.get(m, s) != s)
            internal = sum(w for m, w in adjacency[n] if side.get(m, s) == s)
            gain = external - internal
            if gain <= 0:
                continue
            if side_weight[1 - s] + node_weight[n] > limit:
                continue  # the move would unbalance the halves
            side[n] = 1 - s
            side_weight[s] -= node_weight[n]
            side_weight[1 - s] += node_weight[n]
            improved = True
        return improved
