"""The multicluster architecture's core mechanisms.

This package holds the paper's primary contribution: the register-to-
cluster assignment model, the instruction-distribution rules with the five
execution scenarios of Section 2.1, compile-time balance estimation, and
the live-range partitioners including the local scheduler of Section 3.5.
"""

from repro.core.balance import (
    DistributionStats,
    il_plan,
    imbalance_around,
    imbalance_before,
    static_distribution_stats,
)
from repro.core.distribution import (
    DistributionPlan,
    Scenario,
    plan_distribution,
    plan_for_instruction,
)
from repro.core.partition import (
    AffinityPartitioner,
    LocalScheduler,
    Partitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
    SingleClusterPartitioner,
)
from repro.core.registers import RegisterAssignment

__all__ = [
    "DistributionStats",
    "il_plan",
    "imbalance_around",
    "imbalance_before",
    "static_distribution_stats",
    "DistributionPlan",
    "Scenario",
    "plan_distribution",
    "plan_for_instruction",
    "AffinityPartitioner",
    "LocalScheduler",
    "Partitioner",
    "RandomPartitioner",
    "RoundRobinPartitioner",
    "SingleClusterPartitioner",
    "RegisterAssignment",
]
