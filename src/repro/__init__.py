"""Reproduction of the Multicluster Architecture (Farkas, Chow, Jouppi,
Vranesic -- MICRO-30, 1997).

The package is organized bottom-up:

* :mod:`repro.isa` -- Alpha-flavoured ISA (registers, opcodes, machine
  instructions).
* :mod:`repro.ir` -- compiler IR: IL values/instructions, basic blocks,
  CFGs, live ranges, machine programs.
* :mod:`repro.compiler` -- the six-step code-generation methodology of
  Section 3.1 (optimization, scheduling, webs, graph-colouring register
  allocation with cluster-aware spilling, lowering).
* :mod:`repro.core` -- the paper's contribution: register-to-cluster
  assignment, the instruction-distribution scenarios of Section 2.1, and
  the live-range partitioners including the local scheduler (Section 3.5).
* :mod:`repro.uarch` -- the cycle-level single-/dual-cluster processor of
  Section 4.1.
* :mod:`repro.workloads` -- synthetic SPEC92 stand-ins and trace generation.
* :mod:`repro.timing` -- Palacharla-style cycle-time models (Section 4.2).
* :mod:`repro.experiments` -- one harness per paper table/figure.

Quickstart::

    from repro.experiments import run_table2, format_table2
    print(format_table2(run_table2(["compress"]), detailed=True))
"""

from repro.compiler import CompilationResult, CompilerOptions, compile_program
from repro.core import (
    DistributionPlan,
    LocalScheduler,
    Partitioner,
    RegisterAssignment,
    Scenario,
    plan_for_instruction,
)
from repro.experiments import (
    EvaluationOptions,
    evaluate_workload,
    format_table2,
    run_table2,
    speedup_percent,
)
from repro.uarch import (
    Processor,
    ProcessorConfig,
    SimulationResult,
    dual_cluster_config,
    simulate,
    single_cluster_config,
)
from repro.workloads import (
    SPEC92,
    TraceGenerator,
    Workload,
    WorkloadSpec,
    build_benchmark,
    generate_workload,
)

__version__ = "1.0.0"

__all__ = [
    "CompilationResult",
    "CompilerOptions",
    "compile_program",
    "DistributionPlan",
    "LocalScheduler",
    "Partitioner",
    "RegisterAssignment",
    "Scenario",
    "plan_for_instruction",
    "EvaluationOptions",
    "evaluate_workload",
    "format_table2",
    "run_table2",
    "speedup_percent",
    "Processor",
    "ProcessorConfig",
    "SimulationResult",
    "dual_cluster_config",
    "simulate",
    "single_cluster_config",
    "SPEC92",
    "TraceGenerator",
    "Workload",
    "WorkloadSpec",
    "build_benchmark",
    "generate_workload",
    "__version__",
]
