"""Structured exception hierarchy for the reproduction.

Every failure the pipeline can diagnose is raised as a
:class:`ReproError` subclass carrying machine-readable context — the
benchmark, the simulated cycle, the cluster, and the offending dynamic
instruction where each is known.  Tooling (the CLI, the Table 2 sweep's
graceful-degradation path, the fault-injection matrix) dispatches on the
type and reads :attr:`ReproError.context` instead of parsing messages.

Taxonomy::

    ReproError
    ├── ConfigError        (also ValueError)  bad machine config / register
    │                                         assignment / experiment setup
    ├── TraceError         (also ValueError)  malformed or corrupted trace
    ├── CompileError                          compilation pipeline failure
    └── SimulationError                       the cycle-level model failed
        ├── WatchdogTimeout                   cycle budget or forward-progress
        │                                     watchdog expired
        └── InvariantViolation                a self-check invariant broke

:class:`ConfigError` and :class:`TraceError` additionally subclass
``ValueError``, and :class:`SimulationError` keeps the name the simulator
has always raised, so pre-existing ``except ValueError`` /
``except SimulationError`` call sites keep working.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence


class ReproError(Exception):
    """Base class for all diagnosable failures.

    Args:
        message: one-line human-readable description.
        benchmark: benchmark name, when the failure is attributable.
        cycle: simulated cycle at which the failure was detected.
        cluster: cluster index involved, if any.
        seq: dynamic sequence number of the offending instruction.
        instruction: formatted offending (micro-)instruction.
        diagnostics: multi-line diagnostic dump (e.g. the simulator's
            recent-event ring buffer) attached for post-mortems.
        extra: any further machine-readable key/value context.
    """

    #: CLI exit code family; subclasses override.
    exit_code = 4

    def __init__(
        self,
        message: str,
        *,
        benchmark: Optional[str] = None,
        cycle: Optional[int] = None,
        cluster: Optional[int] = None,
        seq: Optional[int] = None,
        instruction: Optional[str] = None,
        diagnostics: Optional[Sequence[str]] = None,
        **extra: Any,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.context: dict[str, Any] = {}
        for key, value in (
            ("benchmark", benchmark),
            ("cycle", cycle),
            ("cluster", cluster),
            ("seq", seq),
            ("instruction", instruction),
        ):
            if value is not None:
                self.context[key] = value
        self.context.update({k: v for k, v in extra.items() if v is not None})
        self.diagnostics: list[str] = list(diagnostics or ())

    # ------------------------------------------------------------ accessors
    @property
    def benchmark(self) -> Optional[str]:
        return self.context.get("benchmark")

    @property
    def cycle(self) -> Optional[int]:
        return self.context.get("cycle")

    @property
    def cluster(self) -> Optional[int]:
        return self.context.get("cluster")

    @property
    def seq(self) -> Optional[int]:
        return self.context.get("seq")

    def brief(self) -> str:
        """One-line diagnostic: type, message, and compact context."""
        ctx = " ".join(f"{k}={v}" for k, v in self.context.items())
        text = f"{type(self).__name__}: {self.message}"
        return f"{text} [{ctx}]" if ctx else text

    def __str__(self) -> str:
        parts = [self.brief()]
        if self.diagnostics:
            parts.append("--- diagnostics ---")
            parts.extend(self.diagnostics)
        return "\n".join(parts)


class ConfigError(ReproError, ValueError):
    """A machine configuration, register assignment, or experiment request
    is inconsistent (detected before any simulation runs)."""

    exit_code = 2


class TraceError(ReproError, ValueError):
    """A dynamic trace is malformed or does not match its program."""

    exit_code = 2


class CompileError(ReproError):
    """The compilation pipeline failed for a workload."""

    exit_code = 4


class SimulationError(ReproError):
    """The cycle-level model failed mid-run (deadlock, overflow, model bug)."""

    exit_code = 3


class WatchdogTimeout(SimulationError):
    """The simulation exceeded its cycle budget or stopped making forward
    progress for longer than the watchdog window."""

    exit_code = 3


class InvariantViolation(SimulationError):
    """A ``self_check`` invariant failed — the model state is corrupt."""

    exit_code = 3


class SweepInterrupted(ReproError):
    """A sweep was stopped by SIGINT/SIGTERM after an orderly shutdown.

    Raised by the sweep drivers once in-flight work is drained, pending
    work is cancelled, and every completed row is journaled — the exit
    code (130, the shell's SIGINT convention) tells wrappers the run is
    resumable with ``--resume`` rather than failed."""

    exit_code = 130


__all__ = [
    "ReproError",
    "ConfigError",
    "TraceError",
    "CompileError",
    "SimulationError",
    "WatchdogTimeout",
    "InvariantViolation",
    "SweepInterrupted",
]
