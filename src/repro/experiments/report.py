"""Full-report generation: every paper artifact in one Markdown document.

``generate_report()`` runs the complete experiment suite — Table 2, the
scenario timelines, Figure 6, and the cycle-time analysis — and renders a
single Markdown report with the paper's reference values inline.  The CLI
equivalent is running each ``python -m repro`` subcommand; this module is
for producing an archivable artifact (``REPORT.md``).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional

from repro.experiments.cycle_time import (
    CycleTimeReport,
    format_cycle_time_analysis,
    run_cycle_time_analysis,
)
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.harness import EvaluationOptions
from repro.experiments.scenarios import (
    ScenarioTimeline,
    format_timeline,
    run_all_scenarios,
)
from repro.experiments.table2 import Table2Result, format_table2, run_table2
from repro.timing.analysis import format_cycle_time_report


@dataclass
class FullReport:
    """Every regenerated artifact, plus the rendered Markdown."""

    table2: Table2Result
    scenarios: list[ScenarioTimeline]
    figure6: Figure6Result
    cycle_time: CycleTimeReport
    markdown: str


def generate_report(
    trace_length: int = 40_000,
    benchmarks: Optional[list[str]] = None,
) -> FullReport:
    """Run everything and render the report."""
    options = EvaluationOptions(trace_length=trace_length)
    table2 = run_table2(benchmarks, options)
    scenarios = run_all_scenarios()
    figure6 = run_figure6()
    cycle_time = run_cycle_time_analysis(table2)

    out = io.StringIO()
    w = out.write
    w("# Multicluster Architecture — regenerated results\n\n")
    w(f"Traces: {trace_length} dynamic instructions per run.\n\n")

    w("## Table 2 — speedup ratios\n\n```\n")
    w(format_table2(table2, detailed=True))
    w("\n```\n\n")

    w("## Figures 2–5 — dual-execution scenarios\n\n```\n")
    for timeline in scenarios:
        w(format_timeline(timeline))
        w("\n\n")
    w("```\n\n")

    w("## Figure 6 — local-scheduler worked example\n\n")
    w(f"* block traversal order: `{figure6.block_order}`\n")
    w(f"* assignment order: `{figure6.assignment_order}`\n")
    w(f"* matches the paper: **{figure6.matches_paper}**\n")
    w(f"* partition: `{figure6.partition}`\n\n")

    w("## Cycle-time analysis (Sections 4.2 and 5)\n\n```\n")
    w(format_cycle_time_report())
    w("\n\n")
    w(format_cycle_time_analysis(cycle_time))
    w("\n```\n")

    return FullReport(
        table2=table2,
        scenarios=scenarios,
        figure6=figure6,
        cycle_time=cycle_time,
        markdown=out.getvalue(),
    )


def write_report(
    path: str = "REPORT.md",
    trace_length: int = 40_000,
    benchmarks: Optional[list[str]] = None,
) -> FullReport:
    """Generate the report and write it to ``path``."""
    report = generate_report(trace_length, benchmarks)
    with open(path, "w") as handle:
        handle.write(report.markdown)
    return report
