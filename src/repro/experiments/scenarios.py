"""Experiments E4-E7: the dual-execution scenarios of Figures 2-5.

Each scenario builds the minimal machine program from Section 2.1's
walk-through — an integer add whose register operands straddle the
clusters in the prescribed way — runs it on the dual-cluster machine with
the event log enabled, and renders the resulting per-copy timeline.  The
checks that matter (asserted by the test suite):

* the right copies exist (master/slave, correct clusters);
* the protocol ordering holds: operand-forwarding slaves issue before
  their master; result-forwarding slaves issue after the master and
  complete after it;
* the one-cycle inter-copy gaps of the paper's figures are observed for
  one-cycle operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.distribution import Scenario
from repro.core.registers import RegisterAssignment
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Register, int_reg
from repro.ir.machine_program import MachineProgram
from repro.uarch.config import dual_cluster_config
from repro.uarch.processor import Processor
from repro.workloads.trace import DynamicInstruction

#: Architectural register made global (the paper's ``g2``) in scenario
#: demos, alongside the default SP/GP globals.
GLOBAL_DEMO_REG = int_reg(8)


@dataclass
class ScenarioSpec:
    """One of the five Section 2.1 scenarios."""

    number: int
    figure: Optional[int]
    description: str
    srcs: tuple[Register, ...]
    dest: Register
    expected: Scenario


SCENARIOS: dict[int, ScenarioSpec] = {
    1: ScenarioSpec(
        1,
        None,
        "all three registers local to cluster 0: single distribution",
        (int_reg(0), int_reg(2)),
        int_reg(4),
        Scenario.SINGLE,
    ),
    2: ScenarioSpec(
        2,
        2,
        "source r1 lives in cluster 1; the slave forwards it (Figure 2)",
        (int_reg(2), int_reg(1)),
        int_reg(4),
        Scenario.DUAL_OPERAND,
    ),
    3: ScenarioSpec(
        3,
        3,
        "sources in cluster 0, destination r1 in cluster 1: the master "
        "forwards the result (Figure 3)",
        (int_reg(0), int_reg(2)),
        int_reg(1),
        Scenario.DUAL_RESULT,
    ),
    4: ScenarioSpec(
        4,
        4,
        "global destination g2: both register files are written (Figure 4)",
        (int_reg(0), int_reg(2)),
        GLOBAL_DEMO_REG,
        Scenario.DUAL_GLOBAL,
    ),
    5: ScenarioSpec(
        5,
        5,
        "split sources and a global destination: operand forwarded AND "
        "result broadcast (Figure 5)",
        (int_reg(2), int_reg(1)),
        GLOBAL_DEMO_REG,
        Scenario.DUAL_OPERAND_GLOBAL,
    ),
}


@dataclass
class ScenarioTimeline:
    """Observed behaviour of one scenario run."""

    spec: ScenarioSpec
    plan_scenario: Scenario
    events: list[tuple[int, str, int, str, int]]
    #: (cycle, role, cluster) for issues of the scenario instruction.
    issues: list[tuple[int, str, int]]
    completions: list[tuple[int, str, int]]

    def issue_cycle(self, role: str, first: bool = True) -> Optional[int]:
        cycles = [c for c, r, _cl in self.issues if r == role]
        if not cycles:
            return None
        return min(cycles) if first else max(cycles)

    def completion_cycle(self, role: str) -> Optional[int]:
        cycles = [c for c, r, _cl in self.completions if r == role]
        return max(cycles) if cycles else None


def scenario_assignment() -> RegisterAssignment:
    """Even/odd dual assignment with the demo global register ``g2``."""
    return RegisterAssignment.even_odd_dual(extra_globals=(GLOBAL_DEMO_REG,))


def build_scenario_program(spec: ScenarioSpec) -> MachineProgram:
    """Producers for each source register, then the scenario add.

    The producers (one ``lda`` per distinct source, placed in the source's
    home cluster by its register number) make the sources architecturally
    live so the add's dependences are real.
    """
    machine = MachineProgram(f"scenario{spec.number}")
    block = machine.add_block("b0")
    for reg in dict.fromkeys(spec.srcs):
        block.add(MachineInstruction(Opcode.LDA, dest=reg, imm=1))
    block.add(MachineInstruction(Opcode.ADDQ, dest=spec.dest, srcs=spec.srcs))
    # A consumer so the result is observably used.
    block.add(MachineInstruction(Opcode.ADDQ, dest=spec.dest, srcs=(spec.dest, spec.dest)))
    machine.assign_pcs()
    return machine


def run_scenario(number: int) -> ScenarioTimeline:
    """Execute one scenario on the dual-cluster machine and collect events."""
    spec = SCENARIOS[number]
    machine = build_scenario_program(spec)
    trace = [
        DynamicInstruction(instr, meta, i)
        for i, (instr, meta) in enumerate(machine.all_instructions())
    ]
    scenario_seq = len(dict.fromkeys(spec.srcs))  # the add follows the producers
    processor = Processor(dual_cluster_config(), scenario_assignment())
    processor.event_log = []
    processor.run(trace)
    plan = processor._plan_cache.get(trace[scenario_seq].instr.uid)
    if plan is None:
        from repro.core.distribution import plan_for_instruction

        plan = plan_for_instruction(trace[scenario_seq].instr, scenario_assignment())
    events = [e for e in processor.event_log if e[2] == scenario_seq]
    issues = [
        (c, role, cl) for c, kind, _s, role, cl in events if kind in ("issue", "reissue")
    ]
    completions = [
        (c, role, cl) for c, kind, _s, role, cl in events if kind == "complete"
    ]
    return ScenarioTimeline(
        spec=spec,
        plan_scenario=plan.scenario,
        events=events,
        issues=issues,
        completions=completions,
    )


def format_timeline(timeline: ScenarioTimeline) -> str:
    """ASCII rendering in the spirit of Figures 2-5."""
    spec = timeline.spec
    header = f"Scenario {spec.number}"
    if spec.figure:
        header += f" (Figure {spec.figure})"
    lines = [
        header,
        f"  {spec.description}",
        f"  instruction: addq {', '.join(r.name for r in spec.srcs)} -> {spec.dest.name}",
        f"  classified as: {timeline.plan_scenario.name}",
    ]
    if not timeline.events:
        lines.append("  (no events recorded)")
        return "\n".join(lines)
    start = min(c for c, *_ in timeline.events)
    by_copy: dict[tuple[str, int], list[str]] = {}
    for cycle, kind, _seq, role, cluster in timeline.events:
        by_copy.setdefault((role, cluster), []).append(f"t+{cycle - start} {kind}")
    for (role, cluster), entries in sorted(by_copy.items(), key=lambda kv: kv[0][0]):
        lines.append(f"  {role:<7} @cluster{cluster}: " + ", ".join(entries))
    return "\n".join(lines)


def run_all_scenarios() -> list[ScenarioTimeline]:
    return [run_scenario(n) for n in sorted(SCENARIOS)]


def main() -> None:  # pragma: no cover - CLI convenience
    for timeline in run_all_scenarios():
        print(format_timeline(timeline))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
