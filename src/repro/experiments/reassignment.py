"""Dynamic register reassignment (the Section 6 extension, demonstrated).

The paper sketches a hardware mechanism (detailed in [3]) that lets the
architectural-register-to-cluster assignment change at run time, with the
compiler hinting when: "This functionality would provide additional
flexibility in separating a sequence of instructions into a number of
partially-independent threads."

This experiment constructs the situation the mechanism exists for: a
program with two phases whose register usage favours *different* cluster
maps.

* phase A pairs even registers with even (and odd with odd) — perfectly
  single-distributed under the default even/odd map;
* phase B pairs low registers with low and high with high — all
  dual-distributed under even/odd, but perfectly local under the low/high
  map.

Three machines run the same dynamic instruction stream:

1. static even/odd (phase B pays dual-distribution),
2. static low/high (phase A pays),
3. dynamic: even/odd, with a reassignment hint to low/high at the phase
   boundary (both phases run locally; the switch costs a pipeline drain
   plus register transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.registers import RegisterAssignment
from repro.ir.machine_program import MachineProgram
from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import int_reg
from repro.uarch.config import dual_cluster_config
from repro.uarch.processor import Processor
from repro.workloads.trace import DynamicInstruction


def _phase_a_block(machine: MachineProgram) -> None:
    """Same-parity pairs crossing the low/high boundary.

    Single-distributed (and balanced) under even/odd; every instruction is
    dual-distributed under low/high.
    """
    block = machine.add_block("phaseA")
    for i in range(8):
        block.add(
            MachineInstruction(
                Opcode.ADDQ, dest=int_reg(i), srcs=(int_reg(i), int_reg(i + 16))
            )
        )


def _phase_b_block(machine: MachineProgram) -> None:
    """Cross-parity pairs within each half.

    Single-distributed (and balanced) under low/high; every instruction is
    dual-distributed under even/odd.
    """
    block = machine.add_block("phaseB")
    for i in range(4):
        block.add(
            MachineInstruction(
                Opcode.ADDQ, dest=int_reg(2 * i), srcs=(int_reg(2 * i), int_reg(2 * i + 1))
            )
        )
        block.add(
            MachineInstruction(
                Opcode.ADDQ,
                dest=int_reg(16 + 2 * i),
                srcs=(int_reg(16 + 2 * i), int_reg(17 + 2 * i)),
            )
        )


def build_two_phase_trace(
    phase_length: int = 2000,
    dynamic: bool = False,
) -> list[DynamicInstruction]:
    """Phase A then phase B; with ``dynamic``, a reassignment hint to the
    low/high map rides on phase B's first instruction."""
    machine = MachineProgram("phases")
    _phase_a_block(machine)
    _phase_b_block(machine)
    machine.assign_pcs()

    a_pairs = list(
        zip(machine.block("phaseA").instructions, machine.block("phaseA").meta)
    )
    b_pairs = list(
        zip(machine.block("phaseB").instructions, machine.block("phaseB").meta)
    )

    trace: list[DynamicInstruction] = []
    while len(trace) < phase_length:
        for instr, meta in a_pairs:
            trace.append(DynamicInstruction(instr, meta, len(trace)))
    boundary = len(trace)
    while len(trace) - boundary < phase_length:
        for instr, meta in b_pairs:
            trace.append(DynamicInstruction(instr, meta, len(trace)))
    if dynamic:
        trace[boundary].reassign = RegisterAssignment.low_high_dual()
    return trace


@dataclass
class ReassignmentResult:
    static_even_odd: int
    static_low_high: int
    dynamic: int
    reassignments: int
    reassignment_stall_cycles: int
    dual_even_odd: float
    dual_low_high: float
    dual_dynamic: float

    @property
    def dynamic_wins(self) -> bool:
        return self.dynamic < min(self.static_even_odd, self.static_low_high)


def _reassignment_task(item):
    """One of the three machine runs, worker-safe (rebuilds its trace)."""
    phase_length, which = item
    config = dual_cluster_config()
    if which == "even_odd":
        trace = build_two_phase_trace(phase_length, dynamic=False)
        assignment = RegisterAssignment.even_odd_dual()
    elif which == "low_high":
        trace = build_two_phase_trace(phase_length, dynamic=False)
        assignment = RegisterAssignment.low_high_dual()
    else:
        trace = build_two_phase_trace(phase_length, dynamic=True)
        assignment = RegisterAssignment.even_odd_dual()
    return Processor(config, assignment).run(trace)


def run_reassignment_demo(
    phase_length: int = 2000, jobs: int = 1, journal=None
) -> ReassignmentResult:
    """Race the two static maps against the dynamically switching machine.

    The three runs are independent; ``jobs != 1`` runs them in worker
    processes with bit-identical cycle counts (traces are rebuilt
    deterministically inside each worker).  A ``journal``
    (:class:`~repro.robustness.journal.RunJournal`) journals each
    machine's simulation result, so an interrupted demo resumes with only
    the missing machines recomputed."""
    from repro.perf.parallel import parallel_map

    machines = ["even_odd", "low_high", "dynamic"]
    sims: dict[str, object] = {}
    pending = list(machines)
    fingerprints: dict[str, str] = {}
    if journal is not None:
        from repro.perf.fingerprint import fingerprint

        fingerprints = {
            which: fingerprint(("reassignment/v1", phase_length, which))
            for which in machines
        }
        pending = []
        for which in machines:
            reused = journal.load_artifact(
                journal.completed(f"reassignment:{which}", fingerprints[which])
            )
            if reused is not None:
                sims[which] = reused
            else:
                pending.append(which)

    computed = parallel_map(
        _reassignment_task,
        [(phase_length, which) for which in pending],
        jobs=jobs,
    )
    for which, sim in zip(pending, computed):
        sims[which] = sim
        if journal is not None:
            journal.record_completed(
                f"reassignment:{which}", fingerprints[which], artifact_value=sim
            )
    even_odd, low_high, dynamic = (
        sims["even_odd"], sims["low_high"], sims["dynamic"],
    )

    return ReassignmentResult(
        static_even_odd=even_odd.cycles,
        static_low_high=low_high.cycles,
        dynamic=dynamic.cycles,
        reassignments=dynamic.stats.reassignments,
        reassignment_stall_cycles=dynamic.stats.reassignment_stall_cycles,
        dual_even_odd=even_odd.stats.dual_fraction,
        dual_low_high=low_high.stats.dual_fraction,
        dual_dynamic=dynamic.stats.dual_fraction,
    )


def format_reassignment_result(result: ReassignmentResult) -> str:
    lines = [
        "Dynamic register reassignment (Section 6 extension)",
        f"{'machine':<26} {'cycles':>8} {'dual %':>7}",
        f"{'static even/odd':<26} {result.static_even_odd:>8} {100 * result.dual_even_odd:>6.1f}%",
        f"{'static low/high':<26} {result.static_low_high:>8} {100 * result.dual_low_high:>6.1f}%",
        f"{'dynamic (switch at phase)':<26} {result.dynamic:>8} {100 * result.dual_dynamic:>6.1f}%",
        f"reassignments: {result.reassignments}, "
        f"stall cycles: {result.reassignment_stall_cycles}",
        f"dynamic wins: {result.dynamic_wins}",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_reassignment_result(run_reassignment_demo()))


if __name__ == "__main__":  # pragma: no cover
    main()
