"""Experiment E2: Table 2 — speedup ratios per benchmark.

Regenerates the paper's headline table: the percentage speedup/slowdown
``100 - 100 * C_dual / C_single`` for each SPEC92 stand-in when (column 2,
"none") the native binary runs on the dual-cluster machine, and (column 3,
"local") the local-scheduler-rescheduled binary runs on it.

Paper reference values (8-way machines)::

    benchmark   none   local
    compress    -14     +6
    doduc       -21    -15
    gcc1        -15    -10
    ora          -5    -22
    su2cor      -36    -25
    tomcatv     -41    -19

Absolute agreement is not expected (synthetic workloads, reconstructed
machine); the reproduction targets the table's *shape* — see
EXPERIMENTS.md.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.errors import ConfigError, ReproError
from repro.experiments.harness import (
    BenchmarkEvaluation,
    BenchmarkFailure,
    EvaluationOptions,
    evaluate_workload_resilient,
)
from repro.workloads.spec92 import PAPER_TABLE2, SPEC92

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.journal import RunJournal


def _unknown_benchmark(name: str, valid: Iterable[str]) -> ConfigError:
    valid = sorted(valid)
    message = f"unknown benchmark {name!r}; valid benchmarks: {', '.join(valid)}"
    close = difflib.get_close_matches(name, valid, n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return ConfigError(message, benchmark=name)


@dataclass
class Table2Row:
    """One benchmark's entry, with the paper's values for reference."""

    benchmark: str
    pct_none: float
    pct_local: float
    paper_none: Optional[int]
    paper_local: Optional[int]
    #: The full evaluation behind the row.  Optional for real: hand-built
    #: rows (tests, external tabulations) carry only the percentages, and
    #: consumers must guard accordingly.
    evaluation: Optional[BenchmarkEvaluation] = field(repr=False, default=None)


@dataclass
class Table2Result:
    rows: list[Table2Row]
    #: Benchmarks that failed (graceful degradation): the sweep always
    #: completes and reports the rows it could compute plus these records.
    failures: list[BenchmarkFailure] = field(default_factory=list)

    def row(self, benchmark: str) -> Table2Row:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        for failure in self.failures:
            if failure.benchmark == benchmark:
                raise ConfigError(
                    f"benchmark {benchmark!r} failed during the sweep "
                    f"({failure.error_type}: {failure.message}), so it has "
                    "no row; see result.failures for the full record",
                    benchmark=benchmark,
                    error_type=failure.error_type,
                )
        raise _unknown_benchmark(benchmark, [r.benchmark for r in self.rows])


def _journal_failure(
    journal: "RunJournal",
    fingerprint: str,
    name: str,
    failure: BenchmarkFailure,
    options: EvaluationOptions,
    elapsed_s: float,
) -> None:
    """Journal a degraded row, serializing its replay bundle first."""
    from repro.robustness.replay import capture_bundle

    attempts = int(failure.context.get("attempts", 1))
    bundle = capture_bundle(
        name,
        options,
        error_type=failure.error_type,
        error_message=failure.message,
        error_context=failure.context,
        part=failure.context.get("part"),
        attempt=max(0, attempts - 1),
    )
    path = bundle.save(journal.bundle_path(f"table2-{name}"))
    failure.context["replay_bundle"] = str(path)
    journal.record_failed(
        f"table2:{name}",
        fingerprint,
        error={
            "type": failure.error_type,
            "message": failure.message,
            "part": failure.context.get("part"),
        },
        attempts=attempts,
        elapsed_s=elapsed_s,
        bundle=str(path.relative_to(journal.run_dir)),
    )


def run_table2(
    benchmarks: Optional[Iterable[str]] = None,
    options: Optional[EvaluationOptions] = None,
    journal: Optional[Union["RunJournal", str]] = None,
) -> Table2Result:
    """Run the Table 2 experiment over the selected benchmarks.

    Unknown benchmark names are rejected up front with a
    :class:`ConfigError`.  A benchmark whose compile/trace/simulation
    fails with a :class:`ReproError` becomes a
    :class:`~repro.experiments.harness.BenchmarkFailure` record in
    ``result.failures``; the remaining rows are still computed, and
    ``options.retry`` grants transient failures a deterministic attempt
    budget first.

    ``options.jobs != 1`` fans the benchmarks and their three runs each
    out to worker processes (``0`` = one per core) with bit-identical
    row values and the same degradation contract; ``options.cache``
    reuses compile/trace artifacts across runs.

    ``journal`` (a :class:`~repro.robustness.journal.RunJournal` or a
    run-directory path — the CLI's ``--resume``) makes the sweep
    crash-safe: every finished row is journaled durably before the sweep
    moves on, completed rows from a previous journal whose inputs
    fingerprint matches are reused verbatim (so the resumed table is
    bit-identical to an uninterrupted run), and unrecoverable failures
    leave a replay bundle under the run directory.
    """
    names = list(benchmarks) if benchmarks is not None else sorted(SPEC92)
    for name in names:
        if name not in SPEC92:
            raise _unknown_benchmark(name, SPEC92)
    options = options or EvaluationOptions()
    if isinstance(journal, (str,)) or (
        journal is not None and not hasattr(journal, "record_completed")
    ):
        from repro.robustness.journal import RunJournal

        journal = RunJournal(journal)

    # Span tracing: one content-derived trace id covers the serial,
    # parallel, resumed, and distributed forms of this exact sweep.
    spans = options.spans
    if spans is not None:
        from repro.obs.spans import sweep_trace_id

        spans.trace_id = sweep_trace_id("table2", options, names)

    def emit_row_spans(name: str, outcome, attempts: int) -> None:
        if spans is None:
            return
        from repro.obs.spans import evaluation_spans, failure_spans

        if isinstance(outcome, BenchmarkFailure):
            spans.write_all(failure_spans(spans.trace_id, outcome, attempts=attempts))
        else:
            spans.write_all(
                evaluation_spans(spans.trace_id, outcome, attempts=attempts)
            )

    fingerprint = ""
    evaluations: dict[str, BenchmarkEvaluation] = {}
    failures_by_name: dict[str, BenchmarkFailure] = {}
    pending = names
    if journal is not None:
        from repro.robustness.journal import options_fingerprint

        fingerprint = options_fingerprint(options)
        pending = []
        for name in names:
            entry = journal.completed(f"table2:{name}", fingerprint)
            reused = journal.load_artifact(entry)
            if isinstance(reused, BenchmarkEvaluation):
                evaluations[name] = reused
                # Reused rows re-emit their (content-derived) spans so a
                # resumed run's span set matches an uninterrupted one.
                emit_row_spans(name, reused, entry.attempts)
            else:
                pending.append(name)

    # Bundles and journal records describe the self-contained serial
    # run shape, whichever path computed the row.
    sealed_options = replace(
        options, jobs=1, cache=None, executor="pool", worker_fault_plan=None,
        spans=None,
    )

    # Parallel sweeps report progress (rows done, ETA, cache hit rate,
    # journal lag) and journal each heartbeat durably.
    heartbeat = None
    if options.jobs != 1 and pending:
        from repro.obs.heartbeat import Heartbeat

        heartbeat = Heartbeat(
            len(pending),
            label="table2",
            interval_s=options.heartbeat_interval,
            journal=journal,
            cache=options.cache,
            spans=spans,
        )

    def record(name: str, outcome, attempts: int, elapsed_s: float = 0.0) -> None:
        if isinstance(outcome, BenchmarkFailure):
            failures_by_name[name] = outcome
            if journal is not None:
                _journal_failure(
                    journal, fingerprint, name, outcome, sealed_options, elapsed_s
                )
        else:
            evaluations[name] = outcome
            if journal is not None:
                journal.record_completed(
                    f"table2:{name}",
                    fingerprint,
                    artifact_value=outcome,
                    attempts=attempts,
                    elapsed_s=elapsed_s,
                )
        emit_row_spans(name, outcome, attempts)
        if heartbeat is not None:
            heartbeat.note(name)

    def on_event(kind: str, payload: dict) -> None:
        # Executor incidents (today: a circuit-breaker degradation) are
        # not rows, but they belong in the durable record of the run.
        import logging

        logging.getLogger("repro.table2").warning(
            "sweep executor event %s: %s", kind, payload
        )
        if journal is not None:
            journal.record_event(kind, payload)

    if options.jobs != 1 and len(pending) > 0:
        from repro.perf.parallel import run_table2_parallel

        run_table2_parallel(
            pending, options, on_benchmark=record, on_event=on_event
        )
    else:
        for name in pending:
            row_start = time.perf_counter()
            try:
                workload = SPEC92[name]()
            except ReproError as error:
                record(
                    name,
                    BenchmarkFailure.from_error(name, error),
                    1,
                    time.perf_counter() - row_start,
                )
                continue
            evaluation, failure, attempts = evaluate_workload_resilient(
                workload, options
            )
            record(
                name,
                failure if failure is not None else evaluation,
                attempts,
                time.perf_counter() - row_start,
            )

    if spans is not None:
        from repro.obs.spans import evaluation_spans, sweep_span

        # The root span's duration is the sweep's total virtual work —
        # rebuilt from the evaluations so it is identical however (and
        # in how many runs) the rows were computed.
        task_spans = [
            span
            for name in names
            if name in evaluations
            for span in evaluation_spans(spans.trace_id, evaluations[name])
        ]
        spans.write(sweep_span(spans.trace_id, "table2", task_spans))

    rows = [_row_for(name, evaluations[name]) for name in names if name in evaluations]
    failures = [failures_by_name[n] for n in names if n in failures_by_name]
    return Table2Result(rows, failures)


def _row_for(name: str, evaluation: BenchmarkEvaluation) -> Table2Row:
    paper = PAPER_TABLE2.get(name)
    return Table2Row(
        benchmark=name,
        pct_none=evaluation.pct_none,
        pct_local=evaluation.pct_local,
        paper_none=paper[0] if paper else None,
        paper_local=paper[1] if paper else None,
        evaluation=evaluation,
    )


def format_table2(result: Table2Result, detailed: bool = False) -> str:
    """Paper-style rendering of the Table 2 reproduction."""
    lines = [
        "Table 2: speedup ratios 100 - 100*(C_dual/C_single)  [positive = speedup]",
        f"{'benchmark':<10} {'none':>8} {'local':>8}   {'paper none':>10} {'paper local':>11}",
    ]
    for row in result.rows:
        paper_none = f"{row.paper_none:+d}" if row.paper_none is not None else "n/a"
        paper_local = f"{row.paper_local:+d}" if row.paper_local is not None else "n/a"
        lines.append(
            f"{row.benchmark:<10} {row.pct_none:+8.1f} {row.pct_local:+8.1f}   "
            f"{paper_none:>10} {paper_local:>11}"
        )
    if result.failures:
        lines.append("")
        lines.append(f"failed benchmarks ({len(result.failures)}):")
        lines.append(f"{'benchmark':<10} {'error':<20} detail")
        for failure in result.failures:
            lines.append(failure.format())
    if detailed:
        lines.append("")
        lines.append(
            f"{'benchmark':<10} {'1-clu cyc':>10} {'none cyc':>10} {'local cyc':>10} "
            f"{'dual% none':>10} {'dual% local':>11} {'replays n/l':>11} "
            f"{'br acc':>7} {'d$ miss':>8}"
        )
        for row in result.rows:
            ev = row.evaluation
            if ev is None:
                lines.append(
                    f"{row.benchmark:<10} (percentages only; no evaluation attached)"
                )
                continue
            lines.append(
                f"{row.benchmark:<10} {ev.single.cycles:>10} {ev.dual_none.cycles:>10} "
                f"{ev.dual_local.cycles:>10} "
                f"{100 * ev.dual_none.stats.dual_fraction:>9.1f}% "
                f"{100 * ev.dual_local.stats.dual_fraction:>10.1f}% "
                f"{ev.dual_none.stats.replay_exceptions:>5}"
                f"/{ev.dual_local.stats.replay_exceptions:<5} "
                f"{100 * ev.single.stats.branch_accuracy:>6.1f}% "
                f"{100 * ev.single.stats.dcache_miss_rate:>7.1f}%"
            )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_table2()
    print(format_table2(result, detailed=True))


if __name__ == "__main__":  # pragma: no cover
    main()
