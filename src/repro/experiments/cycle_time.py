"""Experiment E9: the Section 4.2 / Section 5 cycle-time analysis.

Combines the simulated cycle counts (Table 2) with the calibrated
Palacharla-style delay model to reproduce the paper's conclusion:

* at 0.35 µm the available clock advantage of a 4-issue cluster
  (1 - 1/1.18 ≈ 15 %) does not cover even the local scheduler's
  cycle-count slowdowns — "reducing the cycle time through partitioning
  would not improve overall performance";
* at 0.18 µm the advantage (1 - 1/1.82 ≈ 45 %) dwarfs the worst-case
  slowdown — "a significant net performance improvement could be
  obtained".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.table2 import Table2Result, run_table2
from repro.timing.analysis import (
    available_clock_reduction,
    break_even_clock_reduction,
    net_performance,
)
from repro.timing.palacharla import TECHNOLOGIES


@dataclass
class CycleTimeRow:
    benchmark: str
    pct_local: float  # cycle-count speedup (Table 2 metric, usually < 0)
    net_035: float    # net run-time speedup % at 0.35um
    net_018: float    # net run-time speedup % at 0.18um


@dataclass
class CycleTimeReport:
    rows: list[CycleTimeRow]
    available_035: float
    available_018: float
    worst_case_break_even: float

    @property
    def wins_at_018(self) -> int:
        return sum(1 for r in self.rows if r.net_018 > 0)

    @property
    def wins_at_035(self) -> int:
        return sum(1 for r in self.rows if r.net_035 > 0)


def run_cycle_time_analysis(
    table2: Optional[Table2Result] = None,
) -> CycleTimeReport:
    """Produce the net-performance analysis from Table 2 cycle counts."""
    if table2 is None:
        table2 = run_table2()
    rows: list[CycleTimeRow] = []
    worst_slowdown = 0.0
    for t2row in table2.rows:
        ev = t2row.evaluation
        worst_slowdown = max(worst_slowdown, -t2row.pct_local)
        net35 = net_performance(
            t2row.benchmark,
            ev.single.cycles,
            ev.dual_local.cycles,
            TECHNOLOGIES["0.35um"],
        )
        net18 = net_performance(
            t2row.benchmark,
            ev.single.cycles,
            ev.dual_local.cycles,
            TECHNOLOGIES["0.18um"],
        )
        rows.append(
            CycleTimeRow(
                benchmark=t2row.benchmark,
                pct_local=t2row.pct_local,
                net_035=net35.net_speedup_pct,
                net_018=net18.net_speedup_pct,
            )
        )
    return CycleTimeReport(
        rows=rows,
        available_035=available_clock_reduction(TECHNOLOGIES["0.35um"]),
        available_018=available_clock_reduction(TECHNOLOGIES["0.18um"]),
        worst_case_break_even=break_even_clock_reduction(worst_slowdown),
    )


def format_cycle_time_analysis(report: CycleTimeReport) -> str:
    lines = [
        "Net multicluster performance (cycles x clock period), local scheduler",
        f"available clock reduction: {report.available_035:.1f}% @0.35um, "
        f"{report.available_018:.1f}% @0.18um",
        f"worst-case slowdown needs {report.worst_case_break_even:.1f}% (break-even)",
        f"{'benchmark':<10} {'cycles %':>9} {'net @0.35um':>12} {'net @0.18um':>12}",
    ]
    for row in report.rows:
        lines.append(
            f"{row.benchmark:<10} {row.pct_local:+9.1f} {row.net_035:+11.1f}% "
            f"{row.net_018:+11.1f}%"
        )
    lines.append(
        f"multicluster wins on {report.wins_at_035}/{len(report.rows)} benchmarks "
        f"@0.35um and {report.wins_at_018}/{len(report.rows)} @0.18um"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    report = run_cycle_time_analysis()
    print(format_cycle_time_analysis(report))


if __name__ == "__main__":  # pragma: no cover
    main()
