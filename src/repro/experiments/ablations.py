"""Experiment E10 and the DESIGN.md ablations.

The paper evaluated both 4-way and 8-way machines but printed only the
8-way results ("these more clearly show the important trends");
:func:`run_issue_width_ablation` reproduces the 4-way companion.  The
remaining sweeps probe the design choices DESIGN.md calls out: the local
scheduler's imbalance threshold, transfer-buffer depth, partitioner
choice, and the architectural-register-to-cluster map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.partition import (
    AffinityPartitioner,
    LocalScheduler,
    Partitioner,
    RandomPartitioner,
    RoundRobinPartitioner,
)
from repro.core.registers import RegisterAssignment
from repro.experiments.harness import BenchmarkEvaluation, EvaluationOptions
from repro.uarch.config import (
    dual_cluster_2way_config,
    dual_cluster_config,
    single_cluster_4way_config,
    with_buffer_entries,
)
from repro.workloads.generator import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.robustness.journal import RunJournal
    from repro.robustness.retry import RetryPolicy


@dataclass
class AblationPoint:
    label: str
    pct_none: float
    pct_local: float
    dual_fraction: float
    replays: int


@dataclass
class AblationResult:
    name: str
    points: list[AblationPoint] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            f"ablation: {self.name}",
            f"{'point':<22} {'none %':>8} {'local %':>8} {'dual %':>7} {'replays':>8}",
        ]
        for p in self.points:
            lines.append(
                f"{p.label:<22} {p.pct_none:+8.1f} {p.pct_local:+8.1f} "
                f"{100 * p.dual_fraction:>6.1f}% {p.replays:>8}"
            )
        return "\n".join(lines)


def _point_from(label: str, ev: BenchmarkEvaluation) -> AblationPoint:
    return AblationPoint(
        label=label,
        pct_none=ev.pct_none,
        pct_local=ev.pct_local,
        dual_fraction=ev.dual_local.stats.dual_fraction,
        replays=ev.dual_local.stats.replay_exceptions,
    )


def _points(
    tasks: list[tuple[str, Workload, EvaluationOptions]],
    jobs: int,
    journal: Optional["RunJournal"] = None,
    sweep: str = "ablation",
) -> list[AblationPoint]:
    """Evaluate labelled sweep points, fanning out to workers for jobs != 1.

    Same bit-identity contract as the Table 2 sweep: every stage is
    seeded, so the parallel path returns exactly the serial points — and
    a journaled point reused by ``--resume`` *is* the original pickled
    evaluation, so resumed tables match uninterrupted ones bit for bit.
    Each point journals under ``{sweep}:{label}`` keyed by its own
    options fingerprint (ablation points deliberately differ in options,
    so a changed sweep parameter invalidates exactly the changed rows).
    """
    from repro.perf.parallel import evaluate_many

    fingerprints: list[str] = []
    evaluations: list[Optional[BenchmarkEvaluation]] = [None] * len(tasks)
    pending = list(range(len(tasks)))
    if journal is not None:
        from repro.robustness.journal import options_fingerprint

        fingerprints = [options_fingerprint(options) for _, _, options in tasks]
        pending = []
        for i, (label, _, _) in enumerate(tasks):
            reused = journal.load_artifact(
                journal.completed(f"{sweep}:{label}", fingerprints[i])
            )
            if isinstance(reused, BenchmarkEvaluation):
                evaluations[i] = reused
            else:
                pending.append(i)

    def on_result(j: int, ev: BenchmarkEvaluation) -> None:
        i = pending[j]
        evaluations[i] = ev
        if journal is not None:
            journal.record_completed(
                f"{sweep}:{tasks[i][0]}", fingerprints[i], artifact_value=ev
            )

    if pending:
        evaluate_many(
            [(tasks[i][1], tasks[i][2]) for i in pending],
            jobs=jobs,
            on_result=on_result,
        )
    return [
        _point_from(label, evaluations[i]) for i, (label, _, _) in enumerate(tasks)
    ]


def run_issue_width_ablation(
    build: Callable[[], Workload],
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """E10: 8-way single vs 2x4 dual, and 4-way single vs 2x2 dual."""
    tasks = [
        (
            "8-way vs 2x4-way",
            build(),
            EvaluationOptions(trace_length=trace_length, retry=retry),
        ),
        (
            "4-way vs 2x2-way",
            build(),
            EvaluationOptions(
                trace_length=trace_length,
                single_config=single_cluster_4way_config(),
                dual_config=dual_cluster_2way_config(),
                retry=retry,
            ),
        ),
    ]
    return AblationResult(
        "issue width (single vs clustered pair)",
        _points(tasks, jobs, journal, sweep="issue-width"),
    )


def run_threshold_ablation(
    build: Callable[[], Workload],
    thresholds: tuple[int, ...] = (0, 1, 2, 4, 8, 16),
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Sweep the local scheduler's compile-time imbalance constant."""
    tasks = [
        (
            f"threshold={threshold}",
            build(),
            EvaluationOptions(
                trace_length=trace_length,
                partitioner=LocalScheduler(imbalance_threshold=threshold),
                retry=retry,
            ),
        )
        for threshold in thresholds
    ]
    return AblationResult(
        "local-scheduler imbalance threshold",
        _points(tasks, jobs, journal, sweep="threshold"),
    )


def run_buffer_depth_ablation(
    build: Callable[[], Workload],
    depths: tuple[int, ...] = (2, 4, 8, 16, 32),
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Sweep the operand/result transfer-buffer depth (paper: 8 + 8)."""
    tasks = [
        (
            f"entries={depth}",
            build(),
            EvaluationOptions(
                trace_length=trace_length,
                dual_config=with_buffer_entries(dual_cluster_config(), depth),
                retry=retry,
            ),
        )
        for depth in depths
    ]
    return AblationResult(
        "transfer-buffer entries per cluster",
        _points(tasks, jobs, journal, sweep="buffer-depth"),
    )


def run_partitioner_ablation(
    build: Callable[[], Workload],
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Local scheduler vs balance-blind baselines."""
    partitioners: list[Partitioner] = [
        LocalScheduler(),
        AffinityPartitioner(),
        RoundRobinPartitioner(),
        RandomPartitioner(seed=3),
    ]
    tasks = [
        (
            partitioner.name,
            build(),
            EvaluationOptions(
                trace_length=trace_length, partitioner=partitioner, retry=retry
            ),
        )
        for partitioner in partitioners
    ]
    return AblationResult(
        "partitioner (column 'local %' is the partitioned binary)",
        _points(tasks, jobs, journal, sweep="partitioner"),
    )


def _queue_size_task(item) -> "QueueSizePoint":
    """One single-cluster run at one dispatch-queue size (worker-safe)."""
    import dataclasses

    from repro.uarch.config import single_cluster_config
    from repro.uarch.processor import simulate

    entries, trace = item
    base = single_cluster_config(name=f"single-q{entries}")
    cluster = dataclasses.replace(base.clusters[0], dispatch_queue_entries=entries)
    config = dataclasses.replace(base, clusters=(cluster,))
    result = simulate(trace, config)
    return QueueSizePoint(
        entries=entries,
        cycles=result.cycles,
        branch_accuracy=result.stats.branch_accuracy,
        dcache_miss_rate=result.stats.dcache_miss_rate,
        issue_disorder=result.stats.issue_disorder,
    )


def run_queue_size_ablation(
    build: Callable[[], Workload],
    queue_sizes: tuple[int, ...] = (32, 64, 128, 256),
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
) -> "QueueSizeResult":
    """The paper's explanation for the compress anomaly, isolated.

    Section 4.2 attributes compress's *speedup* on the dual-cluster
    machine to the single cluster's larger dispatch queue: more in-flight
    branches between prediction and table update (stale predictor state)
    and more issue disorder (cache behaviour).  This sweep runs the same
    native binary on single-cluster machines that differ only in dispatch
    queue size, exposing how much queue depth costs or buys on a workload.
    """
    from repro.compiler.pipeline import compile_program
    from repro.perf.parallel import parallel_map
    from repro.workloads.tracegen import TraceGenerator

    workload = build()
    native = compile_program(workload.program, RegisterAssignment.single_cluster())
    trace = TraceGenerator(
        native.machine, workload.streams, workload.behaviors, seed=7
    ).generate(trace_length)

    points: dict[int, QueueSizePoint] = {}
    pending = list(queue_sizes)
    fingerprints: dict[int, str] = {}
    if journal is not None:
        from repro.perf.fingerprint import fingerprint

        fingerprints = {
            n: fingerprint(("queue-size/v1", workload.name, trace_length, n))
            for n in queue_sizes
        }
        pending = []
        for n in queue_sizes:
            reused = journal.load_artifact(
                journal.completed(f"queue-size:entries={n}", fingerprints[n])
            )
            if isinstance(reused, QueueSizePoint):
                points[n] = reused
            else:
                pending.append(n)

    rows = parallel_map(
        _queue_size_task, [(entries, trace) for entries in pending], jobs=jobs
    )
    for n, row in zip(pending, rows):
        points[n] = row
        if journal is not None:
            journal.record_completed(
                f"queue-size:entries={n}", fingerprints[n], artifact_value=row
            )
    return QueueSizeResult(workload.name, [points[n] for n in queue_sizes])


@dataclass
class QueueSizePoint:
    entries: int
    cycles: int
    branch_accuracy: float
    dcache_miss_rate: float
    issue_disorder: float


@dataclass
class QueueSizeResult:
    benchmark: str
    points: list[QueueSizePoint]

    def format(self) -> str:
        lines = [
            f"ablation: single-cluster dispatch-queue size ({self.benchmark})",
            f"{'entries':>8} {'cycles':>9} {'br acc':>8} {'d$ miss':>8} {'disorder':>9}",
        ]
        for p in self.points:
            lines.append(
                f"{p.entries:>8} {p.cycles:>9} {100 * p.branch_accuracy:>7.2f}% "
                f"{100 * p.dcache_miss_rate:>7.2f}% {p.issue_disorder:>9.2f}"
            )
        return "\n".join(lines)


def run_imbalance_scope_ablation(
    build: Callable[[], Workload],
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Whole-block vs prefix-only imbalance estimation in the local
    scheduler (the interpretation choice documented in
    :func:`repro.core.balance.imbalance_around`)."""
    tasks = [
        (
            f"scope={scope}",
            build(),
            EvaluationOptions(
                trace_length=trace_length,
                partitioner=LocalScheduler(imbalance_scope=scope),
                retry=retry,
            ),
        )
        for scope in ("block", "prefix")
    ]
    return AblationResult(
        "local-scheduler imbalance scope",
        _points(tasks, jobs, journal, sweep="imbalance-scope"),
    )


def run_unroll_ablation(
    build: Callable[[], Workload],
    factors: tuple[int, ...] = (1, 2, 4),
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Section 6 future work: unroll inner loops before partitioning.

    "Loop unrolling could be used to generate a code schedule in which
    multiple iterations of a loop were interleaved, with each iteration
    scheduled to use a separate cluster."  Unrolled copies are mostly
    independent, so the local scheduler can spread them; the sweep
    measures whether that pays on this workload.
    """
    from repro.compiler.passes.unroll import unroll_program
    from repro.workloads.branch_models import LoopBranch

    tasks = []
    for factor in factors:
        workload = build()
        if factor > 1 and unroll_program(workload.program, factor):
            # Trip counts now describe unrolled trips: scale the loop
            # behaviours down so dynamic iteration counts stay comparable.
            for name, model in list(workload.behaviors.items()):
                if isinstance(model, LoopBranch):
                    workload.behaviors[name] = LoopBranch(
                        max(1, model.trip_count // factor), model.jitter
                    )
        tasks.append(
            (
                f"unroll x{factor}",
                workload,
                EvaluationOptions(trace_length=trace_length, retry=retry),
            )
        )
    return AblationResult(
        "loop unrolling factor (Section 6 future work)",
        _points(tasks, jobs, journal, sweep="unroll"),
    )


def run_global_widening_ablation(
    build: Callable[[], Workload],
    extra_global_registers: tuple[int, ...] = (0, 2, 4),
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Section 6 future work: allocate key variables to global registers.

    "A second scheme is to allocate key variables to global registers so
    that the variables can be accessed from within each cluster without an
    inter-cluster data transfer."  Sweeps the number of extra architectural
    registers made global (beyond SP/GP); each consumes a physical register
    in every cluster, so the benefit trades against register pressure.
    """
    from repro.isa.registers import int_reg

    tasks = []
    for count in extra_global_registers:
        extras = tuple(int_reg(2 + i) for i in range(count))
        assignment = RegisterAssignment.even_odd_dual(extra_globals=extras)
        tasks.append(
            (
                f"extra globals={count}",
                build(),
                EvaluationOptions(
                    trace_length=trace_length,
                    dual_assignment=assignment,
                    retry=retry,
                ),
            )
        )
    return AblationResult(
        "extra global registers (Section 6 future work)",
        _points(tasks, jobs, journal, sweep="global-widening"),
    )


def run_assignment_ablation(
    build: Callable[[], Workload],
    trace_length: int = 30_000,
    jobs: int = 1,
    journal: Optional["RunJournal"] = None,
    retry: Optional["RetryPolicy"] = None,
) -> AblationResult:
    """Even/odd (the paper's choice) vs low/high register-to-cluster maps."""
    tasks = [
        (
            label,
            build(),
            EvaluationOptions(
                trace_length=trace_length, dual_assignment=assignment, retry=retry
            ),
        )
        for label, assignment in (
            ("even/odd", RegisterAssignment.even_odd_dual()),
            ("low/high", RegisterAssignment.low_high_dual()),
        )
    ]
    return AblationResult(
        "register-to-cluster assignment",
        _points(tasks, jobs, journal, sweep="assignment"),
    )
