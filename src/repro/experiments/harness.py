"""Common machinery for running the paper's experiments.

The methodology mirrors Section 4:

1. compile the workload's IL with the cluster-oblivious allocator — the
   *native binary*;
2. rescheduled binary: partition live ranges (the local scheduler by
   default) against the even/odd dual-cluster register assignment and
   re-allocate;
3. trace each binary with identical workload models and seed;
4. simulate: native binary on the single-cluster machine (the baseline),
   native binary on the dual-cluster machine (Table 2 column "none"),
   rescheduled binary on the dual-cluster machine (column "local");
5. report the percentage speedup ``100 - 100 * C_dual / C_single``
   (negative = slowdown), the paper's Table 2 metric.

The three simulations of step 4 are the sweep engine's unit of work: an
evaluation decomposes into :data:`PARTS`, each independently computable
from ``(workload, options)`` — that is what lets ``--jobs N`` fan a
benchmark's runs out to worker processes while staying bit-identical to
the serial path (every stage is seeded and deterministic).

Compilation results and generated traces flow through a content-keyed
:class:`~repro.perf.cache.ArtifactCache` (an ephemeral in-memory one when
``options.cache`` is unset, so the native binary is still compiled and
traced only once per evaluation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanWriter

from repro.compiler.pipeline import CompilationResult, CompilerOptions, compile_program
from repro.core.partition.base import Partitioner
from repro.core.partition.local import LocalScheduler
from repro.core.registers import RegisterAssignment
from repro.errors import ReproError, SimulationError
from repro.perf.cache import ArtifactCache, compile_key, trace_key
from repro.robustness.faultinject import FaultPlan
from repro.robustness.retry import RetryPolicy, run_with_retry
from repro.robustness.validate import validate_run, validate_trace_length
from repro.uarch.config import ProcessorConfig, dual_cluster_config, single_cluster_config
from repro.uarch.engine import make_processor
from repro.uarch.processor import Processor, SimulationResult, simulate
from repro.workloads.generator import Workload
from repro.workloads.spec92 import DEFAULT_TRACE_LENGTH
from repro.workloads.tracegen import TraceGenerator

#: The three independently computable runs of one benchmark evaluation,
#: in the order the serial methodology performs (and validates) them.
PARTS = ("single", "dual_none", "dual_local")


def speedup_percent(single_cycles: int, dual_cycles: int) -> float:
    """Table 2's metric: ``100 - 100 * C_dual / C_single``.

    Positive values are speedups, negative values slowdowns.

    Raises:
        SimulationError: if the baseline retired in zero cycles (an empty
            or corrupt run) — the metric is undefined, and an untyped
            ``ZeroDivisionError`` must never escape the harness.
    """
    if single_cycles == 0:
        raise SimulationError(
            "single-cluster baseline reports zero cycles; speedup is undefined "
            "(empty trace or corrupt simulation result)",
            single_cycles=single_cycles,
            dual_cycles=dual_cycles,
        )
    return 100.0 - 100.0 * dual_cycles / single_cycles


@dataclass
class BenchmarkEvaluation:
    """All runs for one benchmark (one row of Table 2, plus diagnostics)."""

    name: str
    single: SimulationResult
    dual_none: SimulationResult
    dual_local: SimulationResult
    native_compile: CompilationResult
    local_compile: CompilationResult
    trace_length: int = 0

    @property
    def pct_none(self) -> float:
        return speedup_percent(self.single.cycles, self.dual_none.cycles)

    @property
    def pct_local(self) -> float:
        return speedup_percent(self.single.cycles, self.dual_local.cycles)


@dataclass
class PartOutcome:
    """One completed part of an evaluation (the parallel unit of work)."""

    part: str
    sim: SimulationResult
    compile_result: CompilationResult
    trace_length: int


@dataclass
class BenchmarkFailure:
    """Structured record of one benchmark that failed during a sweep.

    Sweeps catch per-benchmark :class:`~repro.errors.ReproError`\\ s into
    these records instead of aborting, so one sabotaged benchmark never
    costs the results of the others (graceful degradation)."""

    benchmark: str
    error_type: str
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_error(cls, benchmark: str, error: ReproError) -> "BenchmarkFailure":
        return cls(
            benchmark=benchmark,
            error_type=type(error).__name__,
            message=error.message,
            context=dict(error.context),
        )

    def format(self) -> str:
        ctx = " ".join(
            f"{k}={v}" for k, v in self.context.items() if k != "benchmark"
        )
        line = f"{self.benchmark:<10} {self.error_type:<20} {self.message}"
        return f"{line} [{ctx}]" if ctx else line


@dataclass
class EvaluationOptions:
    """Knobs for :func:`evaluate_workload`."""

    trace_length: int = DEFAULT_TRACE_LENGTH
    trace_seed: int = 7
    partitioner: Optional[Partitioner] = None  # default: LocalScheduler()
    single_config: Optional[ProcessorConfig] = None
    dual_config: Optional[ProcessorConfig] = None
    dual_assignment: Optional[RegisterAssignment] = None
    compiler: CompilerOptions = field(default_factory=CompilerOptions)
    #: Pre-flight validation of configs, assignments, and traces
    #: (repro.robustness.validate) before each simulation.
    validate: bool = True
    #: Enable the simulator's per-cycle invariant checker.
    self_check: bool = False
    #: Simulation kernel override: ``"reference"`` / ``"batched"``
    #: (``ProcessorConfig.engine``); ``None`` respects whatever the
    #: configs already say.  Excluded from ``options_fingerprint`` — the
    #: engines are bit-identical, so the knob never changes row values
    #: (enforced by tests/uarch/test_engine_identity.py).
    engine: Optional[str] = None
    #: Watchdog cycle budget per simulation (0 = derived default).
    cycle_budget: int = 0
    #: Worker processes for sweeps (1 = serial; 0 = one per CPU core).
    #: Consumed by ``run_table2`` and the other sweep drivers, not by a
    #: single ``evaluate_workload`` call.
    jobs: int = 1
    #: Artifact cache for compile/trace results.  ``None`` uses a fresh
    #: in-memory cache per evaluation (no cross-call reuse).
    cache: Optional[ArtifactCache] = None
    #: Deterministic retry policy for sweep rows (repro.robustness.retry).
    #: ``None`` = single attempt (no retries).
    retry: Optional["RetryPolicy"] = None
    #: Declarative fault-injection schedule (repro.robustness.faultinject).
    #: Applied per (benchmark, part, attempt); ``None`` = no injection.
    fault_plan: Optional["FaultPlan"] = None
    #: Which sweep attempt this evaluation is (threaded by the retry
    #: wrapper so transient fault specs can clear between attempts).
    fault_attempt: int = 0
    #: Seconds between sweep heartbeat lines (``obs.heartbeat``) during
    #: ``--jobs`` sweeps: ``None`` disables them, ``0`` emits after
    #: every row (deterministic; tests).  Excluded from
    #: ``options_fingerprint`` — heartbeats never change row values.
    heartbeat_interval: Optional[float] = 5.0
    #: Sweep executor (``repro.perf.executor``): ``"pool"`` is the
    #: trusting process pool; ``"supervised"`` adds per-task deadlines,
    #: dead/wedged-worker detection, and bounded re-dispatch.  All of
    #: these executor knobs are excluded from ``options_fingerprint``:
    #: the executor decides *how* rows are computed, never their values
    #: (re-dispatch and the degraded serial path are bit-identical).
    executor: str = "pool"
    #: Per-task deadline in seconds for the supervised executor;
    #: ``None`` derives one from ``trace_length``.
    task_timeout: Optional[float] = None
    #: Re-dispatches allowed per task after a lost worker or expired
    #: deadline before the circuit breaker degrades the sweep to serial.
    redispatch_budget: int = 2
    #: Executor-level fault schedule (chaos: worker_kill/stall/partition),
    #: consulted by supervised *workers* at task pickup.  Stripped from
    #: the options shipped into workers' tasks so it cannot recurse.
    worker_fault_plan: Optional["FaultPlan"] = None
    #: Distributed-executor knobs (``--executor distributed``): the
    #: coordinator's bind address/port (``dist_port=0`` picks a free
    #: port), how many worker hosts must register before dispatch, and
    #: how long to wait for them before degrading to local execution.
    #: Executor knobs like the rest: excluded from
    #: ``options_fingerprint``, never value-determining.
    dist_host: str = "127.0.0.1"
    dist_port: int = 0
    dist_min_hosts: int = 1
    dist_wait_s: float = 10.0
    #: Orchestration span sink (``repro.obs.spans.SpanWriter``) for the
    #: sweep drivers; ``None`` disables span tracing.  Observational
    #: like heartbeats — excluded from ``options_fingerprint`` and
    #: stripped from the options shipped into workers (it holds an open
    #: file; workers journal their own span shards instead).
    spans: Optional["SpanWriter"] = None

    def apply_robustness(self, config: ProcessorConfig) -> ProcessorConfig:
        """Thread the self-check / cycle-budget / engine knobs into a config."""
        if (
            config.self_check == self.self_check
            and not self.cycle_budget
            and (self.engine is None or config.engine == self.engine)
        ):
            return config
        return replace(
            config,
            self_check=self.self_check,
            cycle_budget=self.cycle_budget or config.cycle_budget,
            engine=self.engine or config.engine,
        )


def _compile_cached(
    workload: Workload,
    assignment: RegisterAssignment,
    partitioner: Optional[Partitioner],
    options: EvaluationOptions,
    cache: ArtifactCache,
) -> tuple[CompilationResult, str]:
    """Compile through the artifact cache; returns (result, compile key)."""
    key = compile_key(
        workload.name, workload.program, assignment, partitioner, options.compiler
    )
    compiled = cache.get("compile", key)
    if compiled is None:
        compiled = compile_program(
            workload.program, assignment, partitioner=partitioner,
            options=options.compiler,
        )
        cache.put("compile", key, compiled)
    return compiled, key


def _trace_cached(
    workload: Workload,
    compiled: CompilationResult,
    ckey: str,
    options: EvaluationOptions,
    cache: ArtifactCache,
) -> Sequence:
    """Generate the dynamic trace through the artifact cache."""
    key = trace_key(
        ckey, workload.streams, workload.behaviors,
        options.trace_seed, options.trace_length,
    )
    trace = cache.get("trace", key)
    if trace is None:
        trace = TraceGenerator(
            compiled.machine, workload.streams, workload.behaviors,
            seed=options.trace_seed,
        ).generate(options.trace_length)
        cache.put("trace", key, trace)
    return trace


def evaluate_workload_part(
    workload: Workload,
    part: str,
    options: Optional[EvaluationOptions] = None,
    cache: Optional[ArtifactCache] = None,
) -> PartOutcome:
    """Run one of the three Section 4 simulations for one workload.

    Each part compiles the binary it needs (native for ``single`` and
    ``dual_none``, rescheduled for ``dual_local``), traces it, validates
    the run, and simulates — all through the artifact cache, so parts
    that share a binary share the compile and trace work whenever they
    share a cache.
    """
    if part not in PARTS:
        raise ValueError(f"unknown evaluation part {part!r}; valid: {PARTS}")
    options = options or EvaluationOptions()
    validate_trace_length(options.trace_length, benchmark=workload.name)
    if cache is None:
        cache = options.cache if options.cache is not None else ArtifactCache()

    dual_assignment = options.dual_assignment or RegisterAssignment.even_odd_dual()
    partitioner = options.partitioner or LocalScheduler()

    if part == "dual_local":
        compiled, ckey = _compile_cached(
            workload, dual_assignment, partitioner, options, cache
        )
    else:
        compiled, ckey = _compile_cached(
            workload, RegisterAssignment.single_cluster(), None, options, cache
        )
    trace = _trace_cached(workload, compiled, ckey, options, cache)
    plan = options.fault_plan
    if plan:
        # Sabotage a *copy* before validation, exactly where a mangled
        # trace file would enter the pipeline; the cached artifact stays
        # pristine, so a later clean attempt reuses it untouched.
        trace = plan.apply_trace_faults(
            workload.name, part, options.fault_attempt, trace
        )

    if part == "single":
        config = options.apply_robustness(
            options.single_config or single_cluster_config()
        )
        assignment = RegisterAssignment.single_cluster()
    else:
        config = options.apply_robustness(options.dual_config or dual_cluster_config())
        assignment = dual_assignment

    if options.validate:
        validate_run(
            config, assignment, trace, compiled.machine, benchmark=workload.name
        )
    if plan:
        processor = make_processor(config, assignment)
        for fault in plan.runtime_faults(
            workload.name,
            part,
            options.fault_attempt,
            clusters=len(processor.clusters),
        ):
            processor.install_fault(fault)
        sim = processor.run(trace)
    else:
        sim = simulate(trace, config, assignment)
    return PartOutcome(
        part=part,
        sim=sim,
        compile_result=compiled,
        trace_length=options.trace_length,
    )


def assemble_evaluation(
    name: str, outcomes: Sequence[PartOutcome]
) -> BenchmarkEvaluation:
    """Combine the three part outcomes into one :class:`BenchmarkEvaluation`."""
    by_part = {outcome.part: outcome for outcome in outcomes}
    missing = [part for part in PARTS if part not in by_part]
    if missing:
        raise ValueError(f"incomplete evaluation for {name!r}: missing {missing}")
    return BenchmarkEvaluation(
        name=name,
        single=by_part["single"].sim,
        dual_none=by_part["dual_none"].sim,
        dual_local=by_part["dual_local"].sim,
        native_compile=by_part["single"].compile_result,
        local_compile=by_part["dual_local"].compile_result,
        trace_length=by_part["single"].trace_length,
    )


def evaluate_workload(
    workload: Workload,
    options: Optional[EvaluationOptions] = None,
    cache: Optional[ArtifactCache] = None,
) -> BenchmarkEvaluation:
    """Run the full Section 4 methodology on one workload."""
    options = options or EvaluationOptions()
    if cache is None:
        cache = options.cache if options.cache is not None else ArtifactCache()
    outcomes = [
        evaluate_workload_part(workload, part, options, cache) for part in PARTS
    ]
    return assemble_evaluation(workload.name, outcomes)


def evaluate_workload_retrying(
    workload: Workload,
    options: Optional[EvaluationOptions] = None,
    cache: Optional[ArtifactCache] = None,
) -> BenchmarkEvaluation:
    """:func:`evaluate_workload` under the options' retry policy.

    Errors still propagate (the caller owns degradation); each part just
    gets its deterministic attempt budget first.  With no policy set this
    is exactly :func:`evaluate_workload`.
    """
    options = options or EvaluationOptions()
    if options.retry is None:
        return evaluate_workload(workload, options, cache=cache)
    if cache is None:
        cache = options.cache if options.cache is not None else ArtifactCache()
    outcomes = [
        evaluate_part_with_retry(workload, part, options, cache)[0]
        for part in PARTS
    ]
    return assemble_evaluation(workload.name, outcomes)


def evaluate_part_with_retry(
    workload: Workload,
    part: str,
    options: EvaluationOptions,
    cache: Optional[ArtifactCache] = None,
    sleep=time.sleep,
) -> tuple[PartOutcome, int]:
    """One evaluation part under the options' retry policy.

    The unit of resilience shared by the serial and ``--jobs`` sweep
    paths: attempt ``k`` re-runs the part with ``fault_attempt=k`` (so a
    transient fault spec can clear), the backoff schedule is keyed by
    ``benchmark:part`` (deterministic per seed), and the error that
    finally escapes carries ``part``, ``attempts``, and
    ``failure_class`` in its context for degradation records and replay
    bundles.

    Returns ``(outcome, attempts_used)``.
    """

    def one_attempt(attempt: int) -> PartOutcome:
        return evaluate_workload_part(
            workload, part, replace(options, fault_attempt=attempt), cache
        )

    try:
        result = run_with_retry(
            one_attempt,
            policy=options.retry,
            token=f"{workload.name}:{part}",
            sleep=sleep,
        )
    except ReproError as error:
        error.context.setdefault("part", part)
        raise
    return result.value, len(result.attempts)


def evaluate_workload_resilient(
    workload: Workload,
    options: Optional[EvaluationOptions] = None,
    cache: Optional[ArtifactCache] = None,
) -> tuple[Optional[BenchmarkEvaluation], Optional[BenchmarkFailure], int]:
    """Full evaluation with per-part retries and graceful degradation.

    Returns ``(evaluation, failure, total_attempts)`` where exactly one
    of ``evaluation`` / ``failure`` is set.  With ``options.retry`` unset
    this is behaviourally identical to :func:`evaluate_workload` wrapped
    in the sweep's ``except ReproError`` degradation."""
    options = options or EvaluationOptions()
    if cache is None:
        cache = options.cache if options.cache is not None else ArtifactCache()
    outcomes: list[PartOutcome] = []
    total_attempts = 0
    for part in PARTS:
        try:
            outcome, attempts = evaluate_part_with_retry(
                workload, part, options, cache
            )
        except ReproError as error:
            total_attempts += error.context.get("attempts", 1)
            return None, BenchmarkFailure.from_error(workload.name, error), (
                total_attempts
            )
        outcomes.append(outcome)
        total_attempts += attempts
    return assemble_evaluation(workload.name, outcomes), None, total_attempts
