"""Common machinery for running the paper's experiments.

The methodology mirrors Section 4:

1. compile the workload's IL with the cluster-oblivious allocator — the
   *native binary*;
2. rescheduled binary: partition live ranges (the local scheduler by
   default) against the even/odd dual-cluster register assignment and
   re-allocate;
3. trace each binary with identical workload models and seed;
4. simulate: native binary on the single-cluster machine (the baseline),
   native binary on the dual-cluster machine (Table 2 column "none"),
   rescheduled binary on the dual-cluster machine (column "local");
5. report the percentage speedup ``100 - 100 * C_dual / C_single``
   (negative = slowdown), the paper's Table 2 metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.compiler.pipeline import CompilationResult, CompilerOptions, compile_program
from repro.core.partition.base import Partitioner
from repro.core.partition.local import LocalScheduler
from repro.core.registers import RegisterAssignment
from repro.errors import ReproError
from repro.robustness.validate import validate_run
from repro.uarch.config import ProcessorConfig, dual_cluster_config, single_cluster_config
from repro.uarch.processor import SimulationResult, simulate
from repro.workloads.generator import Workload
from repro.workloads.spec92 import DEFAULT_TRACE_LENGTH
from repro.workloads.tracegen import TraceGenerator


def speedup_percent(single_cycles: int, dual_cycles: int) -> float:
    """Table 2's metric: ``100 - 100 * C_dual / C_single``.

    Positive values are speedups, negative values slowdowns.
    """
    return 100.0 - 100.0 * dual_cycles / single_cycles


@dataclass
class BenchmarkEvaluation:
    """All runs for one benchmark (one row of Table 2, plus diagnostics)."""

    name: str
    single: SimulationResult
    dual_none: SimulationResult
    dual_local: SimulationResult
    native_compile: CompilationResult
    local_compile: CompilationResult
    trace_length: int = 0

    @property
    def pct_none(self) -> float:
        return speedup_percent(self.single.cycles, self.dual_none.cycles)

    @property
    def pct_local(self) -> float:
        return speedup_percent(self.single.cycles, self.dual_local.cycles)


@dataclass
class BenchmarkFailure:
    """Structured record of one benchmark that failed during a sweep.

    Sweeps catch per-benchmark :class:`~repro.errors.ReproError`\\ s into
    these records instead of aborting, so one sabotaged benchmark never
    costs the results of the others (graceful degradation)."""

    benchmark: str
    error_type: str
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_error(cls, benchmark: str, error: ReproError) -> "BenchmarkFailure":
        return cls(
            benchmark=benchmark,
            error_type=type(error).__name__,
            message=error.message,
            context=dict(error.context),
        )

    def format(self) -> str:
        ctx = " ".join(
            f"{k}={v}" for k, v in self.context.items() if k != "benchmark"
        )
        line = f"{self.benchmark:<10} {self.error_type:<20} {self.message}"
        return f"{line} [{ctx}]" if ctx else line


@dataclass
class EvaluationOptions:
    """Knobs for :func:`evaluate_workload`."""

    trace_length: int = DEFAULT_TRACE_LENGTH
    trace_seed: int = 7
    partitioner: Optional[Partitioner] = None  # default: LocalScheduler()
    single_config: Optional[ProcessorConfig] = None
    dual_config: Optional[ProcessorConfig] = None
    dual_assignment: Optional[RegisterAssignment] = None
    compiler: CompilerOptions = field(default_factory=CompilerOptions)
    #: Pre-flight validation of configs, assignments, and traces
    #: (repro.robustness.validate) before each simulation.
    validate: bool = True
    #: Enable the simulator's per-cycle invariant checker.
    self_check: bool = False
    #: Watchdog cycle budget per simulation (0 = derived default).
    cycle_budget: int = 0

    def apply_robustness(self, config: ProcessorConfig) -> ProcessorConfig:
        """Thread the self-check / cycle-budget knobs into a machine config."""
        if config.self_check == self.self_check and not self.cycle_budget:
            return config
        return replace(
            config,
            self_check=self.self_check,
            cycle_budget=self.cycle_budget or config.cycle_budget,
        )


def evaluate_workload(
    workload: Workload, options: Optional[EvaluationOptions] = None
) -> BenchmarkEvaluation:
    """Run the full Section 4 methodology on one workload."""
    options = options or EvaluationOptions()
    single_config = options.apply_robustness(
        options.single_config or single_cluster_config()
    )
    dual_config = options.apply_robustness(options.dual_config or dual_cluster_config())
    dual_assignment = options.dual_assignment or RegisterAssignment.even_odd_dual()
    partitioner = options.partitioner or LocalScheduler()

    native = compile_program(
        workload.program,
        RegisterAssignment.single_cluster(),
        partitioner=None,
        options=options.compiler,
    )
    rescheduled = compile_program(
        workload.program,
        dual_assignment,
        partitioner=partitioner,
        options=options.compiler,
    )

    native_trace = TraceGenerator(
        native.machine, workload.streams, workload.behaviors, seed=options.trace_seed
    ).generate(options.trace_length)
    local_trace = TraceGenerator(
        rescheduled.machine, workload.streams, workload.behaviors, seed=options.trace_seed
    ).generate(options.trace_length)

    single_assignment = RegisterAssignment.single_cluster()
    if options.validate:
        validate_run(
            single_config,
            single_assignment,
            native_trace,
            native.machine,
            benchmark=workload.name,
        )
        validate_run(
            dual_config,
            dual_assignment,
            native_trace,
            native.machine,
            benchmark=workload.name,
        )
        validate_run(
            dual_config,
            dual_assignment,
            local_trace,
            rescheduled.machine,
            benchmark=workload.name,
        )

    single = simulate(native_trace, single_config, single_assignment)
    dual_none = simulate(native_trace, dual_config, dual_assignment)
    dual_local = simulate(local_trace, dual_config, dual_assignment)

    return BenchmarkEvaluation(
        name=workload.name,
        single=single,
        dual_none=dual_none,
        dual_local=dual_local,
        native_compile=native,
        local_compile=rescheduled,
        trace_length=options.trace_length,
    )
