"""Experiment E8: the paper's Figure 6 worked example.

Builds the exact control-flow graph of Figure 6 (five basic blocks with
dynamic-execution estimates 20/10/10/100/20, instructions 1-12, live
ranges A-H plus the global-candidate stack pointer S) and runs the local
scheduler over it.  The paper states the resulting orders:

* basic blocks are traversed 4, 1, 5, 3, 2;
* live ranges are assigned C, G, B, A, E, D, H (S is skipped: it is a
  global-register candidate and "is not considered during live range
  partitioning").

Both orders are checked by ``tests/core/test_local_scheduler_figure6.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.webs import build_live_ranges, designate_global_candidates
from repro.core.partition.local import LocalScheduler
from repro.ir.builder import ProgramBuilder
from repro.ir.instructions import ILInstruction
from repro.ir.program import ILProgram
from repro.isa.opcodes import Opcode

#: The paper's expected assignment order of live ranges.
PAPER_ASSIGNMENT_ORDER = ["C", "G", "B", "A", "E", "D", "H"]
#: The paper's expected block traversal order.
PAPER_BLOCK_ORDER = ["bb4", "bb1", "bb5", "bb3", "bb2"]


def build_figure6_program() -> ILProgram:
    """The Figure 6 CFG, instruction for instruction.

    The figure's compound expressions (e.g. ``5: G = [S] + E``) are kept
    as single IL instructions — a load whose sources are the base and
    index — so the live-range structure matches the paper's exactly.
    """
    b = ProgramBuilder("figure6")
    S = b.stack_pointer_value("S")
    A, B, C, D, E, G, H = (b.value(n) for n in "ABCDEGH")

    b.block("bb1", count=20)
    b.emit(ILInstruction(Opcode.LDA, dest=C, imm=0))          # 1: C = 0
    b.emit(ILInstruction(Opcode.LDA, dest=E, imm=16))         # 2: E = 16
    b.emit(ILInstruction(Opcode.BNE, srcs=(C,), target="bb3"))
    b.current.set_successors(["bb3", "bb2"], [0.5, 0.5])

    b.block("bb2", count=10)
    b.emit(ILInstruction(Opcode.LDQ, dest=G, srcs=(S,), imm=8))   # 3: G = [S] + 8
    b.emit(ILInstruction(Opcode.LDQ, dest=H, srcs=(S,), imm=4))   # 4: H = [S] + 4
    b.emit(ILInstruction(Opcode.BR, target="bb4"))

    b.block("bb3", count=10)
    b.emit(ILInstruction(Opcode.LDQ, dest=G, srcs=(S, E)))        # 5: G = [S + E]
    b.emit(ILInstruction(Opcode.LDQ, dest=H, srcs=(S,), imm=12))  # 6: H = [S] + 12
    b.emit(ILInstruction(Opcode.ADDQ, dest=S, srcs=(H, E)))       # 7: S = H + E

    b.block("bb4", count=100)
    b.emit(ILInstruction(Opcode.ADDQ, dest=A, srcs=(G,), imm=10))  # 8: A = G + 10
    b.emit(ILInstruction(Opcode.MULQ, dest=B, srcs=(A, A)))        # 9: B = A x A
    b.emit(ILInstruction(Opcode.SRA, dest=G, srcs=(B, H)))         # 10: G = B / H
    b.emit(ILInstruction(Opcode.ADDQ, dest=C, srcs=(G, C)))        # 11: C = G + C
    b.emit(ILInstruction(Opcode.BNE, srcs=(C,), target="bb4"))
    b.current.set_successors(["bb4", "bb5"], [100.0 / 120.0, 20.0 / 120.0])

    b.block("bb5", count=20)
    b.emit(ILInstruction(Opcode.ADDQ, dest=D, srcs=(C, G)))        # 12: D = C + G
    b.ret()
    return b.build()


@dataclass
class Figure6Result:
    """The local scheduler's behaviour on Figure 6."""

    block_order: list[str]
    assignment_order: list[str]
    partition: dict[str, int]

    @property
    def matches_paper(self) -> bool:
        return (
            self.block_order == PAPER_BLOCK_ORDER
            and self.assignment_order == PAPER_ASSIGNMENT_ORDER
        )


def run_figure6(imbalance_threshold: int = 2) -> Figure6Result:
    """Run the local scheduler on Figure 6 and report the orders."""
    program = build_figure6_program()
    lrs = build_live_ranges(program)
    designate_global_candidates(lrs)
    scheduler = LocalScheduler(imbalance_threshold=imbalance_threshold)
    block_order = [blk.label for blk in scheduler.block_order(program)]
    partition = scheduler.partition(program, lrs)
    return Figure6Result(
        block_order=block_order,
        assignment_order=[lr.name for lr in scheduler.assignment_order],
        partition={
            lr.name: partition[lr.lrid]
            for lr in lrs
            if lr.lrid in partition
        },
    )


def run_figure6_sweep(
    thresholds: tuple[int, ...] = (0, 1, 2, 4, 8),
    jobs: int = 1,
    journal=None,
) -> list[tuple[int, Figure6Result]]:
    """Run the Figure 6 walk-through across imbalance thresholds.

    The worked example is deterministic per threshold, so the sweep is
    embarrassingly parallel; ``jobs != 1`` fans the points out to worker
    processes with identical results.  A ``journal``
    (:class:`~repro.robustness.journal.RunJournal`) makes the sweep
    resumable: journaled thresholds are reused verbatim and only missing
    points are recomputed.
    """
    from repro.perf.parallel import parallel_map

    results: dict[int, Figure6Result] = {}
    pending = list(thresholds)
    fingerprints: dict[int, str] = {}
    if journal is not None:
        from repro.perf.fingerprint import fingerprint

        fingerprints = {
            t: fingerprint(("figure6/v1", t)) for t in thresholds
        }
        pending = []
        for t in thresholds:
            reused = journal.load_artifact(
                journal.completed(f"figure6:threshold={t}", fingerprints[t])
            )
            if isinstance(reused, Figure6Result):
                results[t] = reused
            else:
                pending.append(t)

    computed = parallel_map(run_figure6, pending, jobs=jobs)
    for t, result in zip(pending, computed):
        results[t] = result
        if journal is not None:
            journal.record_completed(
                f"figure6:threshold={t}", fingerprints[t], artifact_value=result
            )
    return [(t, results[t]) for t in thresholds]


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_figure6()
    print("Figure 6 local-scheduler walk-through")
    print(f"  block traversal order : {result.block_order}  (paper: {PAPER_BLOCK_ORDER})")
    print(
        f"  assignment order      : {result.assignment_order}  "
        f"(paper: {PAPER_ASSIGNMENT_ORDER})"
    )
    print(f"  matches paper         : {result.matches_paper}")
    print(f"  cluster assignment    : {result.partition}")


if __name__ == "__main__":  # pragma: no cover
    main()
