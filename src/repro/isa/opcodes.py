"""Opcodes and instruction classes of the Alpha-flavoured ISA.

The paper's Table 1 divides instructions into the classes that govern issue
limits and functional-unit latencies: *integer multiply*, *integer other*,
*floating-point divide*, *floating-point other*, *loads & stores*, and
*control flow*.  The opcode set below is a practical Alpha-like subset that
covers every class; the simulator keys all issue rules and latencies off
:class:`InstrClass`, so the exact opcode spelling is cosmetic.
"""

from __future__ import annotations

import enum


class InstrClass(enum.Enum):
    """Instruction classes used by Table 1's issue rules and latencies."""

    INT_MULTIPLY = "int_multiply"
    INT_OTHER = "int_other"
    FP_DIVIDE = "fp_divide"
    FP_OTHER = "fp_other"
    LOAD = "load"
    STORE = "store"
    CONTROL = "control"

    @property
    def is_integer(self) -> bool:
        return self in (InstrClass.INT_MULTIPLY, InstrClass.INT_OTHER)

    @property
    def is_fp(self) -> bool:
        return self in (InstrClass.FP_DIVIDE, InstrClass.FP_OTHER)

    @property
    def is_memory(self) -> bool:
        return self in (InstrClass.LOAD, InstrClass.STORE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstrClass.{self.name}"


class Opcode(enum.Enum):
    """Alpha-flavoured opcodes.

    The value tuple is ``(mnemonic, instruction class)``.
    """

    # --- integer arithmetic / logic (class: INT_OTHER) -------------------
    ADDQ = ("addq", InstrClass.INT_OTHER)
    SUBQ = ("subq", InstrClass.INT_OTHER)
    AND = ("and", InstrClass.INT_OTHER)
    BIS = ("bis", InstrClass.INT_OTHER)  # logical OR; also the canonical move
    XOR = ("xor", InstrClass.INT_OTHER)
    SLL = ("sll", InstrClass.INT_OTHER)
    SRL = ("srl", InstrClass.INT_OTHER)
    SRA = ("sra", InstrClass.INT_OTHER)
    CMPEQ = ("cmpeq", InstrClass.INT_OTHER)
    CMPLT = ("cmplt", InstrClass.INT_OTHER)
    CMPLE = ("cmple", InstrClass.INT_OTHER)
    LDA = ("lda", InstrClass.INT_OTHER)  # load address (add immediate)
    S4ADDQ = ("s4addq", InstrClass.INT_OTHER)  # scaled add (addressing)
    S8ADDQ = ("s8addq", InstrClass.INT_OTHER)

    # --- integer multiply (class: INT_MULTIPLY) --------------------------
    MULQ = ("mulq", InstrClass.INT_MULTIPLY)
    UMULH = ("umulh", InstrClass.INT_MULTIPLY)

    # --- floating point (class: FP_OTHER) --------------------------------
    ADDT = ("addt", InstrClass.FP_OTHER)
    SUBT = ("subt", InstrClass.FP_OTHER)
    MULT = ("mult", InstrClass.FP_OTHER)
    CPYS = ("cpys", InstrClass.FP_OTHER)  # copy sign; canonical FP move
    CMPTEQ = ("cmpteq", InstrClass.FP_OTHER)
    CMPTLT = ("cmptlt", InstrClass.FP_OTHER)
    CVTQT = ("cvtqt", InstrClass.FP_OTHER)  # int -> fp convert
    CVTTQ = ("cvttq", InstrClass.FP_OTHER)  # fp -> int convert
    SQRTT = ("sqrtt", InstrClass.FP_OTHER)

    # --- floating point divide (class: FP_DIVIDE) ------------------------
    DIVS = ("divs", InstrClass.FP_DIVIDE)  # 32-bit divide: 8-cycle latency
    DIVT = ("divt", InstrClass.FP_DIVIDE)  # 64-bit divide: 16-cycle latency

    # --- memory (classes: LOAD / STORE) -----------------------------------
    LDQ = ("ldq", InstrClass.LOAD)
    LDL = ("ldl", InstrClass.LOAD)
    LDT = ("ldt", InstrClass.LOAD)  # FP load
    LDS = ("lds", InstrClass.LOAD)
    STQ = ("stq", InstrClass.STORE)
    STL = ("stl", InstrClass.STORE)
    STT = ("stt", InstrClass.STORE)  # FP store
    STS = ("sts", InstrClass.STORE)

    # --- control flow (class: CONTROL) ------------------------------------
    BR = ("br", InstrClass.CONTROL)  # unconditional branch
    BEQ = ("beq", InstrClass.CONTROL)
    BNE = ("bne", InstrClass.CONTROL)
    BLT = ("blt", InstrClass.CONTROL)
    BGE = ("bge", InstrClass.CONTROL)
    FBEQ = ("fbeq", InstrClass.CONTROL)  # FP conditional branch
    FBNE = ("fbne", InstrClass.CONTROL)
    JSR = ("jsr", InstrClass.CONTROL)
    RET = ("ret", InstrClass.CONTROL)
    JMP = ("jmp", InstrClass.CONTROL)

    def __init__(self, mnemonic: str, iclass: InstrClass) -> None:
        self.mnemonic = mnemonic
        self.iclass = iclass

    @property
    def is_load(self) -> bool:
        return self.iclass is InstrClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass is InstrClass.STORE

    @property
    def is_memory(self) -> bool:
        return self.iclass.is_memory

    @property
    def is_control(self) -> bool:
        return self.iclass is InstrClass.CONTROL

    @property
    def is_conditional_branch(self) -> bool:
        return self in _CONDITIONAL_BRANCHES

    @property
    def is_unconditional(self) -> bool:
        return self in (Opcode.BR, Opcode.JSR, Opcode.RET, Opcode.JMP)

    @property
    def writes_fp(self) -> bool:
        """Whether the destination register (if any) is floating point."""
        return self.iclass.is_fp or self in (Opcode.LDT, Opcode.LDS)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


_CONDITIONAL_BRANCHES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.FBEQ, Opcode.FBNE}
)

#: Opcodes usable as a register-to-register move, per class.
MOVE_OPCODES = {"int": Opcode.BIS, "fp": Opcode.CPYS}
