"""Architectural register namespace for the Alpha-flavoured ISA.

The paper's machine model (Section 4.1) is "a RISC, superscalar processor
whose instruction set is based on the DEC Alpha instruction set": 32 integer
registers (``r0``-``r31``) and 32 floating-point registers (``f0``-``f31``).
Following the Alpha convention, ``r31`` and ``f31`` read as zero and writes
to them are discarded, ``r30`` is the stack pointer and ``r29`` is the
global pointer.  The stack- and global-pointer registers matter to the
reproduction because Section 3.1 (step 3) designates exactly their live
ranges as global-register candidates.

Registers are interned: ``int_reg(5) is int_reg(5)`` holds, so identity
checks and dictionary lookups in the simulator's hot paths stay cheap.
"""

from __future__ import annotations

import enum
from typing import Iterator

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Index (within each class) of the always-zero register.
ZERO_INDEX = 31
#: Alpha integer register conventionally used as the stack pointer.
STACK_POINTER_INDEX = 30
#: Alpha integer register conventionally used as the global pointer.
GLOBAL_POINTER_INDEX = 29


class RegisterClass(enum.Enum):
    """The two architectural register files of the machine."""

    INT = "int"
    FP = "fp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RegisterClass.{self.name}"


class Register:
    """One architectural register (e.g. ``r4`` or ``f7``).

    Instances are interned; obtain them through :func:`int_reg`,
    :func:`fp_reg`, or :func:`reg_from_uid` rather than the constructor.

    Attributes:
        rclass: whether this is an integer or floating-point register.
        index: register number within its class, ``0..31``.
        uid: a dense unique id across both classes (``0..63``); integer
            registers occupy ``0..31`` and floating-point ``32..63``.
    """

    __slots__ = ("rclass", "index", "uid", "_name")

    def __init__(self, rclass: RegisterClass, index: int) -> None:
        if not 0 <= index < NUM_INT_REGS:
            raise ValueError(f"register index out of range: {index}")
        self.rclass = rclass
        self.index = index
        self.uid = index if rclass is RegisterClass.INT else NUM_INT_REGS + index
        prefix = "r" if rclass is RegisterClass.INT else "f"
        self._name = f"{prefix}{index}"

    @property
    def name(self) -> str:
        """Assembly-style name, e.g. ``"r4"`` or ``"f7"``."""
        return self._name

    @property
    def is_zero(self) -> bool:
        """True for ``r31``/``f31``, which always read as zero."""
        return self.index == ZERO_INDEX

    @property
    def is_stack_pointer(self) -> bool:
        return self.rclass is RegisterClass.INT and self.index == STACK_POINTER_INDEX

    @property
    def is_global_pointer(self) -> bool:
        return self.rclass is RegisterClass.INT and self.index == GLOBAL_POINTER_INDEX

    def __repr__(self) -> str:
        return self._name

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Register):
            return self.uid == other.uid
        return NotImplemented

    def __lt__(self, other: "Register") -> bool:
        return self.uid < other.uid


_INT_REGS = tuple(Register(RegisterClass.INT, i) for i in range(NUM_INT_REGS))
_FP_REGS = tuple(Register(RegisterClass.FP, i) for i in range(NUM_FP_REGS))
_ALL_REGS = _INT_REGS + _FP_REGS


def int_reg(index: int) -> Register:
    """Return the interned integer register ``r<index>``."""
    return _INT_REGS[index]


def fp_reg(index: int) -> Register:
    """Return the interned floating-point register ``f<index>``."""
    return _FP_REGS[index]


def reg_from_uid(uid: int) -> Register:
    """Return the interned register with dense id ``uid`` (``0..63``)."""
    return _ALL_REGS[uid]


def parse_register(name: str) -> Register:
    """Parse an assembly-style register name (``"r4"``, ``"f31"``)."""
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"not a register name: {name!r}")
    index = int(name[1:])
    return int_reg(index) if name[0] == "r" else fp_reg(index)


STACK_POINTER = int_reg(STACK_POINTER_INDEX)
GLOBAL_POINTER = int_reg(GLOBAL_POINTER_INDEX)
INT_ZERO = int_reg(ZERO_INDEX)
FP_ZERO = fp_reg(ZERO_INDEX)


def all_registers() -> Iterator[Register]:
    """Iterate over all 64 architectural registers (int then FP)."""
    return iter(_ALL_REGS)


def allocatable_registers(rclass: RegisterClass) -> tuple[Register, ...]:
    """Registers the allocator may hand out for a class.

    Excludes the zero register, the stack pointer and the global pointer
    (the latter two carry global-candidate live ranges per Section 3.1 and
    are managed separately by the allocator).
    """
    if rclass is RegisterClass.INT:
        reserved = {ZERO_INDEX, STACK_POINTER_INDEX, GLOBAL_POINTER_INDEX}
        return tuple(r for r in _INT_REGS if r.index not in reserved)
    return tuple(r for r in _FP_REGS if r.index != ZERO_INDEX)
