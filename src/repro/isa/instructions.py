"""Machine-level instructions: opcodes applied to architectural registers.

A :class:`MachineInstruction` is the post-register-allocation form of an
instruction — it names architectural :class:`~repro.isa.registers.Register`
objects, exactly the information the multicluster hardware uses to decide
instruction distribution (Section 2.1: "The distribution of instructions to
the clusters is based on the registers named by each instruction").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.registers import Register


@dataclass(frozen=True)
class MachineInstruction:
    """One machine instruction over architectural registers.

    Attributes:
        opcode: the operation.
        dest: destination register, or ``None`` (stores, branches).  A
            destination of ``r31``/``f31`` is normalized to ``None`` by
            :meth:`effective_dest` consumers since writes to the zero
            register are discarded.
        srcs: source registers read by the instruction.  For stores this
            includes both the value register and the base-address register;
            for loads the base-address register.
        imm: optional immediate/displacement (cosmetic; dependences and
            timing never consult it).
        target: for control flow, the label of the target basic block.
        uid: dense static id, assigned when a program is laid out; ``-1``
            for free-standing instructions.
    """

    opcode: Opcode
    dest: Optional[Register] = None
    srcs: tuple[Register, ...] = ()
    imm: Optional[int] = None
    target: Optional[str] = None
    uid: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.srcs, tuple):
            object.__setattr__(self, "srcs", tuple(self.srcs))

    @property
    def iclass(self) -> InstrClass:
        return self.opcode.iclass

    @property
    def effective_dest(self) -> Optional[Register]:
        """The destination register, or ``None`` if it is the zero register."""
        if self.dest is not None and self.dest.is_zero:
            return None
        return self.dest

    @property
    def effective_srcs(self) -> tuple[Register, ...]:
        """Source registers excluding zero registers (always ready)."""
        return tuple(r for r in self.srcs if not r.is_zero)

    def named_registers(self) -> tuple[Register, ...]:
        """All architectural registers named by the instruction.

        This is the set the distribution hardware examines (zero registers
        excluded — they exist in every cluster by definition).
        """
        regs = list(self.effective_srcs)
        dest = self.effective_dest
        if dest is not None:
            regs.append(dest)
        return tuple(regs)

    def with_uid(self, uid: int) -> "MachineInstruction":
        """A copy of this instruction with its static id set."""
        return MachineInstruction(
            opcode=self.opcode,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            target=self.target,
            uid=uid,
        )

    def format(self) -> str:
        """Assembly-style rendering, e.g. ``addq r1, r2 -> r3``."""
        parts = [self.opcode.mnemonic]
        operands = [r.name for r in self.srcs]
        if self.imm is not None:
            operands.append(f"#{self.imm}")
        if operands:
            parts.append(" " + ", ".join(operands))
        if self.dest is not None:
            parts.append(f" -> {self.dest.name}")
        if self.target is not None:
            parts.append(f" @{self.target}")
        return "".join(parts)

    def __str__(self) -> str:
        return self.format()
