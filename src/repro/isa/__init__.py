"""Alpha-flavoured ISA model: registers, opcodes, machine instructions."""

from repro.isa.instructions import MachineInstruction
from repro.isa.opcodes import MOVE_OPCODES, InstrClass, Opcode
from repro.isa.registers import (
    GLOBAL_POINTER,
    INT_ZERO,
    FP_ZERO,
    NUM_FP_REGS,
    NUM_INT_REGS,
    STACK_POINTER,
    Register,
    RegisterClass,
    all_registers,
    allocatable_registers,
    fp_reg,
    int_reg,
    parse_register,
    reg_from_uid,
)

__all__ = [
    "MachineInstruction",
    "MOVE_OPCODES",
    "InstrClass",
    "Opcode",
    "GLOBAL_POINTER",
    "INT_ZERO",
    "FP_ZERO",
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "STACK_POINTER",
    "Register",
    "RegisterClass",
    "all_registers",
    "allocatable_registers",
    "fp_reg",
    "int_reg",
    "parse_register",
    "reg_from_uid",
]
