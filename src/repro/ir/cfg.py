"""Control-flow graph over basic blocks."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.basic_block import BasicBlock


class ControlFlowGraph:
    """A CFG: labelled basic blocks, an entry block, and successor edges.

    Layout order (the order blocks were added) doubles as the static code
    order: a block without an explicit terminator falls through to the next
    block in layout order, provided :meth:`finalize` wired it.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, BasicBlock] = {}
        self._order: list[str] = []
        self.entry_label: Optional[str] = None

    # ------------------------------------------------------------------ build
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.label in self._blocks:
            raise ValueError(f"duplicate block label: {block.label}")
        self._blocks[block.label] = block
        self._order.append(block.label)
        if self.entry_label is None:
            self.entry_label = block.label
        return block

    def block(self, label: str) -> BasicBlock:
        return self._blocks[label]

    def __contains__(self, label: str) -> bool:
        return label in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    # --------------------------------------------------------------- traversal
    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError("empty CFG")
        return self._blocks[self.entry_label]

    def blocks(self) -> Iterator[BasicBlock]:
        """Blocks in layout order."""
        for label in self._order:
            yield self._blocks[label]

    def labels(self) -> list[str]:
        return list(self._order)

    def layout_index(self, label: str) -> int:
        return self._order.index(label)

    def successors(self, label: str) -> list[BasicBlock]:
        return [self._blocks[s] for s in self._blocks[label].succ_labels]

    def predecessors(self, label: str) -> list[BasicBlock]:
        return [b for b in self.blocks() if label in b.succ_labels]

    def predecessor_map(self) -> dict[str, list[str]]:
        """Label -> predecessor labels, computed in one pass."""
        preds: dict[str, list[str]] = {label: [] for label in self._order}
        for block in self.blocks():
            for succ in block.succ_labels:
                preds[succ].append(block.label)
        return preds

    def reverse_postorder(self) -> list[str]:
        """Labels in reverse postorder from the entry (forward dataflow order)."""
        seen: set[str] = set()
        postorder: list[str] = []
        if self.entry_label is None:
            return []
        stack: list[tuple[str, int]] = [(self.entry_label, 0)]
        seen.add(self.entry_label)
        while stack:
            label, child = stack[-1]
            succs = self._blocks[label].succ_labels
            if child < len(succs):
                stack[-1] = (label, child + 1)
                nxt = succs[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                postorder.append(label)
                stack.pop()
        return list(reversed(postorder))

    def back_edges(self) -> list[tuple[str, str]]:
        """CFG back edges ``(tail, head)`` found by DFS (loop detection)."""
        if self.entry_label is None:
            return []
        result: list[tuple[str, str]] = []
        state: dict[str, int] = {}  # 1 = on stack, 2 = done
        stack: list[tuple[str, int]] = [(self.entry_label, 0)]
        state[self.entry_label] = 1
        while stack:
            label, child = stack[-1]
            succs = self._blocks[label].succ_labels
            if child < len(succs):
                stack[-1] = (label, child + 1)
                nxt = succs[child]
                if state.get(nxt) == 1:
                    result.append((label, nxt))
                elif nxt not in state:
                    state[nxt] = 1
                    stack.append((nxt, 0))
            else:
                state[label] = 2
                stack.pop()
        return result

    # ---------------------------------------------------------------- wiring
    def finalize(self) -> None:
        """Wire implicit fallthrough edges and validate explicit ones.

        A block whose terminator is absent or conditional falls through to
        the next block in layout order.  Raises if an edge targets an
        unknown label or a non-final block has no successor.
        """
        for idx, label in enumerate(self._order):
            block = self._blocks[label]
            term = block.terminator
            fallthrough = self._order[idx + 1] if idx + 1 < len(self._order) else None
            if term is None:
                if not block.succ_labels:
                    if fallthrough is not None:
                        block.set_successors([fallthrough], [1.0])
            elif term.opcode.is_unconditional:
                if not block.succ_labels:
                    if term.target is None:
                        # A return (or indirect jump) with no static target
                        # is a program exit.
                        from repro.isa.opcodes import Opcode

                        if term.opcode in (Opcode.RET, Opcode.JMP):
                            continue
                        raise ValueError(f"unconditional branch without target in {label}")
                    block.set_successors([term.target], [1.0])
            else:  # conditional
                if not block.succ_labels:
                    if term.target is None:
                        raise ValueError(f"conditional branch missing a target in {label}")
                    if fallthrough is None:
                        # Last block: falling through the not-taken edge
                        # exits the program.
                        block.set_successors([term.target], [1.0])
                    else:
                        block.set_successors([term.target, fallthrough], [0.5, 0.5])
            for succ in block.succ_labels:
                if succ not in self._blocks:
                    raise ValueError(f"edge from {label} to unknown block {succ}")
