"""Compiler intermediate representation: values, live ranges, CFGs, programs."""

from repro.ir.basic_block import BasicBlock
from repro.ir.builder import ProgramBuilder, sequence_probs
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import ILInstruction
from repro.ir.live_range import LiveRange, LiveRangeSet
from repro.ir.machine_program import (
    INSTRUCTION_BYTES,
    MachineBlock,
    MachineInstrMeta,
    MachineProgram,
)
from repro.ir.program import ILProgram
from repro.ir.values import ILValue

__all__ = [
    "BasicBlock",
    "ProgramBuilder",
    "sequence_probs",
    "ControlFlowGraph",
    "ILInstruction",
    "LiveRange",
    "LiveRangeSet",
    "INSTRUCTION_BYTES",
    "MachineBlock",
    "MachineInstrMeta",
    "MachineProgram",
    "ILProgram",
    "ILValue",
]
