"""IL values (virtual registers).

Section 3.1 (step 2): "the IL instructions correspond one-to-one to the
machine-level instructions of the processor, but unlike the machine-level
instructions, the IL instructions name live ranges and not registers."

An :class:`ILValue` is a named virtual register.  The compiler's web
construction pass (:mod:`repro.compiler.webs`) refines values into
:class:`~repro.ir.live_range.LiveRange` objects — one per connected group of
definitions and uses — which are the unit the partitioner and the register
allocator operate on.  For straight-line generated code each value usually
forms exactly one web.
"""

from __future__ import annotations

from repro.isa.registers import RegisterClass


class ILValue:
    """A virtual register in the intermediate language.

    Attributes:
        vid: dense id, unique within a program.
        name: human-readable name (``"A"``, ``"t17"``, ``"SP"`` ...).
        rclass: integer or floating-point.
        is_stack_pointer / is_global_pointer: marks the two values whose
            live ranges Section 3.1 (step 3) designates as global-register
            candidates.
    """

    __slots__ = ("vid", "name", "rclass", "is_stack_pointer", "is_global_pointer")

    def __init__(
        self,
        vid: int,
        name: str,
        rclass: RegisterClass = RegisterClass.INT,
        is_stack_pointer: bool = False,
        is_global_pointer: bool = False,
    ) -> None:
        self.vid = vid
        self.name = name
        self.rclass = rclass
        self.is_stack_pointer = is_stack_pointer
        self.is_global_pointer = is_global_pointer

    def __repr__(self) -> str:
        return f"%{self.name}"

    def __hash__(self) -> int:
        return self.vid

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ILValue):
            return self.vid == other.vid
        return NotImplemented
