"""The IL program container."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.isa.registers import RegisterClass
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import ControlFlowGraph
from repro.ir.instructions import ILInstruction
from repro.ir.values import ILValue


class ILProgram:
    """An IL program: a CFG plus the value namespace.

    Attributes:
        name: program name (benchmark name for generated workloads).
        cfg: the control-flow graph.
        values: all IL values, indexed by ``vid``.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.cfg = ControlFlowGraph()
        self.values: list[ILValue] = []
        self._by_name: dict[str, ILValue] = {}

    # ----------------------------------------------------------- value space
    def new_value(
        self,
        name: Optional[str] = None,
        rclass: RegisterClass = RegisterClass.INT,
        is_stack_pointer: bool = False,
        is_global_pointer: bool = False,
    ) -> ILValue:
        """Create a fresh IL value; names are made unique if reused."""
        vid = len(self.values)
        if name is None:
            name = f"t{vid}"
        elif name in self._by_name:
            name = f"{name}.{vid}"
        value = ILValue(vid, name, rclass, is_stack_pointer, is_global_pointer)
        self.values.append(value)
        self._by_name[name] = value
        return value

    def value_named(self, name: str) -> ILValue:
        return self._by_name[name]

    @property
    def stack_pointer(self) -> Optional[ILValue]:
        for v in self.values:
            if v.is_stack_pointer:
                return v
        return None

    @property
    def global_pointer(self) -> Optional[ILValue]:
        for v in self.values:
            if v.is_global_pointer:
                return v
        return None

    # ------------------------------------------------------------- structure
    def add_block(self, label: str) -> BasicBlock:
        return self.cfg.add_block(BasicBlock(label))

    def finalize(self) -> "ILProgram":
        """Wire fallthrough edges and assign instruction uids; returns self."""
        self.cfg.finalize()
        self.renumber()
        return self

    def renumber(self) -> None:
        """Assign dense uids to all instructions in layout order.

        Must be re-run after any pass that inserts or removes instructions;
        analyses key off the uids.
        """
        uid = 0
        for block in self.cfg.blocks():
            for instr in block.instructions:
                instr.uid = uid
                uid += 1

    # -------------------------------------------------------------- queries
    def all_instructions(self) -> Iterator[ILInstruction]:
        for block in self.cfg.blocks():
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.cfg.blocks())

    def block_of_uid(self) -> dict[int, str]:
        """uid -> label of the containing block."""
        result: dict[int, str] = {}
        for block in self.cfg.blocks():
            for instr in block.instructions:
                result[instr.uid] = block.label
        return result

    def format(self) -> str:
        """Multi-line listing of the whole program."""
        parts = [f"program {self.name}"]
        parts.extend(block.format() for block in self.cfg.blocks())
        return "\n".join(parts)
