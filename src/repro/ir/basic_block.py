"""Basic blocks: straight-line instruction sequences with one entry/exit."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.instructions import ILInstruction


class BasicBlock:
    """A basic block of IL instructions.

    Attributes:
        label: unique name within the program.
        instructions: the block body.  At most the final instruction may be
            control flow.
        succ_labels: labels of successor blocks in CFG order.  For a block
            ending in a conditional branch the order is
            ``[taken_target, fallthrough]``.
        edge_probs: probability of following each successor edge; used by
            the profiler and the trace generator.  Values sum to 1 when the
            block has successors.
        profile_count: estimated executions of the block's first
            instruction — the sort key of the local scheduler (Section 3.5).
            Populated by profiling; ``0`` until then.
    """

    def __init__(self, label: str, instructions: Optional[list[ILInstruction]] = None) -> None:
        self.label = label
        self.instructions: list[ILInstruction] = list(instructions or [])
        self.succ_labels: list[str] = []
        self.edge_probs: dict[str, float] = {}
        self.profile_count: int = 0

    @property
    def terminator(self) -> Optional[ILInstruction]:
        """The final control-flow instruction, if any."""
        if self.instructions and self.instructions[-1].opcode.is_control:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[ILInstruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return self.instructions

    def add(self, instr: ILInstruction) -> ILInstruction:
        """Append an instruction, enforcing that a terminator stays last."""
        if self.terminator is not None:
            raise ValueError(f"block {self.label} already terminated")
        self.instructions.append(instr)
        return instr

    def set_successors(self, labels: list[str], probs: Optional[list[float]] = None) -> None:
        """Define the successor edges and their probabilities."""
        self.succ_labels = list(labels)
        if probs is None:
            probs = [1.0 / len(labels)] * len(labels) if labels else []
        if len(probs) != len(labels):
            raise ValueError("probs must match labels")
        total = sum(probs)
        if labels and abs(total - 1.0) > 1e-6:
            raise ValueError(f"edge probabilities sum to {total}, expected 1")
        self.edge_probs = dict(zip(labels, probs))

    def __iter__(self) -> Iterator[ILInstruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instructions)} instrs>"

    def format(self) -> str:
        """Multi-line rendering of the block."""
        lines = [f"{self.label}:  (count={self.profile_count})"]
        lines.extend(f"  {i.format()}" for i in self.instructions)
        if self.succ_labels:
            edges = ", ".join(
                f"{lbl} (p={self.edge_probs.get(lbl, 0):.2f})" for lbl in self.succ_labels
            )
            lines.append(f"  => {edges}")
        return "\n".join(lines)
