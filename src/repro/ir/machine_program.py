"""Machine programs: the final, register-allocated code schedule.

A :class:`MachineProgram` mirrors the IL program's CFG but holds
:class:`~repro.isa.instructions.MachineInstruction` objects (architectural
registers, not live ranges) — the "rescheduled binary" of Section 4.  Each
machine instruction carries a :class:`MachineInstrMeta` record preserving
the trace-generation annotations of the IL instruction it was lowered from,
plus a synthetic PC used by the branch predictor and instruction cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.isa.instructions import MachineInstruction

#: Byte distance between consecutive instruction PCs (Alpha-style).
INSTRUCTION_BYTES = 4


@dataclass
class MachineInstrMeta:
    """Sidecar data for one machine instruction.

    Attributes:
        il_uid: uid of the IL instruction this lowered from; ``-1`` for
            compiler-inserted code (spills, copies).
        mem_stream: address-stream annotation for loads/stores.
        branch_model: behaviour-model annotation for conditional branches.
        pc: synthetic program counter (assigned by
            :meth:`MachineProgram.assign_pcs`).
        is_spill: True for spill loads/stores inserted by the allocator.
    """

    il_uid: int = -1
    mem_stream: Optional[str] = None
    branch_model: Optional[str] = None
    pc: int = 0
    is_spill: bool = False


class MachineBlock:
    """A basic block of machine instructions."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: list[MachineInstruction] = []
        self.meta: list[MachineInstrMeta] = []
        self.succ_labels: list[str] = []
        self.edge_probs: dict[str, float] = {}
        self.profile_count: int = 0

    def add(self, instr: MachineInstruction, meta: Optional[MachineInstrMeta] = None) -> None:
        self.instructions.append(instr)
        self.meta.append(meta or MachineInstrMeta())

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[MachineInstruction]:
        return iter(self.instructions)

    def format(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {i.format()}" for i in self.instructions)
        return "\n".join(lines)


class MachineProgram:
    """The register-allocated program consumed by the trace generator."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: dict[str, MachineBlock] = {}
        self._order: list[str] = []
        self.entry_label: Optional[str] = None

    def add_block(self, label: str) -> MachineBlock:
        if label in self._blocks:
            raise ValueError(f"duplicate block label: {label}")
        blk = MachineBlock(label)
        self._blocks[label] = blk
        self._order.append(label)
        if self.entry_label is None:
            self.entry_label = label
        return blk

    def block(self, label: str) -> MachineBlock:
        return self._blocks[label]

    @property
    def entry(self) -> MachineBlock:
        if self.entry_label is None:
            raise ValueError("empty program")
        return self._blocks[self.entry_label]

    def blocks(self) -> Iterator[MachineBlock]:
        for label in self._order:
            yield self._blocks[label]

    def labels(self) -> list[str]:
        return list(self._order)

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks())

    def all_instructions(self) -> Iterator[tuple[MachineInstruction, MachineInstrMeta]]:
        for block in self.blocks():
            yield from zip(block.instructions, block.meta)

    def assign_pcs(self, base: int = 0x1000) -> None:
        """Assign uids and synthetic PCs to all instructions in layout order."""
        pc = base
        uid = 0
        for block in self.blocks():
            for i, instr in enumerate(block.instructions):
                block.instructions[i] = instr.with_uid(uid)
                block.meta[i].pc = pc
                uid += 1
                pc += INSTRUCTION_BYTES

    def format(self) -> str:
        parts = [f"machine program {self.name}"]
        parts.extend(block.format() for block in self.blocks())
        return "\n".join(parts)
