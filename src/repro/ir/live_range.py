"""Live ranges: the unit of cluster partitioning and register allocation.

"A useful abstraction for capturing this source of dependences is that of a
live range" (Section 3, citing Aho et al.).  A live range is a maximal web
of definitions and uses of one value that must share a register.  The local
scheduler (Section 3.5) assigns each local-candidate live range to a
cluster; the register allocator then binds each live range to an
architectural register consistent with that assignment.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.registers import RegisterClass
from repro.ir.values import ILValue


class LiveRange:
    """One live range (def/use web) of an IL value.

    Attributes:
        lrid: dense id, unique within a program's web analysis.
        value: the IL value the range belongs to.
        web_index: which web of the value this is (``0`` when the value has
            a single web).
        def_uids: uids of instructions defining the range.
        use_uids: uids of instructions using the range.
        global_candidate: set by step 3 of the methodology (Section 3.1) —
            stack-pointer and global-pointer ranges are candidates for
            global registers; everything else is a local-register candidate.
        spill_weight: profile-weighted reference count, used to pick spill
            victims (lower weight spills first).
        spill_generation: >0 for ranges created by spill code, which must
            not be spilled again.
    """

    __slots__ = (
        "lrid",
        "value",
        "web_index",
        "def_uids",
        "use_uids",
        "global_candidate",
        "spill_weight",
        "spill_generation",
    )

    def __init__(
        self,
        lrid: int,
        value: ILValue,
        web_index: int = 0,
        global_candidate: bool = False,
        spill_generation: int = 0,
    ) -> None:
        self.lrid = lrid
        self.value = value
        self.web_index = web_index
        self.def_uids: set[int] = set()
        self.use_uids: set[int] = set()
        self.global_candidate = global_candidate
        self.spill_weight = 0.0
        self.spill_generation = spill_generation

    @property
    def rclass(self) -> RegisterClass:
        return self.value.rclass

    @property
    def name(self) -> str:
        if self.web_index == 0:
            return self.value.name
        return f"{self.value.name}.{self.web_index}"

    @property
    def reference_uids(self) -> set[int]:
        """All instruction uids that read or write the range."""
        return self.def_uids | self.use_uids

    def __repr__(self) -> str:
        kind = "global" if self.global_candidate else "local"
        return f"<LiveRange {self.name} ({kind}, {self.rclass.value})>"

    def __hash__(self) -> int:
        return self.lrid

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LiveRange):
            return self.lrid == other.lrid
        return NotImplemented


class LiveRangeSet:
    """The live ranges of a program plus operand->range resolution maps.

    Attributes:
        ranges: all live ranges, indexed by ``lrid``.
        def_map: ``(uid, value) -> LiveRange`` for instruction definitions.
        use_map: ``(uid, value) -> LiveRange`` for instruction uses.
    """

    def __init__(self) -> None:
        self.ranges: list[LiveRange] = []
        self.def_map: dict[tuple[int, ILValue], LiveRange] = {}
        self.use_map: dict[tuple[int, ILValue], LiveRange] = {}

    def new_range(
        self, value: ILValue, web_index: int = 0, spill_generation: int = 0
    ) -> LiveRange:
        lr = LiveRange(
            len(self.ranges), value, web_index, spill_generation=spill_generation
        )
        self.ranges.append(lr)
        return lr

    def range_for_def(self, uid: int, value: ILValue) -> LiveRange:
        return self.def_map[(uid, value)]

    def range_for_use(self, uid: int, value: ILValue) -> LiveRange:
        return self.use_map[(uid, value)]

    def range_named(self, name: str) -> Optional[LiveRange]:
        """Look up a live range by display name (handy in tests/examples)."""
        for lr in self.ranges:
            if lr.name == name:
                return lr
        return None

    def local_candidates(self) -> list[LiveRange]:
        return [lr for lr in self.ranges if not lr.global_candidate]

    def global_candidates(self) -> list[LiveRange]:
        return [lr for lr in self.ranges if lr.global_candidate]

    def __iter__(self):
        return iter(self.ranges)

    def __len__(self) -> int:
        return len(self.ranges)
