"""IL instructions: opcodes applied to IL values.

IL instructions map one-to-one onto machine instructions (Section 3.1,
step 2); the only difference is that operands are
:class:`~repro.ir.values.ILValue` virtual registers instead of architectural
registers.

Two optional annotations ride along for the trace generator (the stand-in
for the paper's ATOM instrumentation):

* ``mem_stream`` — the name of the synthetic address stream a load/store
  draws effective addresses from;
* ``branch_model`` — the name of the branch-behaviour model that decides a
  conditional branch's dynamic direction.

Compiler passes must preserve both annotations when they rewrite
instructions; :meth:`ILInstruction.replace` does so automatically.
"""

from __future__ import annotations

from typing import Optional

from repro.isa.opcodes import InstrClass, Opcode
from repro.ir.values import ILValue


class ILInstruction:
    """One IL instruction.

    Attributes:
        opcode: the operation (shared with the machine level).
        dest: value defined, or ``None`` (stores, branches).
        srcs: values read.  For stores ``(value, base)``; for loads
            ``(base,)``.
        imm: optional immediate (cosmetic).
        target: for control flow, the label of the taken-successor block.
        uid: dense static id, assigned by the program layout; stable across
            compiler passes that do not create instructions.
        mem_stream: trace-generation annotation, see module docstring.
        branch_model: trace-generation annotation, see module docstring.
    """

    __slots__ = ("opcode", "dest", "srcs", "imm", "target", "uid", "mem_stream", "branch_model")

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[ILValue] = None,
        srcs: tuple[ILValue, ...] = (),
        imm: Optional[int] = None,
        target: Optional[str] = None,
        uid: int = -1,
        mem_stream: Optional[str] = None,
        branch_model: Optional[str] = None,
    ) -> None:
        self.opcode = opcode
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.target = target
        self.uid = uid
        self.mem_stream = mem_stream
        self.branch_model = branch_model

    @property
    def iclass(self) -> InstrClass:
        return self.opcode.iclass

    def values(self) -> tuple[ILValue, ...]:
        """All values named by the instruction (sources then destination)."""
        if self.dest is not None:
            return self.srcs + (self.dest,)
        return self.srcs

    def replace(
        self,
        dest: Optional[ILValue] = None,
        srcs: Optional[tuple[ILValue, ...]] = None,
        opcode: Optional[Opcode] = None,
    ) -> "ILInstruction":
        """A copy with some operands replaced; annotations are preserved."""
        return ILInstruction(
            opcode=opcode if opcode is not None else self.opcode,
            dest=dest if dest is not None else self.dest,
            srcs=tuple(srcs) if srcs is not None else self.srcs,
            imm=self.imm,
            target=self.target,
            uid=self.uid,
            mem_stream=self.mem_stream,
            branch_model=self.branch_model,
        )

    def format(self) -> str:
        """Readable rendering, e.g. ``addq %a, %b -> %c``."""
        parts = [self.opcode.mnemonic]
        operands = [repr(v) for v in self.srcs]
        if self.imm is not None:
            operands.append(f"#{self.imm}")
        if operands:
            parts.append(" " + ", ".join(operands))
        if self.dest is not None:
            parts.append(f" -> {self.dest!r}")
        if self.target is not None:
            parts.append(f" @{self.target}")
        return "".join(parts)

    def __repr__(self) -> str:
        return f"<IL#{self.uid} {self.format()}>"
