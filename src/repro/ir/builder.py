"""Fluent builder for IL programs.

Used by tests, examples (e.g. the paper's Figure 6 control-flow graph) and
the synthetic workload generator.  Typical use::

    b = ProgramBuilder("example")
    sp = b.stack_pointer_value()
    b.block("bb1", count=20)
    c = b.op(Opcode.LDA, "C", imm=0)
    b.jump("bb4")
    ...
    program = b.build()
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.isa.opcodes import Opcode
from repro.isa.registers import RegisterClass
from repro.ir.basic_block import BasicBlock
from repro.ir.instructions import ILInstruction
from repro.ir.program import ILProgram
from repro.ir.values import ILValue

ValueRef = Union[ILValue, str]


class ProgramBuilder:
    """Builds an :class:`~repro.ir.program.ILProgram` incrementally."""

    def __init__(self, name: str) -> None:
        self.program = ILProgram(name)
        self._current: Optional[BasicBlock] = None

    # ------------------------------------------------------------- values
    def value(self, name: str, rclass: RegisterClass = RegisterClass.INT) -> ILValue:
        """Get the value called ``name``, creating it on first use."""
        try:
            return self.program.value_named(name)
        except KeyError:
            return self.program.new_value(name, rclass)

    def fp_value(self, name: str) -> ILValue:
        return self.value(name, RegisterClass.FP)

    def stack_pointer_value(self, name: str = "SP") -> ILValue:
        try:
            return self.program.value_named(name)
        except KeyError:
            return self.program.new_value(name, RegisterClass.INT, is_stack_pointer=True)

    def global_pointer_value(self, name: str = "GP") -> ILValue:
        try:
            return self.program.value_named(name)
        except KeyError:
            return self.program.new_value(name, RegisterClass.INT, is_global_pointer=True)

    def _resolve(self, ref: ValueRef) -> ILValue:
        return ref if isinstance(ref, ILValue) else self.value(ref)

    # ------------------------------------------------------------- blocks
    def block(self, label: str, count: int = 0) -> BasicBlock:
        """Start a new basic block and make it current."""
        blk = self.program.add_block(label)
        blk.profile_count = count
        self._current = blk
        return blk

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise ValueError("no current block; call block() first")
        return self._current

    def edge_probs(self, probs: dict[str, float], label: Optional[str] = None) -> None:
        """Set successor edge probabilities on a block (default: current)."""
        blk = self.current if label is None else self.program.cfg.block(label)
        blk.set_successors(list(probs.keys()), list(probs.values()))

    # -------------------------------------------------------------- emits
    def emit(self, instr: ILInstruction) -> ILInstruction:
        return self.current.add(instr)

    def op(
        self,
        opcode: Opcode,
        dest: Optional[ValueRef],
        *srcs: ValueRef,
        imm: Optional[int] = None,
    ) -> Optional[ILValue]:
        """Emit an ALU-style operation; returns the destination value."""
        dest_value = None
        if dest is not None:
            rclass = RegisterClass.FP if opcode.writes_fp else RegisterClass.INT
            dest_value = (
                dest if isinstance(dest, ILValue) else self.value(dest, rclass)
            )
        self.emit(
            ILInstruction(
                opcode,
                dest=dest_value,
                srcs=tuple(self._resolve(s) for s in srcs),
                imm=imm,
            )
        )
        return dest_value

    def load(
        self,
        dest: ValueRef,
        base: ValueRef,
        imm: Optional[int] = None,
        stream: Optional[str] = None,
        opcode: Opcode = Opcode.LDQ,
    ) -> ILValue:
        rclass = RegisterClass.FP if opcode.writes_fp else RegisterClass.INT
        dest_value = dest if isinstance(dest, ILValue) else self.value(dest, rclass)
        self.emit(
            ILInstruction(
                opcode,
                dest=dest_value,
                srcs=(self._resolve(base),),
                imm=imm,
                mem_stream=stream,
            )
        )
        return dest_value

    def store(
        self,
        value: ValueRef,
        base: ValueRef,
        imm: Optional[int] = None,
        stream: Optional[str] = None,
        opcode: Opcode = Opcode.STQ,
    ) -> None:
        self.emit(
            ILInstruction(
                opcode,
                srcs=(self._resolve(value), self._resolve(base)),
                imm=imm,
                mem_stream=stream,
            )
        )

    def branch(
        self,
        opcode: Opcode,
        cond: ValueRef,
        target: str,
        model: Optional[str] = None,
    ) -> None:
        """Emit a conditional branch to ``target`` (falls through otherwise)."""
        if not opcode.is_conditional_branch:
            raise ValueError(f"{opcode} is not a conditional branch")
        self.emit(
            ILInstruction(
                opcode,
                srcs=(self._resolve(cond),),
                target=target,
                branch_model=model,
            )
        )

    def jump(self, target: str) -> None:
        self.emit(ILInstruction(Opcode.BR, target=target))

    def ret(self) -> None:
        self.emit(ILInstruction(Opcode.RET))

    # -------------------------------------------------------------- finish
    def build(self) -> ILProgram:
        """Finalize the CFG (fallthrough wiring, uids) and return the program."""
        return self.program.finalize()


def sequence_probs(labels: Sequence[str]) -> dict[str, float]:
    """Uniform edge probabilities over ``labels`` (builder convenience)."""
    p = 1.0 / len(labels)
    return {label: p for label in labels}
