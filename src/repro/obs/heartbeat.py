"""Sweep heartbeats: periodic progress lines with ETA and cache health.

A ``--jobs 8`` Table-2 sweep is silent for minutes at a time; the
heartbeat turns that silence into one line every few seconds::

    table2: 4/18 rows (22%), elapsed 31.2s, eta 109.1s, cache 61.5% hit, journal lag 0.4s

Lines go through ``logging.getLogger("repro.heartbeat")`` (the CLI's
``-v``/``--quiet`` flags control them) and, when the sweep has a run
journal, each emitted heartbeat is also journaled as a durable
``status: "heartbeat"`` record — a killed sweep's journal then shows how
far it got and how fast it was moving.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Optional

log = logging.getLogger("repro.heartbeat")

#: Default seconds between emitted heartbeats.
DEFAULT_INTERVAL_S = 5.0


class Heartbeat:
    """Progress tracker for a sweep of ``total`` units.

    Call :meth:`note` once per finished unit; a line is emitted (and
    journaled) whenever at least ``interval_s`` elapsed since the last
    one.  ``interval_s=0`` emits on every note — the deterministic mode
    tests use.  ``interval_s=None`` disables emission entirely while
    keeping the counters, so callers can wire it unconditionally.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        interval_s: Optional[float] = DEFAULT_INTERVAL_S,
        journal=None,
        cache=None,
        spans=None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.total = total
        self.label = label
        self.interval_s = interval_s
        self.journal = journal
        self.cache = cache
        self.spans = spans
        self.clock = clock
        self.done = 0
        self.emitted = 0
        self.started = clock()
        self._last_emit = self.started

    # ----------------------------------------------------------- progress
    def note(self, unit: str = "") -> None:
        """Record one finished unit (``unit`` names it in debug logs)."""
        self.done += 1
        if unit:
            log.debug("%s: finished %s", self.label, unit)
        if self.interval_s is None:
            return
        now = self.clock()
        if self.done >= self.total or now - self._last_emit >= self.interval_s:
            self.emit(now)

    def emit(self, now: Optional[float] = None) -> dict:
        """Emit (and journal) a heartbeat right now; returns the payload."""
        if now is None:
            now = self.clock()
        self._last_emit = now
        self.emitted += 1
        payload = self.snapshot(now)
        log.info("%s", self._format(payload))
        if self.journal is not None:
            self.journal.record_heartbeat(payload)
        return payload

    # ----------------------------------------------------------- snapshot
    def snapshot(self, now: Optional[float] = None) -> dict:
        if now is None:
            now = self.clock()
        # A first heartbeat can fire with zero rows done, and a resumed
        # sweep can finish rows with zero elapsed wall time (all cache
        # hits under a coarse clock).  Neither may divide by zero: no
        # rows -> no rate -> no ETA; rows-in-no-time -> ETA now.
        elapsed = max(0.0, now - self.started)
        remaining = max(0, self.total - self.done)
        rate = self.done / elapsed if self.done > 0 and elapsed > 0 else None
        if self.done <= 0:
            eta = None
        elif rate is None:
            eta = 0.0
        else:
            eta = remaining / rate
        payload = {
            "label": self.label,
            "done": self.done,
            "total": self.total,
            "elapsed_s": round(elapsed, 3),
            "rate_rows_per_s": round(rate, 6) if rate is not None else None,
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        if self.cache is not None:
            stats = self.cache.stats
            payload["cache_hit_rate"] = round(stats.hit_rate, 6)
        if self.spans is not None:
            payload["spans_emitted"] = self.spans.emitted
        # Journal lag is the monotonic age of the last durable append —
        # like elapsed/ETA above, never a wall-clock delta.
        if self.journal is not None and self.journal.last_append is not None:
            payload["journal_lag_s"] = round(now - self.journal.last_append, 3)
        return payload

    def _format(self, payload: dict) -> str:
        total = payload["total"] or 1
        parts = [
            f"{payload['label']}: {payload['done']}/{payload['total']} rows "
            f"({100 * payload['done'] // total}%)",
            f"elapsed {payload['elapsed_s']:.1f}s",
        ]
        if payload["eta_s"] is not None:
            parts.append(f"eta {payload['eta_s']:.1f}s")
        if "cache_hit_rate" in payload:
            parts.append(f"cache {100 * payload['cache_hit_rate']:.1f}% hit")
        if "spans_emitted" in payload:
            parts.append(f"{payload['spans_emitted']} spans")
        if "journal_lag_s" in payload:
            parts.append(f"journal lag {payload['journal_lag_s']:.1f}s")
        return ", ".join(parts)


class TaskLiveness:
    """Per-task deadline tracker for supervised executors.

    The :class:`Heartbeat` answers "how far along is the sweep?"; this
    answers the supervisor's question, "which in-flight task has been
    out too long?".  Each dispatched task is registered with
    :meth:`start` under its own deadline; :meth:`overdue` names the
    tasks whose deadline has passed (a wedged worker, or a result lost
    in flight) so the supervisor can kill and re-dispatch.  Clock
    injection keeps deadline tests deterministic.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        #: key -> (started_at, deadline) for in-flight tasks.
        self._inflight: dict = {}

    def start(self, key, timeout_s: float) -> None:
        """Track ``key`` with a deadline ``timeout_s`` from now."""
        now = self.clock()
        self._inflight[key] = (now, now + timeout_s)

    def renew(self, key, timeout_s: float) -> None:
        """Extend ``key``'s deadline to ``timeout_s`` from now, keeping
        its original start time (age survives renewals).  Renewing a key
        that is not in flight starts tracking it — the distributed
        coordinator leans on this for heartbeat-renewed host leases."""
        now = self.clock()
        entry = self._inflight.get(key)
        started = entry[0] if entry is not None else now
        self._inflight[key] = (started, now + timeout_s)

    def finish(self, key) -> Optional[float]:
        """Stop tracking ``key``; returns its elapsed seconds (``None``
        if it was not in flight — finishing twice is not an error)."""
        entry = self._inflight.pop(key, None)
        if entry is None:
            return None
        started, _ = entry
        return max(0.0, self.clock() - started)

    def overdue(self, now: Optional[float] = None) -> list:
        """Keys whose deadline has passed, oldest first."""
        if now is None:
            now = self.clock()
        late = [
            (deadline, key)
            for key, (_, deadline) in self._inflight.items()
            if now >= deadline
        ]
        return [key for _, key in sorted(late, key=lambda item: item[0])]

    def in_flight(self) -> int:
        return len(self._inflight)

    def oldest_age(self, now: Optional[float] = None) -> Optional[float]:
        """Age in seconds of the longest-running in-flight task."""
        if not self._inflight:
            return None
        if now is None:
            now = self.clock()
        return max(now - started for started, _ in self._inflight.values())


__all__ = ["DEFAULT_INTERVAL_S", "Heartbeat", "TaskLiveness"]
