"""Stall attribution: classify every issue slot the machine wasted.

Each simulated cycle, a cluster owns ``issue.total`` slots.  A slot is
either *used* (a uop issued) or *stalled*, and every stalled slot gets
exactly one cause:

========================  ====================================================
cause                     meaning
========================  ====================================================
``transfer_wait``         a ready uop was blocked on a full operand/result
                          transfer buffer (the paper's clustering overhead)
``divider_wait``          a ready FP divide was blocked on the unpipelined
                          divider
``class_limit``           a ready uop was blocked by a per-class issue limit
                          (Table 1's integer/FP/memory/control rows)
``operand_wait``          the queue held uops, but none (more) were ready —
                          waiting on operands, loads, or inter-cluster copies
``queue_full``            the queue was empty because the in-order front end
                          was blocked on a full dispatch queue
``regfile_full``          the front end was blocked on an empty free list
``fetch_starved``         the front end had nothing to deliver (I-cache miss
                          or mispredicted-branch fetch block)
``drain``                 the trace is exhausted; the pipeline is draining
========================  ====================================================

The accounting is *exact* by construction: every stepped cycle calls
:meth:`StallAccounting.note_issue` once per cluster, every fast-forwarded
cycle is covered by :meth:`StallAccounting.note_skipped`, so

    sum(causes) + issued_slots == cycles * total_issue_width

holds as an identity, not an approximation.  :func:`check_identity`
re-derives it from an exported payload (CI runs it), and
:func:`diff_reports` puts a 1x8 and a 2x4 run side by side — the direct
explanation of the paper's clustering slowdown.

Overhead discipline: the processor holds ``stall_acct = None`` by
default; when disabled the issue loop pays three local integer
increments on already-cold blocked paths and one ``None`` check per
cluster-cycle.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: Stall causes, in attribution priority order (first three are charged
#: from observed per-uop blocks; the rest classify the leftover slots).
CAUSES = (
    "transfer_wait",
    "divider_wait",
    "class_limit",
    "operand_wait",
    "queue_full",
    "regfile_full",
    "fetch_starved",
    "drain",
)

CAUSE_DESCRIPTIONS = {
    "transfer_wait": "ready, blocked on a full transfer buffer",
    "divider_wait": "ready FP divide, divider busy",
    "class_limit": "ready, per-class issue limit reached",
    "operand_wait": "queued uops waiting on operands",
    "queue_full": "front end blocked on a full dispatch queue",
    "regfile_full": "front end blocked on an empty free list",
    "fetch_starved": "front end delivered nothing",
    "drain": "trace exhausted, pipeline draining",
}


class StallAccounting:
    """Per-cluster issue-slot ledger attached to a live processor."""

    def __init__(self, widths: Sequence[int]) -> None:
        self.widths = tuple(widths)
        self.slots: list[dict[str, int]] = [
            {cause: 0 for cause in CAUSES} for _ in self.widths
        ]
        self.issued_slots = [0] * len(self.widths)
        #: Dispatch-block cause recorded during the previous cycle's
        #: dispatch stage.  Issue runs before dispatch within a cycle, so
        #: at issue time this is the freshest front-end information.
        self._dispatch_blocked: Optional[str] = None

    # -------------------------------------------------------- front end
    def begin_dispatch(self) -> None:
        self._dispatch_blocked = None

    def note_dispatch_block(self, cause: str) -> None:
        self._dispatch_blocked = cause

    def _upstream_cause(self, draining: bool) -> str:
        blocked = self._dispatch_blocked
        if blocked is not None:
            return blocked
        return "drain" if draining else "fetch_starved"

    # ------------------------------------------------------------ issue
    def note_issue(
        self,
        cluster: int,
        issued: int,
        blocked_buffer: int = 0,
        blocked_divider: int = 0,
        class_limited: int = 0,
        occupied: bool = False,
        draining: bool = False,
    ) -> None:
        """Account one cluster-cycle of the issue stage.

        ``blocked_*`` count distinct ready uops the issue loop observed
        blocked this cycle; ``occupied`` is whether the dispatch queue
        still holds uops after issue; ``draining`` is whether the trace
        is exhausted with nothing left in the front end.
        """
        self.issued_slots[cluster] += issued
        leftover = self.widths[cluster] - issued
        if leftover <= 0:
            return
        slots = self.slots[cluster]
        for cause, count in (
            ("transfer_wait", blocked_buffer),
            ("divider_wait", blocked_divider),
            ("class_limit", class_limited),
        ):
            if count > 0:
                take = count if count < leftover else leftover
                slots[cause] += take
                leftover -= take
                if leftover == 0:
                    return
        if occupied:
            slots["operand_wait"] += leftover
        else:
            slots[self._upstream_cause(draining)] += leftover

    def note_skipped(
        self, cycles: int, occupied: Sequence[bool], draining: bool
    ) -> None:
        """Account ``cycles`` fast-forwarded cycles (no ready uops by
        the fast-forward precondition, so no per-uop blocks exist)."""
        if cycles <= 0:
            return
        for cluster, width in enumerate(self.widths):
            slots = self.slots[cluster]
            if occupied[cluster]:
                slots["operand_wait"] += cycles * width
            else:
                slots[self._upstream_cause(draining)] += cycles * width

    # ----------------------------------------------------------- export
    def as_dict(self, cycles: int) -> dict:
        """JSON-native attribution payload for ``cycles`` of simulation."""
        total_width = sum(self.widths)
        totals = {cause: 0 for cause in CAUSES}
        clusters = []
        for index, width in enumerate(self.widths):
            slots = self.slots[index]
            for cause in CAUSES:
                totals[cause] += slots[cause]
            clusters.append(
                {
                    "width": width,
                    "issued_slots": self.issued_slots[index],
                    "stalled_slots": sum(slots.values()),
                    "causes": dict(slots),
                }
            )
        return {
            "cycles": cycles,
            "issue_width": total_width,
            "total_slots": cycles * total_width,
            "issued_slots": sum(self.issued_slots),
            "stalled_slots": sum(totals.values()),
            "causes": totals,
            "clusters": clusters,
        }


def check_identity(payload: dict) -> None:
    """Assert the exact-accounting identity on an exported payload.

    ``stalled + issued == cycles * width``, machine-wide and per
    cluster.  Raises ``ValueError`` with the discrepancy otherwise.
    """
    total = payload["cycles"] * payload["issue_width"]
    attributed = sum(payload["causes"].values())
    issued = payload["issued_slots"]
    if attributed + issued != total:
        raise ValueError(
            "stall attribution does not balance: "
            f"{attributed} stalled + {issued} issued != "
            f"{payload['cycles']} cycles x {payload['issue_width']} wide "
            f"= {total} slots (off by {attributed + issued - total})"
        )
    if payload["total_slots"] != total or payload["stalled_slots"] != attributed:
        raise ValueError("stall attribution totals are internally inconsistent")
    for index, cluster in enumerate(payload["clusters"]):
        c_total = payload["cycles"] * cluster["width"]
        c_attr = sum(cluster["causes"].values())
        if c_attr + cluster["issued_slots"] != c_total:
            raise ValueError(
                f"cluster {index} attribution does not balance: "
                f"{c_attr} stalled + {cluster['issued_slots']} issued "
                f"!= {c_total} slots"
            )


def format_report(payload: dict, label: str = "") -> str:
    """Human-readable attribution table for one run."""
    total = payload["total_slots"] or 1
    title = f"stall attribution — {label}" if label else "stall attribution"
    lines = [
        title,
        f"  {payload['cycles']} cycles x {payload['issue_width']}-wide = "
        f"{payload['total_slots']} slots; "
        f"{payload['issued_slots']} issued "
        f"({100 * payload['issued_slots'] / total:.1f}%)",
    ]
    for cause in CAUSES:
        count = payload["causes"].get(cause, 0)
        if count == 0:
            continue
        lines.append(
            f"  {cause:<14} {count:>12}  {100 * count / total:5.1f}%  "
            f"{CAUSE_DESCRIPTIONS[cause]}"
        )
    return "\n".join(lines)


def diff_reports(
    a: dict, b: dict, label_a: str = "single", label_b: str = "dual"
) -> str:
    """Side-by-side attribution of two runs (slot fractions).

    The interesting read is the paper's: which causes *appear* on the
    clustered machine (``transfer_wait``) and which *grow* (queue and
    operand pressure from halved per-cluster resources).
    """
    total_a = a["total_slots"] or 1
    total_b = b["total_slots"] or 1
    width = max(len(label_a), len(label_b), 8)
    lines = [
        f"stall attribution — {label_a} vs {label_b}",
        f"  cycles: {label_a} {a['cycles']}, {label_b} {b['cycles']} "
        f"({100 * (b['cycles'] - a['cycles']) / (a['cycles'] or 1):+.1f}%)",
        f"  {'cause':<14} {label_a:>{width}} {label_b:>{width}}   delta",
    ]
    for cause in CAUSES:
        frac_a = 100 * a["causes"].get(cause, 0) / total_a
        frac_b = 100 * b["causes"].get(cause, 0) / total_b
        if frac_a == 0 and frac_b == 0:
            continue
        lines.append(
            f"  {cause:<14} {frac_a:>{width - 1}.1f}% {frac_b:>{width - 1}.1f}% "
            f"{frac_b - frac_a:>+6.1f}%"
        )
    issued_a = 100 * a["issued_slots"] / total_a
    issued_b = 100 * b["issued_slots"] / total_b
    lines.append(
        f"  {'(issued)':<14} {issued_a:>{width - 1}.1f}% {issued_b:>{width - 1}.1f}% "
        f"{issued_b - issued_a:>+6.1f}%"
    )
    return "\n".join(lines)


__all__ = [
    "CAUSES",
    "CAUSE_DESCRIPTIONS",
    "StallAccounting",
    "check_identity",
    "diff_reports",
    "format_report",
]
