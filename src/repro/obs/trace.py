"""Typed pipeline tracing: the flight recorder's event stream.

The processor used to expose ``event_log`` as a list of raw
``(cycle, event, seq, role, cluster)`` 5-tuples.  This module replaces
that with :class:`PipelineEvent` — a typed, immutable record that still
*behaves* like the old tuple (indexing, unpacking, equality), so every
existing consumer keeps working — behind a :class:`TraceRecorder` that
fans events out to pluggable sinks:

* :class:`MemorySink` — unbounded in-memory list (the old behaviour);
* :class:`RingSink` — bounded ring buffer keeping the last N events,
  for long runs where only the recent past matters;
* :class:`JsonlSink` — streaming JSONL file, one event per line, so a
  multi-million-cycle trace never has to fit in memory and a killed run
  still leaves every flushed event on disk.

Overhead discipline: the processor holds ``recorder = None`` by default
and its hot path pays exactly one attribute load and ``None`` check per
event — the recorder, sinks, and event construction only exist when a
caller opts in.
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Iterator, NamedTuple, Optional, Sequence, Union

#: Event kinds the processor emits, in pipeline order.
EVENT_KINDS = ("fetch", "dispatch", "issue", "reissue", "complete", "retire")


class PipelineEvent(NamedTuple):
    """One pipeline event of one uop (or instruction, for retires).

    A ``NamedTuple`` on purpose: it is typed and immutable, yet remains
    indexable and unpackable exactly like the raw 5-tuples it replaced,
    so pre-existing analyses (``for cycle, kind, seq, role, cluster in
    log``) run unmodified.
    """

    cycle: int
    kind: str
    seq: int
    role: str = "-"
    cluster: int = -1

    def as_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "seq": self.seq,
            "role": self.role,
            "cluster": self.cluster,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "PipelineEvent":
        return cls(
            int(record["cycle"]),
            str(record["kind"]),
            int(record["seq"]),
            str(record.get("role", "-")),
            int(record.get("cluster", -1)),
        )


class TraceSink:
    """Destination for recorded events.  Subclasses override ``append``."""

    def append(self, event: PipelineEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class MemorySink(TraceSink):
    """Unbounded in-memory event list."""

    def __init__(self) -> None:
        self.events: list[PipelineEvent] = []

    def append(self, event: PipelineEvent) -> None:
        self.events.append(event)


class RingSink(TraceSink):
    """Bounded ring buffer keeping only the most recent ``maxlen`` events."""

    def __init__(self, maxlen: int) -> None:
        if maxlen <= 0:
            raise ValueError(f"ring sink needs maxlen >= 1, got {maxlen}")
        self._ring: deque[PipelineEvent] = deque(maxlen=maxlen)
        self.dropped = 0

    @property
    def events(self) -> list[PipelineEvent]:
        return list(self._ring)

    def append(self, event: PipelineEvent) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)


class JsonlSink(TraceSink):
    """Streaming JSONL sink: one event per line, flushed on close.

    The file is opened lazily on the first event and dropped from the
    pickled state (checkpointing pickles whole processors), reopening in
    append mode on the next event after a restore.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)
        self.written = 0
        self._fh: Optional[IO[str]] = None

    def append(self, event: PipelineEvent) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")
        self._fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_fh"] = None  # file handles do not survive pickling
        return state


class TraceRecorder:
    """Fans pipeline events out to one or more sinks.

    The processor calls :meth:`record` with the raw event fields; the
    recorder owns constructing the typed event exactly once per call.
    """

    def __init__(self, sinks: Sequence[TraceSink]) -> None:
        if not sinks:
            raise ValueError("a TraceRecorder needs at least one sink")
        self.sinks: list[TraceSink] = list(sinks)
        self.recorded = 0

    # ------------------------------------------------------------ factories
    @classmethod
    def memory(cls) -> "TraceRecorder":
        return cls([MemorySink()])

    @classmethod
    def ring(cls, maxlen: int) -> "TraceRecorder":
        return cls([RingSink(maxlen)])

    @classmethod
    def jsonl(
        cls, path: Union[str, os.PathLike], keep_memory: bool = False
    ) -> "TraceRecorder":
        sinks: list[TraceSink] = [JsonlSink(path)]
        if keep_memory:
            sinks.insert(0, MemorySink())
        return cls(sinks)

    # ------------------------------------------------------------------ API
    def record(
        self, cycle: int, kind: str, seq: int, role: str = "-", cluster: int = -1
    ) -> None:
        event = PipelineEvent(cycle, kind, seq, role, cluster)
        self.recorded += 1
        for sink in self.sinks:
            sink.append(event)

    @property
    def events(self) -> list[PipelineEvent]:
        """Events held by the first sink that retains any (ring or memory).

        A pure-JSONL recorder retains nothing in memory and returns an
        empty list — read the file back with :func:`read_jsonl`.
        """
        for sink in self.sinks:
            events = getattr(sink, "events", None)
            if events is not None:
                return events
        return []

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: Union[str, os.PathLike]) -> list[PipelineEvent]:
    """Load a :class:`JsonlSink` file back into typed events.

    Torn trailing lines (a killed writer) are skipped, mirroring the run
    journal's reader contract.
    """
    events: list[PipelineEvent] = []
    with Path(path).open("r", encoding="utf-8", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(PipelineEvent.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                continue
    return events


#: Anything renderable as an event stream: a recorder, typed events, or
#: the legacy raw 5-tuples.
EventSource = Union[TraceRecorder, Sequence[PipelineEvent], Sequence[tuple], Iterable]


def iter_events(source: EventSource) -> Iterator[PipelineEvent]:
    """Normalise any event source into typed events."""
    if isinstance(source, TraceRecorder):
        source = source.events
    for item in source:
        if isinstance(item, PipelineEvent):
            yield item
        else:
            yield PipelineEvent(*item)


__all__ = [
    "EVENT_KINDS",
    "EventSource",
    "JsonlSink",
    "MemorySink",
    "PipelineEvent",
    "RingSink",
    "TraceRecorder",
    "TraceSink",
    "iter_events",
    "read_jsonl",
]
