"""Orchestration-layer span tracing (DESIGN.md Section 17).

A :class:`Span` records one bounded unit of orchestration work —
sweep, benchmark-part task, compile, trace generation, simulation,
retry, gym trial/rung, executor dispatch, host lease, requeue — with
correlation IDs (``trace_id``/``span_id``/``parent_id``) so every
record of one sweep can be stitched back together across processes,
shards, and hosts.

Two span classes with different determinism contracts:

* **Deterministic spans** (:data:`DETERMINISTIC_KINDS`) measure time in
  *virtual work units* derived from the computation's content — machine
  instructions compiled, trace entries generated, cycles simulated —
  laid out end-to-end on a per-task virtual timeline.  Their IDs are
  content fingerprints, so a serial run, a ``--jobs`` run, a SIGKILLed
  + ``--resume``\\ d run, and a multi-host distributed run of the same
  sweep all emit the **bit-identical** span set (after
  ``repro journal merge`` folds and dedupes the shards).
* **Wall-clock spans** (:data:`WALL_KINDS`) measure real scheduling
  behaviour — dispatch latency, host-lease lifetimes, requeue storms,
  degradations — in microseconds relative to a per-emitter monotonic
  epoch.  They are intentionally run-specific and are kept out of the
  canonical merged file (``spans-wall.jsonl``, not ``spans.jsonl``).

Writers append one JSON object per line to per-shard sinks
(``spans.jsonl`` / ``spans-<shard>.jsonl``) in the run directory, next
to the journal shards, with the same flush+fsync durability.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

from repro.errors import ConfigError

#: Schema version stamped on every span record.
SPAN_SCHEMA = 1

#: Content-derived spans: bit-identical across serial / parallel /
#: resumed / distributed runs of the same sweep.
DETERMINISTIC_KINDS = frozenset(
    {
        "sweep",
        "task",
        "compile",
        "tracegen",
        "simulate",
        "retry",
        "gym_trial",
        "gym_rung",
    }
)

#: Wall-clock orchestration spans: real scheduling behaviour, excluded
#: from the bit-identity contract and the canonical merged file.
WALL_KINDS = frozenset({"dispatch", "host_lease", "requeue", "degradation"})

SPAN_KINDS = tuple(sorted(DETERMINISTIC_KINDS | WALL_KINDS))

#: The three parts of one benchmark row, in virtual-timeline order.
_PART_STAGES = ("compile", "tracegen", "simulate")


class SpanSchemaError(ConfigError):
    """A span record or exported trace failed schema validation."""


@dataclass(frozen=True)
class Span:
    """One orchestration span.

    ``start_u``/``end_u`` are integer microsecond-like units: virtual
    work units for deterministic kinds, monotonic-relative microseconds
    for wall kinds.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    kind: str
    name: str
    start_u: int
    end_u: int
    attrs: dict[str, Any] = field(default_factory=dict)
    schema: int = SPAN_SCHEMA

    @property
    def duration_u(self) -> int:
        return self.end_u - self.start_u

    @property
    def deterministic(self) -> bool:
        return self.kind in DETERMINISTIC_KINDS

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start_u": self.start_u,
            "end_u": self.end_u,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        kind = data["kind"]
        if kind not in DETERMINISTIC_KINDS and kind not in WALL_KINDS:
            raise SpanSchemaError(f"unknown span kind {kind!r}")
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            kind=data["kind"],
            name=data["name"],
            start_u=int(data["start_u"]),
            end_u=int(data["end_u"]),
            attrs=dict(data.get("attrs", {})),
            schema=int(data.get("schema", SPAN_SCHEMA)),
        )


# --------------------------------------------------------------- identity
def sweep_trace_id(label: str, options: Any, benchmarks: Iterable[str]) -> str:
    """The content-derived trace id shared by every span of one sweep.

    Derived from the sweep label, the value-determining options
    fingerprint, and the benchmark set — the same inputs that decide
    whether a journal row may be reused on ``--resume``, so a resumed
    run lands in the same trace as the run it continues.
    """
    from repro.perf.fingerprint import fingerprint
    from repro.robustness.journal import options_fingerprint

    return fingerprint(
        ("trace/v1", label, options_fingerprint(options), tuple(sorted(benchmarks)))
    )[:16]


def derive_span_id(trace_id: str, kind: str, name: str, *parts: Any) -> str:
    """Content-derived span id (16 hex chars)."""
    from repro.perf.fingerprint import fingerprint

    return fingerprint(("span/v1", trace_id, kind, name) + parts)[:16]


def sweep_span_id(trace_id: str) -> str:
    """The root span's id — derivable from the trace id alone, so
    workers can parent their task spans without extra coordination."""
    return derive_span_id(trace_id, "sweep", "sweep")


# --------------------------------------------------------------- builders
def part_task_spans(
    trace_id: str,
    benchmark: str,
    part: str,
    *,
    compile_units: int,
    trace_units: int,
    sim_units: int,
) -> list[Span]:
    """The deterministic spans of one benchmark-part task.

    The task's children are laid end-to-end on a task-relative virtual
    timeline — ``compile [0,c) → tracegen [c,c+t) → simulate
    [c+t,c+t+s)`` — with costs taken from the computation itself
    (machine instructions, trace entries, simulated cycles), so the
    driver rebuilding spans from a :class:`BenchmarkEvaluation` and a
    distributed worker building them from its :class:`PartOutcome`
    produce identical records that merge-dedupe into one.
    """
    name = f"{benchmark}:{part}"
    costs = (int(compile_units), int(trace_units), int(sim_units))
    total = sum(costs)
    task_id = derive_span_id(trace_id, "task", name, costs)
    spans = [
        Span(
            trace_id=trace_id,
            span_id=task_id,
            parent_id=sweep_span_id(trace_id),
            kind="task",
            name=name,
            start_u=0,
            end_u=total,
            attrs={"benchmark": benchmark, "part": part},
        )
    ]
    offset = 0
    for stage, units in zip(_PART_STAGES, costs):
        spans.append(
            Span(
                trace_id=trace_id,
                span_id=derive_span_id(trace_id, stage, name, costs),
                parent_id=task_id,
                kind=stage,
                name=name,
                start_u=offset,
                end_u=offset + units,
                attrs={"benchmark": benchmark, "part": part, "units": units},
            )
        )
        offset += units
    return spans


def _part_costs(evaluation: Any, part: str) -> tuple[int, int, int]:
    """(compile, tracegen, simulate) virtual costs of one part."""
    # single and dual_none simulate the native binary; dual_local the
    # locally rescheduled one — mirrors assemble_evaluation.
    compiled = (
        evaluation.local_compile if part == "dual_local" else evaluation.native_compile
    )
    sim = getattr(evaluation, part)
    return (
        compiled.machine.instruction_count(),
        int(evaluation.trace_length),
        int(sim.cycles),
    )


def evaluation_spans(
    trace_id: str, evaluation: Any, *, attempts: int = 0
) -> list[Span]:
    """All deterministic spans of one completed benchmark row.

    Rebuildable from the journaled :class:`BenchmarkEvaluation` alone,
    so ``--resume`` emits the same spans for reused rows as the
    original run did for fresh ones.  A retry span appears only when
    the row needed more than one attempt per part (deterministic under
    seeded retry backoff and value-determining fault plans).
    """
    from repro.experiments.harness import PARTS

    spans: list[Span] = []
    for part in PARTS:
        compile_units, trace_units, sim_units = _part_costs(evaluation, part)
        spans.extend(
            part_task_spans(
                trace_id,
                evaluation.name,
                part,
                compile_units=compile_units,
                trace_units=trace_units,
                sim_units=sim_units,
            )
        )
    if attempts > len(PARTS):
        extra = attempts - len(PARTS)
        spans.append(
            Span(
                trace_id=trace_id,
                span_id=derive_span_id(trace_id, "retry", evaluation.name, attempts),
                parent_id=sweep_span_id(trace_id),
                kind="retry",
                name=evaluation.name,
                start_u=0,
                end_u=extra,
                attrs={"benchmark": evaluation.name, "attempts": attempts},
            )
        )
    return spans


def failure_spans(trace_id: str, failure: Any, *, attempts: int = 1) -> list[Span]:
    """The task span of a benchmark that degraded to a failure record."""
    attempts = max(1, int(attempts))
    return [
        Span(
            trace_id=trace_id,
            span_id=derive_span_id(
                trace_id, "task", failure.benchmark, "failed", attempts
            ),
            parent_id=sweep_span_id(trace_id),
            kind="task",
            name=failure.benchmark,
            start_u=0,
            end_u=attempts,
            attrs={
                "benchmark": failure.benchmark,
                "failed": True,
                "error_type": failure.error_type,
                "attempts": attempts,
            },
        )
    ]


def sweep_span(
    trace_id: str, label: str, spans: Sequence[Span]
) -> Span:
    """The root sweep span: duration = total work of its task spans."""
    total = sum(s.duration_u for s in spans if s.kind == "task")
    tasks = sum(1 for s in spans if s.kind == "task")
    return Span(
        trace_id=trace_id,
        span_id=sweep_span_id(trace_id),
        parent_id=None,
        kind="sweep",
        name=label,
        start_u=0,
        end_u=total,
        attrs={"tasks": tasks},
    )


def sweep_task_value_spans(trace_id: str, value: Any) -> list[Span]:
    """Deterministic spans from one ``perf.parallel._sweep_task`` value.

    This is the builder distributed workers resolve by name (the task
    frame's ``span_fn``) to journal spans host-side before each result
    is sent; the coordinator's driver rebuilds the same records from
    the assembled evaluation, and the merge dedupes them by span_id.
    """
    try:
        benchmark, part, outcome, _attempts, _stats = value
    except (TypeError, ValueError):
        return []
    sim = getattr(outcome, "sim", None)
    compiled = getattr(outcome, "compile_result", None)
    if sim is None or compiled is None:  # a BenchmarkFailure: driver-built
        return []
    return part_task_spans(
        trace_id,
        benchmark,
        part,
        compile_units=compiled.machine.instruction_count(),
        trace_units=int(outcome.trace_length),
        sim_units=int(sim.cycles),
    )


# ----------------------------------------------------------------- writer
def span_file_name(shard: Optional[str] = None) -> str:
    if not shard:
        return "spans.jsonl"
    from repro.robustness.journal import _slug

    return f"spans-{_slug(shard)}.jsonl"


class SpanWriter:
    """Durable per-shard JSONL span sink inside a run directory.

    Append-only with the journal's flush+fsync discipline; dedupes by
    span_id within one writer so re-emission (resume reuse + fresh
    compute in the same process) costs nothing.  ``trace_id`` is set by
    the sweep driver once computed; executors and heartbeats read it
    back for correlation.
    """

    def __init__(
        self, run_dir: Union[str, os.PathLike], shard: Optional[str] = None
    ) -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.shard = shard
        self.path = self.run_dir / span_file_name(shard)
        self._file = open(self.path, "a", encoding="utf-8")
        self._seen: set[str] = set()
        self._lock = threading.Lock()
        self.emitted = 0
        self.trace_id: str = ""

    def write(self, span: Span) -> bool:
        """Append one span; returns False for an in-process duplicate."""
        with self._lock:
            if span.span_id in self._seen:
                return False
            self._seen.add(span.span_id)
            self._file.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
            self._file.flush()
            os.fsync(self._file.fileno())
            self.emitted += 1
            return True

    def write_all(self, spans: Iterable[Span]) -> int:
        return sum(1 for span in spans if self.write(span))

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class WallSpans:
    """Wall-clock orchestration span emitter (dispatch, host leases,
    requeues, degradations).

    Times are integer microseconds relative to this emitter's monotonic
    epoch; IDs include a per-emitter sequence number, so wall spans are
    unique but intentionally *not* reproducible across runs.  A ``None``
    writer makes every call a no-op, so executors instrument
    unconditionally.
    """

    def __init__(
        self,
        writer: Optional[SpanWriter],
        *,
        clock=time.monotonic,
    ) -> None:
        self._writer = writer
        self._clock = clock
        self._epoch = clock()
        self._seq = 0
        self._open: dict[Any, tuple[str, str, int, dict[str, Any]]] = {}

    @property
    def enabled(self) -> bool:
        return self._writer is not None

    def _now_u(self) -> int:
        return int((self._clock() - self._epoch) * 1_000_000)

    def _emit(self, kind: str, name: str, start_u: int, end_u: int, attrs: dict) -> None:
        assert self._writer is not None
        trace_id = self._writer.trace_id
        self._seq += 1
        self._writer.write(
            Span(
                trace_id=trace_id,
                span_id=derive_span_id(trace_id, kind, name, "wall", self._seq),
                parent_id=sweep_span_id(trace_id) if trace_id else None,
                kind=kind,
                name=name,
                start_u=start_u,
                end_u=end_u,
                attrs=attrs,
            )
        )

    def begin(self, key: Any, kind: str, name: str, **attrs: Any) -> None:
        if self._writer is None:
            return
        self._open[key] = (kind, name, self._now_u(), dict(attrs))

    def end(self, key: Any, **attrs: Any) -> None:
        if self._writer is None:
            return
        opened = self._open.pop(key, None)
        if opened is None:
            return
        kind, name, start_u, base = opened
        base.update(attrs)
        self._emit(kind, name, start_u, self._now_u(), base)

    def instant(self, kind: str, name: str, **attrs: Any) -> None:
        if self._writer is None:
            return
        now = self._now_u()
        self._emit(kind, name, now, now, dict(attrs))

    def close(self, **attrs: Any) -> None:
        """End every still-open span (executor shutdown)."""
        for key in list(self._open):
            self.end(key, **attrs)


# ---------------------------------------------------------------- reading
def read_spans(path: Union[str, os.PathLike]) -> list[Span]:
    """Spans from one JSONL file, tolerating torn trailing lines."""
    spans: list[Span] = []
    path = Path(path)
    if not path.exists():
        return spans
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                spans.append(Span.from_dict(data))
            except (SpanSchemaError, ValueError, KeyError, TypeError):
                continue  # torn tail of a crashed writer, or version skew
    return spans


def span_files(run_dir: Union[str, os.PathLike]) -> list[Path]:
    """Every span file in a run directory, primary first then shards in
    sorted order (mirrors ``shard_journal_paths``)."""
    run_dir = Path(run_dir)
    paths = []
    primary = run_dir / "spans.jsonl"
    if primary.exists():
        paths.append(primary)
    paths.extend(
        p
        for p in sorted(run_dir.glob("spans-*.jsonl"))
        if p.name != "spans-wall.jsonl"
    )
    wall = run_dir / "spans-wall.jsonl"
    if wall.exists():
        paths.append(wall)
    return paths


def load_run_spans(run_dir: Union[str, os.PathLike]) -> list[Span]:
    """All spans of a run directory, deduped by span_id."""
    return dedupe_spans(
        span for path in span_files(run_dir) for span in read_spans(path)
    )


def dedupe_spans(spans: Iterable[Span]) -> list[Span]:
    seen: set[str] = set()
    out: list[Span] = []
    for span in spans:
        if span.span_id in seen:
            continue
        seen.add(span.span_id)
        out.append(span)
    return out


def split_spans(spans: Iterable[Span]) -> tuple[list[Span], list[Span]]:
    """(deterministic, wall) partition."""
    det: list[Span] = []
    wall: list[Span] = []
    for span in spans:
        (det if span.deterministic else wall).append(span)
    return det, wall


def canonical_sort_key(span: Span):
    """Content-only ordering: identical span sets serialize to
    identical bytes regardless of emission order."""
    return (
        span.trace_id,
        span.start_u,
        -span.duration_u,
        span.kind,
        span.name,
        span.span_id,
    )


def canonical_lines(spans: Iterable[Span]) -> list[str]:
    ordered = sorted(dedupe_spans(spans), key=canonical_sort_key)
    return [json.dumps(span.as_dict(), sort_keys=True) for span in ordered]


def write_canonical_spans(
    output_dir: Union[str, os.PathLike], spans: Iterable[Span]
) -> tuple[int, int]:
    """Write the canonical merged span files into ``output_dir``.

    ``spans.jsonl`` holds the deterministic class in canonical order
    (byte-identical across equivalent runs); ``spans-wall.jsonl`` holds
    the wall-clock class.  Returns ``(deterministic, wall)`` counts.
    """
    from repro.robustness.atomicio import atomic_write_text

    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    det, wall = split_spans(dedupe_spans(spans))
    atomic_write_text(
        output_dir / "spans.jsonl",
        "".join(line + "\n" for line in canonical_lines(det)),
    )
    if wall:
        atomic_write_text(
            output_dir / "spans-wall.jsonl",
            "".join(line + "\n" for line in canonical_lines(wall)),
        )
    return len(det), len(wall)


# --------------------------------------------------------------- analysis
def summarize_spans(spans: Iterable[Span]) -> dict[str, dict[str, int]]:
    """Per-kind ``{count, units}`` totals (layout-independent)."""
    summary: dict[str, dict[str, int]] = {}
    for span in spans:
        bucket = summary.setdefault(span.kind, {"count": 0, "units": 0})
        bucket["count"] += 1
        bucket["units"] += span.duration_u
    return summary


def critical_path(spans: Iterable[Span]) -> dict[str, Any]:
    """The sweep's critical path on the virtual timeline.

    With unbounded parallelism every task runs concurrently, so the
    sweep cannot finish before its heaviest task does: the critical
    path is that task's compile → tracegen → simulate chain.
    """
    spans = list(spans)
    tasks = [s for s in spans if s.kind == "task"]
    if not tasks:
        return {"task": None, "units": 0, "chain": []}
    heaviest = max(tasks, key=lambda s: (s.duration_u, s.name))
    chain = sorted(
        (s for s in spans if s.parent_id == heaviest.span_id),
        key=lambda s: s.start_u,
    )
    return {
        "task": heaviest.name,
        "units": heaviest.duration_u,
        "chain": [
            {"kind": s.kind, "name": s.name, "units": s.duration_u} for s in chain
        ],
    }


def format_span_summary(spans: Sequence[Span]) -> str:
    """Human rendering of ``repro spans summarize``."""
    det, wall = split_spans(spans)
    lines = [f"spans: {len(det)} deterministic, {len(wall)} wall-clock"]
    summary = summarize_spans(det)
    if summary:
        lines.append(f"{'kind':<10} {'count':>7} {'units':>14}")
        for kind in sorted(summary):
            bucket = summary[kind]
            lines.append(f"{kind:<10} {bucket['count']:>7} {bucket['units']:>14}")
    path = critical_path(det)
    if path["task"] is not None:
        chain = " -> ".join(f"{s['kind']}:{s['units']}" for s in path["chain"])
        lines.append(
            f"critical path: {path['task']} ({path['units']} units) [{chain}]"
        )
    if wall:
        wall_summary = summarize_spans(wall)
        lines.append("wall-clock orchestration (this run only; microseconds):")
        for kind in sorted(wall_summary):
            bucket = wall_summary[kind]
            lines.append(f"  {kind:<12} {bucket['count']:>5} x  {bucket['units']:>12} us")
    return "\n".join(lines)


# ----------------------------------------------------------- chrome trace
def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Chrome trace-event JSON (Perfetto-loadable).

    Deterministic spans render on pid 1 ("virtual timeline"), one tid
    per task in sorted-name order; wall-clock spans render on pid 2
    ("orchestration").  Complete events (``ph="X"``) only.
    """
    det, wall = split_spans(dedupe_spans(spans))
    task_tids: dict[str, int] = {
        name: tid + 1
        for tid, name in enumerate(
            sorted({s.name for s in det if s.kind == "task"})
        )
    }
    # Children share their task's track; the sweep span gets tid 0.
    by_id = {s.span_id: s for s in det}

    def det_tid(span: Span) -> int:
        if span.kind == "sweep":
            return 0
        owner = span
        while owner.kind != "task" and owner.parent_id in by_id:
            owner = by_id[owner.parent_id]
        return task_tids.get(owner.name, 0)

    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "virtual timeline (deterministic work units)"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": 2,
            "tid": 0,
            "args": {"name": "orchestration (wall-clock)"},
        },
    ]
    for span in sorted(det, key=canonical_sort_key):
        events.append(
            {
                "name": f"{span.kind}:{span.name}",
                "cat": span.kind,
                "ph": "X",
                "ts": span.start_u,
                "dur": max(span.duration_u, 1),
                "pid": 1,
                "tid": det_tid(span),
                "args": dict(span.attrs, trace_id=span.trace_id),
            }
        )
    wall_tids = {kind: tid + 1 for tid, kind in enumerate(sorted(WALL_KINDS))}
    for span in sorted(wall, key=canonical_sort_key):
        events.append(
            {
                "name": f"{span.kind}:{span.name}",
                "cat": span.kind,
                "ph": "X",
                "ts": span.start_u,
                "dur": max(span.duration_u, 1),
                "pid": 2,
                "tid": wall_tids.get(span.kind, 0),
                "args": dict(span.attrs, trace_id=span.trace_id),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Any) -> None:
    """Schema-check an exported trace (raises :class:`SpanSchemaError`).

    Asserts the subset of the trace-event format Perfetto requires to
    load the file: a ``traceEvents`` list whose complete events carry
    string ``name``/``ph`` and numeric ``ts``/``dur``/``pid``/``tid``.
    """
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise SpanSchemaError("chrome trace must be an object with 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise SpanSchemaError("'traceEvents' must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise SpanSchemaError(f"traceEvents[{i}] is not an object")
        if not isinstance(event.get("name"), str) or not isinstance(
            event.get("ph"), str
        ):
            raise SpanSchemaError(f"traceEvents[{i}] needs string 'name' and 'ph'")
        if event["ph"] not in ("X", "M"):
            raise SpanSchemaError(
                f"traceEvents[{i}] has phase {event['ph']!r}; this exporter "
                "only emits complete ('X') and metadata ('M') events"
            )
        if event["ph"] == "X":
            for key in ("ts", "dur", "pid", "tid"):
                if not isinstance(event.get(key), (int, float)):
                    raise SpanSchemaError(
                        f"traceEvents[{i}] complete event needs numeric {key!r}"
                    )
            if event["dur"] < 0:
                raise SpanSchemaError(f"traceEvents[{i}] has negative duration")


__all__ = [
    "DETERMINISTIC_KINDS",
    "SPAN_KINDS",
    "SPAN_SCHEMA",
    "Span",
    "SpanSchemaError",
    "SpanWriter",
    "WALL_KINDS",
    "WallSpans",
    "canonical_lines",
    "canonical_sort_key",
    "chrome_trace",
    "critical_path",
    "dedupe_spans",
    "derive_span_id",
    "evaluation_spans",
    "failure_spans",
    "format_span_summary",
    "load_run_spans",
    "part_task_spans",
    "read_spans",
    "span_file_name",
    "span_files",
    "split_spans",
    "summarize_spans",
    "sweep_span",
    "sweep_span_id",
    "sweep_task_value_spans",
    "sweep_trace_id",
    "validate_chrome_trace",
    "write_canonical_spans",
]
