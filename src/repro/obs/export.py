"""Exporters: schema-validated stats JSON and Prometheus text format.

Two machine-readable surfaces for any observed run:

* **JSON** — one ``repro-stats`` document per benchmark (schema below),
  written atomically (``robustness.atomicio``) and validated by
  :func:`validate_stats_payload` — a hand-rolled structural check (no
  third-party schema library in the image) that also *re-derives* the
  stall-accounting identity, so CI's obs-smoke job proves the numbers
  balance, not just that keys exist.

* **Prometheus text exposition** — counters/gauges/histograms of a
  :class:`~repro.obs.metrics.MetricsRegistry` rendered in the standard
  ``# HELP``/``# TYPE`` format, so a run's final metrics can be dropped
  into any Prometheus/Grafana tooling (or just grepped).

JSON document shape (``STATS_SCHEMA`` = 1)::

    {
      "schema": 1,
      "kind": "repro-stats",
      "benchmark": "bench-name",
      "runs": [
        {
          "config": "single-8way",
          "machine": "single",
          "trace_length": 20000,
          "stats": { ... SimulationStats.as_dict() ... }
        },
        ...
      ]
    }
"""

from __future__ import annotations

import math
import os
from typing import Union

from repro.errors import ConfigError
from repro.obs import stall
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.robustness.atomicio import atomic_write_json, atomic_write_text

#: Version stamped on exported stats documents.
STATS_SCHEMA = 1


class SchemaError(ConfigError):
    """An exported document does not match the published schema."""


# ---------------------------------------------------------------- building
def stats_document(benchmark: str, runs: list[dict]) -> dict:
    """Assemble the exported document from per-run payloads."""
    return {
        "schema": STATS_SCHEMA,
        "kind": "repro-stats",
        "benchmark": benchmark,
        "runs": runs,
    }


def write_stats_json(path: Union[str, os.PathLike], document: dict) -> None:
    """Validate, then atomically write a stats document."""
    validate_stats_payload(document)
    atomic_write_json(path, document)


# -------------------------------------------------------------- validation
def _check(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise SchemaError(f"stats document invalid at {where}: {message}")


def _check_int(value, where: str, minimum: int = 0) -> None:
    _check(
        isinstance(value, int) and not isinstance(value, bool) and value >= minimum,
        where,
        f"expected integer >= {minimum}, got {value!r}",
    )


def validate_stats_payload(document: dict) -> None:
    """Structural + semantic validation of a ``repro-stats`` document.

    Raises :class:`SchemaError` (an exit-code-carrying
    :class:`~repro.errors.ConfigError`) on the first violation.  The
    semantic part re-derives the stall-attribution identity
    ``stalled + issued == cycles * width`` from the raw numbers.
    """
    _check(isinstance(document, dict), "$", "expected an object")
    _check(document.get("schema") == STATS_SCHEMA, "$.schema",
           f"expected {STATS_SCHEMA}, got {document.get('schema')!r}")
    _check(document.get("kind") == "repro-stats", "$.kind",
           f"expected 'repro-stats', got {document.get('kind')!r}")
    _check(isinstance(document.get("benchmark"), str) and document["benchmark"],
           "$.benchmark", "expected a non-empty string")
    runs = document.get("runs")
    _check(isinstance(runs, list) and runs, "$.runs", "expected a non-empty list")
    for i, run in enumerate(runs):
        where = f"$.runs[{i}]"
        _check(isinstance(run, dict), where, "expected an object")
        _check(isinstance(run.get("config"), str) and run["config"],
               f"{where}.config", "expected a non-empty string")
        stats = run.get("stats")
        _check(isinstance(stats, dict), f"{where}.stats", "expected an object")
        for field in ("cycles", "instructions", "uops_executed"):
            _check_int(stats.get(field), f"{where}.stats.{field}")
        clusters = stats.get("clusters")
        _check(isinstance(clusters, list) and clusters,
               f"{where}.stats.clusters", "expected a non-empty list")
        for j, cluster in enumerate(clusters):
            cwhere = f"{where}.stats.clusters[{j}]"
            _check(isinstance(cluster, dict), cwhere, "expected an object")
            _check_int(cluster.get("issued"), f"{cwhere}.issued")
            _check(isinstance(cluster.get("issued_by_class"), dict),
                   f"{cwhere}.issued_by_class", "expected an object")
        attribution = stats.get("stall_attribution")
        if attribution is not None:
            awhere = f"{where}.stats.stall_attribution"
            _check(isinstance(attribution, dict), awhere, "expected an object")
            causes = attribution.get("causes")
            _check(isinstance(causes, dict), f"{awhere}.causes",
                   "expected an object")
            unknown = set(causes) - set(stall.CAUSES)
            _check(not unknown, f"{awhere}.causes",
                   f"unknown causes {sorted(unknown)}")
            for field in ("cycles", "issue_width", "total_slots", "issued_slots"):
                _check_int(attribution.get(field), f"{awhere}.{field}")
            try:
                stall.check_identity(attribution)
            except ValueError as exc:
                raise SchemaError(
                    f"stats document invalid at {awhere}: {exc}"
                ) from exc
            _check(attribution["cycles"] == stats["cycles"], f"{awhere}.cycles",
                   "attribution cycles disagree with stats.cycles")
        metrics = stats.get("metrics")
        if metrics is not None:
            mwhere = f"{where}.stats.metrics"
            _check(isinstance(metrics, dict), mwhere, "expected an object")
            _check_int(metrics.get("interval"), f"{mwhere}.interval", minimum=1)
            _check(isinstance(metrics.get("final"), dict), f"{mwhere}.final",
                   "expected an object")
            series = metrics.get("series")
            _check(isinstance(series, list), f"{mwhere}.series", "expected a list")
            last_cycle = -1
            for k, sample in enumerate(series):
                swhere = f"{mwhere}.series[{k}]"
                _check(isinstance(sample, dict), swhere, "expected an object")
                _check_int(sample.get("cycle"), f"{swhere}.cycle")
                _check(isinstance(sample.get("values"), dict),
                       f"{swhere}.values", "expected an object")
                _check(sample["cycle"] > last_cycle, f"{swhere}.cycle",
                       "sample cycles must be strictly increasing")
                last_cycle = sample["cycle"]


# -------------------------------------------------------------- prometheus
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec: backslash, double
    quote, and line feed must be escaped or a host name like
    ``node"1`` corrupts every series after it."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labelled(name: str, labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return f"{name}{{{','.join(parts)}}}" if parts else name


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    by_name: dict[str, list] = {}
    for metric in registry.collect():
        by_name.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name in sorted(by_name):
        help_text = registry.help_of(name)
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {registry.type_of(name)}")
        for metric in by_name[name]:
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(
                    list(metric.bounds) + [math.inf], metric.counts
                ):
                    cumulative += count
                    le = f'le="{_format_value(float(bound))}"'
                    lines.append(
                        f"{_labelled(name + '_bucket', metric.labels, le)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{_labelled(name + '_sum', metric.labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{_labelled(name + '_count', metric.labels)} {metric.total}"
                )
            else:
                lines.append(
                    f"{_labelled(name, metric.labels)} "
                    f"{_format_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus(
    path: Union[str, os.PathLike], registry: MetricsRegistry
) -> None:
    atomic_write_text(path, prometheus_text(registry))


__all__ = [
    "STATS_SCHEMA",
    "SchemaError",
    "prometheus_text",
    "stats_document",
    "validate_stats_payload",
    "write_prometheus",
    "write_stats_json",
]
