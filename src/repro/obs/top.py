"""``repro top``: a live terminal view of a sweep's run directory.

Everything rendered here is read from the run directory's durable
records — journal shards (rows, heartbeats, degradation events) and
span files — never from the sweep process itself, so ``repro top`` can
watch a sweep it does not own: a local ``--jobs`` run, a coordinator
plus remote worker shards, or a finished directory being post-mortemed.

The renderer is a pure function of the directory contents
(:func:`render_status`), which is what the tests exercise; the CLI loop
just clears the screen and re-renders every ``--interval`` seconds.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

#: A shard whose journal was appended to within this many seconds is
#: rendered as active.
ACTIVE_WINDOW_S = 15.0


@dataclass
class ShardStatus:
    """One journal shard's durable progress."""

    name: str
    path: str
    rows_completed: int = 0
    rows_failed: int = 0
    #: The newest journaled heartbeat payload, if any.
    heartbeat: Optional[dict] = None
    #: Seconds since the journal file was last appended to.
    age_s: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.age_s is not None and self.age_s <= ACTIVE_WINDOW_S


@dataclass
class RunStatus:
    """Everything one :func:`collect_status` pass learned."""

    run_dir: str
    shards: list[ShardStatus] = field(default_factory=list)
    #: Journaled orchestration events (degradations etc.), in order.
    events: list[dict] = field(default_factory=list)
    #: span file name -> record count.
    span_files: dict[str, int] = field(default_factory=dict)

    @property
    def rows_completed(self) -> int:
        return sum(shard.rows_completed for shard in self.shards)

    @property
    def rows_failed(self) -> int:
        return sum(shard.rows_failed for shard in self.shards)


def _shard_name(path: Path) -> str:
    stem = path.stem  # journal / journal-<host>
    if stem.startswith("journal-"):
        return stem[len("journal-"):]
    return "primary"


def collect_status(
    run_dir: Union[str, os.PathLike], now: Optional[float] = None
) -> RunStatus:
    """Read a run directory's journals and span files into a snapshot."""
    from repro.robustness.journal import parse_journal_line, shard_journal_paths

    run_dir = Path(run_dir)
    status = RunStatus(run_dir=str(run_dir))
    if now is None:
        now = time.time()
    for journal_file in shard_journal_paths(run_dir):
        shard = ShardStatus(name=_shard_name(journal_file), path=str(journal_file))
        try:
            shard.age_s = max(0.0, now - journal_file.stat().st_mtime)
        except OSError:  # pragma: no cover - raced deletion
            pass
        try:
            with journal_file.open("r", encoding="utf-8", errors="replace") as fh:
                for line in fh:
                    kind, value = parse_journal_line(line)
                    if kind == "row":
                        if value.completed:
                            shard.rows_completed += 1
                        else:
                            shard.rows_failed += 1
                    elif kind == "heartbeat":
                        shard.heartbeat = value
                    elif kind == "event":
                        status.events.append(value)
        except OSError:  # pragma: no cover - raced deletion
            continue
        status.shards.append(shard)
    from repro.obs.spans import read_spans, span_files

    for span_file in span_files(run_dir):
        status.span_files[span_file.name] = len(read_spans(span_file))
    return status


def _format_heartbeat(payload: dict) -> str:
    parts = []
    done = payload.get("done")
    total = payload.get("total")
    if done is not None and total:
        parts.append(f"{done}/{total} rows ({100 * done // total}%)")
    if payload.get("eta_s") is not None:
        parts.append(f"eta {payload['eta_s']:.1f}s")
    if payload.get("rate_rows_per_s") is not None:
        parts.append(f"{payload['rate_rows_per_s']:.2f} rows/s")
    if payload.get("cache_hit_rate") is not None:
        parts.append(f"cache {100 * payload['cache_hit_rate']:.1f}% hit")
    if payload.get("spans_emitted") is not None:
        parts.append(f"{payload['spans_emitted']} spans")
    if payload.get("journal_lag_s") is not None:
        parts.append(f"lag {payload['journal_lag_s']:.1f}s")
    return ", ".join(parts) if parts else "no progress data"


def render_status(
    run_dir: Union[str, os.PathLike], now: Optional[float] = None
) -> str:
    """One full ``repro top`` frame as text (pure given the directory)."""
    status = collect_status(run_dir, now=now)
    lines = [
        f"repro top - {status.run_dir}",
        f"rows: {status.rows_completed} completed, "
        f"{status.rows_failed} failed, across {len(status.shards)} shard(s)",
        "",
    ]
    if status.shards:
        lines.append(f"{'shard':<24} {'state':<8} {'rows':>6}  progress")
        for shard in status.shards:
            state = "active" if shard.active else "idle"
            rows = shard.rows_completed + shard.rows_failed
            progress = (
                _format_heartbeat(shard.heartbeat)
                if shard.heartbeat is not None
                else "no heartbeat journaled"
            )
            lines.append(f"{shard.name:<24} {state:<8} {rows:>6}  {progress}")
    else:
        lines.append("no journal files yet (is the sweep using --resume?)")
    if status.span_files:
        lines.append("")
        lines.append("spans:")
        for name, count in sorted(status.span_files.items()):
            lines.append(f"  {name:<28} {count:>7} record(s)")
    if status.events:
        lines.append("")
        lines.append(f"degradation events ({len(status.events)}):")
        for event in status.events[-5:]:
            kind = event.get("kind", "event")
            payload = event.get("payload") or {}
            detail = (
                payload.get("detail") or payload.get("reason")
                or event.get("detail") or event.get("reason") or ""
            )
            lines.append(f"  {kind}: {detail}"[:120])
    return "\n".join(lines)


def run_top(
    run_dir: Union[str, os.PathLike],
    *,
    once: bool = False,
    interval_s: float = 2.0,
) -> None:
    """The ``repro top`` loop: clear, render, sleep, repeat."""
    interval_s = max(0.1, interval_s)
    while True:
        frame = render_status(run_dir)
        if not once:
            # ANSI clear + home; falls back to plain scrolling output on
            # dumb terminals, which is still readable.
            print("\033[2J\033[H", end="")
        print(frame)
        if once:
            return
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return


__all__ = [
    "ACTIVE_WINDOW_S",
    "RunStatus",
    "ShardStatus",
    "collect_status",
    "render_status",
    "run_top",
]
