"""The flight recorder: observability for the multicluster simulator.

Four cooperating parts (see DESIGN.md Section 12):

* :mod:`repro.obs.trace` — typed pipeline events behind pluggable
  memory/ring/JSONL sinks;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with periodic
  time-series sampling of every queue, buffer, and free list;
* :mod:`repro.obs.stall` — exact per-slot stall attribution and the
  1x8-vs-2x4 diff report;
* :mod:`repro.obs.export` — schema-validated JSON and Prometheus text;
* :mod:`repro.obs.heartbeat` — progress lines + journal records for
  long sweeps;
* :mod:`repro.obs.spans` — orchestration span tracing (correlated
  sweep -> task -> compile/tracegen/simulate records, Perfetto export);
* :mod:`repro.obs.top` — the ``repro top`` live run-directory view;
* :mod:`repro.obs.runner` — one-benchmark observed runs (``repro
  trace`` / ``repro stats``).

This package intentionally re-exports only the light, dependency-free
modules; import :mod:`repro.obs.runner` explicitly (it pulls in the
experiment harness).
"""

from repro.obs.heartbeat import Heartbeat
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PipelineMetrics,
)
from repro.obs.spans import Span, SpanWriter, WallSpans
from repro.obs.stall import CAUSES, StallAccounting, check_identity, diff_reports
from repro.obs.trace import (
    EVENT_KINDS,
    JsonlSink,
    MemorySink,
    PipelineEvent,
    RingSink,
    TraceRecorder,
    iter_events,
    read_jsonl,
)

__all__ = [
    "CAUSES",
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "PipelineEvent",
    "PipelineMetrics",
    "RingSink",
    "Span",
    "SpanWriter",
    "StallAccounting",
    "WallSpans",
    "TraceRecorder",
    "check_identity",
    "diff_reports",
    "iter_events",
    "read_jsonl",
]
