"""One-benchmark observed runs: the engine behind ``repro trace``/``stats``.

:func:`observe_benchmark` runs a single bundled benchmark on one machine
with the flight recorder armed — typed event tracing, metrics sampling,
and stall attribution — and returns an :class:`ObservedRun` whose
payload slots straight into the export layer.  It reuses the experiment
harness's cached compile/trace stages, so the artifacts are the same
ones a Table 2 sweep would produce (and a shared ``--cache-dir`` makes
the observation nearly free after a sweep).

Machines:

* ``single`` — native binary on the 1x8 single-cluster baseline;
* ``dual`` — native binary on the 2x4 dual-cluster machine (Table 2
  column "none");
* ``dual-local`` — local-scheduler-rescheduled binary on the dual
  machine (column "local").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.harness import EvaluationOptions

from repro.core.partition.local import LocalScheduler
from repro.core.registers import RegisterAssignment
from repro.errors import ConfigError
from repro.obs.metrics import DEFAULT_SAMPLE_INTERVAL, PipelineMetrics
from repro.obs.stall import StallAccounting
from repro.obs.trace import JsonlSink, MemorySink, RingSink, TraceRecorder, TraceSink
from repro.perf.cache import ArtifactCache
from repro.robustness.validate import validate_run, validate_trace_length
from repro.uarch.config import dual_cluster_config, single_cluster_config
from repro.uarch.engine import make_processor
from repro.uarch.processor import SimulationResult
from repro.workloads.spec92 import DEFAULT_TRACE_LENGTH, SPEC92

#: Machine selectors accepted by ``repro trace``/``repro stats``.
MACHINES = ("single", "dual", "dual-local")


@dataclass
class ObservedRun:
    """One benchmark run with the flight recorder attached."""

    benchmark: str
    machine: str
    result: SimulationResult
    trace_length: int
    #: The recorder left on the processor (``None`` when tracing was off).
    recorder: Optional[TraceRecorder] = None
    #: The metrics sampler (``None`` when metrics were off).
    metrics: Optional[PipelineMetrics] = None
    #: The dynamic-instruction trace the run executed (for disassembly
    #: labels in pipeline charts).
    trace: Optional[Sequence] = None

    @property
    def stats(self):
        return self.result.stats

    def run_payload(self) -> dict:
        """The per-run fragment of a ``repro-stats`` document."""
        return {
            "config": self.result.config_name,
            "machine": self.machine,
            "trace_length": self.trace_length,
            "stats": self.result.stats.as_dict(),
        }


def observe_benchmark(
    name: str,
    machine: str = "single",
    *,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    trace_seed: int = 7,
    record_events: bool = False,
    ring: Optional[int] = None,
    jsonl=None,
    sample_interval: Optional[int] = DEFAULT_SAMPLE_INTERVAL,
    attribute_stalls: bool = True,
    cache: Optional[ArtifactCache] = None,
    engine: Optional[str] = None,
    options: Optional["EvaluationOptions"] = None,
) -> ObservedRun:
    """Run ``name`` on ``machine`` with observability attached.

    Args:
        record_events: keep every pipeline event in memory (the
            ``repro trace`` chart needs random access to the stream).
        ring: additionally keep only the last N events in a ring buffer.
        jsonl: additionally stream every event to this JSONL path.
        sample_interval: metrics sampling period in cycles; ``None``
            disables the metrics registry entirely.
        attribute_stalls: classify every non-issuing slot (exact
            accounting; see :mod:`repro.obs.stall`).
        cache: artifact cache to compile/trace through (fresh in-memory
            one when unset).
        engine: simulation kernel override (``"reference"`` /
            ``"batched"``); both produce bit-identical stats.
        options: full :class:`EvaluationOptions` override; its
            ``trace_length``/``trace_seed``/``engine`` win over the
            keywords.
    """
    from repro.experiments.harness import (
        EvaluationOptions,
        _compile_cached,
        _trace_cached,
    )
    from repro.experiments.table2 import _unknown_benchmark

    if machine not in MACHINES:
        raise ConfigError(
            f"unknown machine {machine!r}; valid machines: {', '.join(MACHINES)}",
            benchmark=name,
        )
    if name not in SPEC92:
        raise _unknown_benchmark(name, SPEC92)
    if options is None:
        options = EvaluationOptions(
            trace_length=trace_length, trace_seed=trace_seed, engine=engine
        )
    validate_trace_length(options.trace_length, benchmark=name)
    if cache is None:
        cache = ArtifactCache()
    workload = SPEC92[name]()

    if machine == "dual-local":
        compiled, ckey = _compile_cached(
            workload,
            RegisterAssignment.even_odd_dual(),
            LocalScheduler(),
            options,
            cache,
        )
    else:
        compiled, ckey = _compile_cached(
            workload, RegisterAssignment.single_cluster(), None, options, cache
        )
    trace = _trace_cached(workload, compiled, ckey, options, cache)

    if machine == "single":
        config = options.apply_robustness(
            options.single_config or single_cluster_config()
        )
        assignment = RegisterAssignment.single_cluster()
    else:
        config = options.apply_robustness(options.dual_config or dual_cluster_config())
        assignment = options.dual_assignment or RegisterAssignment.even_odd_dual()
    validate_run(config, assignment, trace, compiled.machine, benchmark=name)

    processor = make_processor(config, assignment)
    sinks: list[TraceSink] = []
    if record_events:
        sinks.append(MemorySink())
    if ring:
        sinks.append(RingSink(ring))
    if jsonl is not None:
        sinks.append(JsonlSink(jsonl))
    if sinks:
        processor.recorder = TraceRecorder(sinks)
    metrics = None
    if sample_interval is not None:
        metrics = PipelineMetrics(interval=sample_interval).attach(processor)
    if attribute_stalls:
        processor.stall_acct = StallAccounting(
            [c.issue.total for c in config.clusters]
        )

    result = processor.run(trace)
    if metrics is not None:
        metrics.finalize(processor)
        result.stats.metrics = metrics.payload()
    if processor.recorder is not None:
        processor.recorder.close()
    return ObservedRun(
        benchmark=name,
        machine=machine,
        result=result,
        trace_length=options.trace_length,
        recorder=processor.recorder,
        metrics=metrics,
        trace=trace,
    )


__all__ = ["MACHINES", "ObservedRun", "observe_benchmark"]
