"""Metrics registry and per-structure time-series sampling.

Three metric kinds, deliberately Prometheus-shaped so the export layer
is a straight rendering pass:

* :class:`Counter` — monotonically increasing totals (issued uops,
  stall events);
* :class:`Gauge` — instantaneous levels (queue occupancy, transfer
  buffer depth, free physical registers);
* :class:`Histogram` — distributions over fixed bucket bounds (queue
  occupancy distribution, so Table-2 debugging can see *pressure*, not
  just peaks).

:class:`PipelineMetrics` wires a registry to a live
:class:`~repro.uarch.processor.Processor`: attached, it samples every
``interval`` cycles through the processor's ``metrics_hook`` (a single
``None`` check per cycle when detached) and keeps a bounded time series
of every gauge — the data behind transfer-buffer-pressure and
load-imbalance plots.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.uarch.processor import Processor

#: Default sampling interval (cycles) for pipeline time series.
DEFAULT_SAMPLE_INTERVAL = 100

#: Default cap on retained samples; sampling degrades gracefully by
#: doubling its stride once the cap is hit (old samples are thinned).
DEFAULT_MAX_SAMPLES = 4096

Number = Union[int, float]


def _render_key(name: str, labels: dict[str, str]) -> str:
    """Canonical ``name{k="v",...}`` identity (sorted label keys)."""
    if not labels:
        return name
    rendered = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{rendered}}}"


@dataclass
class Counter:
    """Monotonically increasing total."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    @property
    def key(self) -> str:
        return _render_key(self.name, self.labels)


@dataclass
class Gauge:
    """Instantaneous level."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    @property
    def key(self) -> str:
        return _render_key(self.name, self.labels)


@dataclass
class Histogram:
    """Fixed-bound bucket histogram (cumulative counts at export time)."""

    name: str
    bounds: tuple[Number, ...]
    labels: dict[str, str] = field(default_factory=dict)
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        self.bounds = tuple(sorted(self.bounds))
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: Number) -> None:
        # bisect_left keeps bounds inclusive (Prometheus ``le`` buckets):
        # a value equal to a bound lands in that bound's bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def key(self) -> str:
        return _render_key(self.name, self.labels)

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
        }


Metric = Union[Counter, Gauge, Histogram]

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by name + labels.

    Re-registering the same (name, labels) returns the existing metric;
    registering the same name as a different kind is an error — one
    name, one type, exactly the Prometheus exposition rule.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}

    def _register(self, metric: Metric, help: str) -> Metric:
        kind = _TYPE_NAMES[type(metric)]
        existing_kind = self._types.get(metric.name)
        if existing_kind is not None and existing_kind != kind:
            raise ValueError(
                f"metric {metric.name!r} already registered as "
                f"{existing_kind}, not {kind}"
            )
        found = self._metrics.get(metric.key)
        if found is not None:
            return found
        self._metrics[metric.key] = metric
        self._types[metric.name] = kind
        if help:
            self._help[metric.name] = help
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._register(Counter(name, labels), help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._register(Gauge(name, labels), help)  # type: ignore[return-value]

    def histogram(
        self, name: str, bounds: Sequence[Number], help: str = "", **labels: str
    ) -> Histogram:
        return self._register(Histogram(name, tuple(bounds), labels), help)  # type: ignore[return-value]

    # -------------------------------------------------------------- reading
    def collect(self) -> list[Metric]:
        return list(self._metrics.values())

    def type_of(self, name: str) -> Optional[str]:
        return self._types.get(name)

    def help_of(self, name: str) -> str:
        return self._help.get(name, "")

    def snapshot(self) -> dict[str, Union[Number, dict]]:
        """Flat ``{key: value}`` of every metric (histograms as dicts)."""
        out: dict[str, Union[Number, dict]] = {}
        for key, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[key] = metric.as_dict()
            else:
                out[key] = metric.value
        return out

    def gauges_snapshot(self) -> dict[str, Number]:
        """Just the gauges — the per-sample time-series row."""
        return {
            key: metric.value
            for key, metric in self._metrics.items()
            if isinstance(metric, Gauge)
        }


class PipelineMetrics:
    """A registry wired to a processor's per-structure state.

    Gauges per cluster: dispatch-queue occupancy, ready count, operand
    and result transfer-buffer depth, free int/fp physical registers.
    Machine gauges: ROB and fetch-buffer occupancy.  Histograms record
    the queue- and buffer-occupancy distributions across samples.
    Counters are filled once at :meth:`finalize` from the run's
    statistics, so exports carry levels *and* totals.
    """

    def __init__(
        self,
        interval: int = DEFAULT_SAMPLE_INTERVAL,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be >= 1, got {interval}")
        self.interval = interval
        self.max_samples = max_samples
        self.registry = MetricsRegistry()
        #: ``(cycle, {gauge key: value})`` rows, oldest first.
        self.samples: list[tuple[int, dict[str, Number]]] = []
        self.samples_dropped = 0
        self._next_sample = 0
        self._built = False

    # ------------------------------------------------------------- wiring
    def attach(self, processor: "Processor") -> "PipelineMetrics":
        """Install this sampler as the processor's metrics hook."""
        self._build(processor)
        processor.metrics_hook = self.on_cycle
        return self

    def _build(self, processor: "Processor") -> None:
        if self._built:
            return
        self._built = True
        reg = self.registry
        queue_cap = max(
            (c.config.dispatch_queue_entries for c in processor.clusters), default=8
        )
        bounds = tuple(
            sorted({queue_cap // 8, queue_cap // 4, queue_cap // 2,
                    3 * queue_cap // 4, queue_cap} - {0})
        )
        for cluster in processor.clusters:
            label = str(cluster.index)
            reg.gauge("repro_queue_occupancy",
                      "dispatch-queue entries in use", cluster=label)
            reg.gauge("repro_ready_uops", "uops ready to issue", cluster=label)
            reg.gauge("repro_operand_buffer_depth",
                      "operand transfer-buffer entries in use", cluster=label)
            reg.gauge("repro_result_buffer_depth",
                      "result transfer-buffer entries in use", cluster=label)
            reg.gauge("repro_int_regs_free",
                      "free integer physical registers", cluster=label)
            reg.gauge("repro_fp_regs_free",
                      "free FP physical registers", cluster=label)
            reg.histogram("repro_queue_occupancy_dist", bounds,
                          "queue occupancy distribution across samples",
                          cluster=label)
        reg.gauge("repro_rob_occupancy", "in-flight dynamic instructions")
        reg.gauge("repro_fetch_buffer_depth", "fetched, undispatched instructions")

    # ------------------------------------------------------------ sampling
    def on_cycle(self, processor: "Processor", cycle: int) -> None:
        """The processor's per-cycle hook (fast-forward safe)."""
        if cycle < self._next_sample:
            return
        self.sample(processor, cycle)
        self._next_sample = cycle + self.interval

    def sample(self, processor: "Processor", cycle: int) -> None:
        from repro.isa.registers import RegisterClass

        reg = self.registry
        for cluster in processor.clusters:
            label = str(cluster.index)
            occupancy = cluster.config.dispatch_queue_entries - cluster.queue_free
            reg.gauge("repro_queue_occupancy", cluster=label).set(occupancy)
            reg.gauge("repro_ready_uops", cluster=label).set(len(cluster.ready))
            reg.gauge("repro_operand_buffer_depth", cluster=label).set(
                cluster.operand_buffer.occupancy
            )
            reg.gauge("repro_result_buffer_depth", cluster=label).set(
                cluster.result_buffer.occupancy
            )
            files = cluster.rename.files
            reg.gauge("repro_int_regs_free", cluster=label).set(
                files[RegisterClass.INT].free_count
            )
            reg.gauge("repro_fp_regs_free", cluster=label).set(
                files[RegisterClass.FP].free_count
            )
            reg.histogram("repro_queue_occupancy_dist", (), cluster=label).observe(
                occupancy
            )
        reg.gauge("repro_rob_occupancy").set(processor.rob_occupancy)
        reg.gauge("repro_fetch_buffer_depth").set(processor.fetch_buffer_occupancy)
        self.samples.append((cycle, reg.gauges_snapshot()))
        if len(self.samples) > self.max_samples:
            # Thin to every other sample and double the stride: bounded
            # memory, still full-run coverage.
            self.samples_dropped += len(self.samples) - (len(self.samples) + 1) // 2
            self.samples = self.samples[::2]
            self.interval *= 2

    # ------------------------------------------------------------ finalize
    def finalize(self, processor: "Processor") -> None:
        """Mirror the run's counters into the registry (call after run)."""
        reg = self.registry
        stats = processor.stats
        reg.counter("repro_cycles_total", "simulated cycles").inc(processor.cycle)
        reg.counter("repro_instructions_total", "retired instructions").inc(
            stats.instructions
        )
        reg.counter("repro_replay_exceptions_total",
                    "instruction-replay exceptions").inc(stats.replay_exceptions)
        for cluster in processor.clusters:
            label = str(cluster.index)
            cstats = cluster.stats
            for class_name, count in sorted(cstats.issued_by_class.items()):
                reg.counter(
                    "repro_issued_uops_total", "uops issued",
                    cluster=label, iclass=class_name,
                ).inc(count)
            reg.counter("repro_queue_full_stalls_total",
                        "dispatch stalls on a full queue", cluster=label).inc(
                cstats.queue_full_stalls
            )
            reg.counter("repro_regfile_full_stalls_total",
                        "dispatch stalls on an empty free list", cluster=label).inc(
                cstats.regfile_full_stalls
            )
            reg.counter("repro_transfer_full_stall_cycles_total",
                        "uop-cycles blocked on a full transfer buffer",
                        cluster=label).inc(
                cluster.operand_buffer.stats.full_stall_cycles
                + cluster.result_buffer.stats.full_stall_cycles
            )

    # -------------------------------------------------------------- export
    def payload(self) -> dict:
        """JSON-native fragment for the export layer."""
        histograms = {
            m.key: m.as_dict()
            for m in self.registry.collect()
            if isinstance(m, Histogram)
        }
        final = {
            m.key: m.value
            for m in self.registry.collect()
            if not isinstance(m, Histogram)
        }
        return {
            "interval": self.interval,
            "final": final,
            "histograms": histograms,
            "series": [
                {"cycle": cycle, "values": values} for cycle, values in self.samples
            ],
            "samples_dropped": self.samples_dropped,
        }


def executor_metrics() -> MetricsRegistry:
    """A registry pre-registered with the sweep-executor counters.

    The supervised executor (:mod:`repro.perf.executor`) increments
    these as it dispatches, loses, and re-dispatches tasks; registering
    them up front means a healthy run exports explicit zeros for every
    failure counter rather than omitting them.
    """
    reg = MetricsRegistry()
    reg.counter("executor_dispatches",
                "tasks handed to a worker (re-dispatches included)")
    reg.counter("executor_redispatches",
                "tasks re-dispatched after a lost worker or expired deadline")
    reg.counter("executor_tasks_completed", "task results delivered to the sweep")
    reg.counter("executor_worker_deaths",
                "worker processes that died or were killed by the supervisor")
    reg.counter("executor_deadline_expirations",
                "per-task deadlines that expired (wedged worker or lost result)")
    reg.counter("executor_degradations",
                "circuit-breaker trips that degraded the sweep to serial")
    return reg


def dist_metrics() -> MetricsRegistry:
    """A registry pre-registered with the distributed-sweep counters.

    The coordinator (:mod:`repro.dist.coordinator`) increments these as
    hosts register, die, and have work re-dispatched.  Totals are
    registered up front (explicit zeros on healthy runs); the
    coordinator additionally creates per-host labeled series —
    ``dist_host_tasks_completed{host="..."}`` and
    ``dist_host_losses{host="..."}`` — as hosts register and fail, which
    the Prometheus exporter renders as ordinary labeled samples.
    """
    reg = MetricsRegistry()
    reg.counter("dist_hosts_registered",
                "worker hosts that completed registration")
    reg.counter("dist_host_losses",
                "registered hosts lost (died, partitioned, or wedged)")
    reg.counter("dist_dispatches",
                "tasks handed to a host (re-dispatches included)")
    reg.counter("dist_redispatches",
                "tasks re-dispatched after a lost host or expired deadline")
    reg.counter("dist_tasks_completed",
                "task results delivered to the sweep")
    reg.counter("dist_duplicate_results",
                "late/duplicate results dropped by content-fingerprint dedup")
    reg.counter("dist_lease_expirations",
                "idle host leases that expired without a heartbeat")
    reg.counter("dist_task_deadline_expirations",
                "per-task deadlines that expired (wedged host or lost result)")
    reg.counter("dist_degradations",
                "cascade steps away from distributed execution")
    return reg


__all__ = [
    "DEFAULT_MAX_SAMPLES",
    "DEFAULT_SAMPLE_INTERVAL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PipelineMetrics",
    "dist_metrics",
    "executor_metrics",
]
