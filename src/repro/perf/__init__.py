"""Performance layer: parallel sweep engine + compile/trace artifact cache.

The Section 4 methodology is embarrassingly parallel — benchmarks are
independent, and the three simulations per benchmark (single-cluster
baseline, dual-cluster "none", dual-cluster "local") share nothing but
deterministically reproducible inputs.  This package exploits both axes:

* :mod:`repro.perf.fingerprint` — deterministic content hashes usable as
  cache keys across processes and runs (``hash()`` is randomized per
  process and ``repr`` of arbitrary objects embeds addresses; neither
  can key a shared cache);
* :mod:`repro.perf.cache` — the content-keyed artifact cache for
  compilation results and generated traces, with in-memory and on-disk
  tiers plus hit/miss counters;
* :mod:`repro.perf.parallel` — the process-pool sweep engine behind
  ``--jobs N`` (Table 2, ablations, Figure 6 sweeps, reassignment);
* :mod:`repro.perf.executor` — the ``SweepExecutor`` interface under
  the sweep engine: the trusting process pool plus the supervised pool
  (per-task deadlines, re-dispatch of lost tasks, circuit breaker);
* :mod:`repro.perf.bench` — the ``repro bench`` harness that times
  serial vs parallel vs cached sweeps and records ``BENCH_table2.json``.

Submodules are imported lazily: :mod:`repro.perf.cache` is imported by
the experiment harness, while :mod:`repro.perf.parallel` imports the
harness — eager re-exports here would create an import cycle.
"""

from __future__ import annotations

from typing import Any

_EXPORTS = {
    "fingerprint": "repro.perf.fingerprint",
    "ArtifactCache": "repro.perf.cache",
    "CacheStats": "repro.perf.cache",
    "default_cache_dir": "repro.perf.cache",
    "compile_key": "repro.perf.cache",
    "trace_key": "repro.perf.cache",
    "parallel_map": "repro.perf.parallel",
    "resolve_jobs": "repro.perf.parallel",
    "evaluate_many": "repro.perf.parallel",
    "run_table2_parallel": "repro.perf.parallel",
    "EXECUTOR_KINDS": "repro.perf.executor",
    "ExecutorDegradation": "repro.perf.executor",
    "PoolSweepExecutor": "repro.perf.executor",
    "SupervisedPoolExecutor": "repro.perf.executor",
    "SweepExecutor": "repro.perf.executor",
    "SweepTask": "repro.perf.executor",
    "TaskResult": "repro.perf.executor",
    "default_task_timeout": "repro.perf.executor",
    "make_sweep_executor": "repro.perf.executor",
    "run_bench": "repro.perf.bench",
    "BenchReport": "repro.perf.bench",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
