"""The ``repro bench`` harness: time Table 2 serial vs parallel vs cached.

Four sweeps over the same benchmark set, in order:

1. **serial** — ``jobs=1``, no shared cache (the PR 1 baseline path);
2. **parallel** — ``jobs=N`` through the process-pool sweep engine;
3. **cache-cold** — serial against an empty disk-backed artifact cache
   (pays the pickling/writing overhead);
4. **cache-warm** — serial against the now-populated cache (measures what
   a re-run of an unchanged experiment costs).

Then an **engine comparison**: every Table 2 part simulated once per
kernel (``reference`` vs ``batched``) against a shared in-memory
artifact cache, so compile + tracegen are paid outside the timed region
and the timings isolate *simulation* — the engine's actual surface.
(Sweep wall-clock is dominated by compilation for the larger benchmarks,
which would dilute the kernel speedup to noise.)  The report records the
per-engine seconds, the speedup, and the per-part fingerprints; CI's
perf-smoke job fails when the speedup drops below the committed
:data:`ENGINE_SPEEDUP_FLOOR` or when either kernel's stats diverge.

Every sweep must produce bit-identical rows — the harness checks this
and records the verdict in the report; a divergence raises
:class:`~repro.errors.SimulationError` *after* the report is written, so
the failing numbers are always available for inspection.

The report is written as ``BENCH_table2.json`` (schema below), the
artifact CI's perf-smoke job uploads.
"""

from __future__ import annotations

import os
import platform
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import Table2Result, run_table2
from repro.perf.cache import ArtifactCache
from repro.perf.fingerprint import fingerprint
from repro.perf.parallel import resolve_jobs
from repro.robustness.atomicio import append_jsonl_line, atomic_write_json
from repro.workloads.spec92 import DEFAULT_TRACE_LENGTH, SPEC92

#: JSON schema version of BENCH_table2.json.
SCHEMA_VERSION = 2

#: JSON schema version of BENCH_history.jsonl records.
HISTORY_SCHEMA = 1

#: Trend file appended to (next to the report) on every bench run.
HISTORY_FILE = "BENCH_history.jsonl"

#: Trace length used by ``repro bench --quick`` (CI's perf-smoke job).
QUICK_TRACE_LENGTH = 2_000

#: Committed floor for the batched kernel's simulation-only speedup over
#: the reference kernel.  Measured 2.7-3.2x on the full Table 2 suite at
#: 40k-instruction traces, but CI's ``--quick`` 2k traces amortise the
#: per-run setup (dispatch-recipe/column builds) over far fewer cycles
#: and measure ~2.1x; the floor sits well under that so machine/timing
#: noise does not flake the perf-smoke gate, while still catching a real
#: regression of the fused hot loop (see DESIGN.md §14).
ENGINE_SPEEDUP_FLOOR = 1.5


def history_record(report: "BenchReport") -> dict:
    """One schema-versioned ``BENCH_history.jsonl`` record of a run.

    A compact, stable projection of the report — enough for trend
    plotting (timings, engine speedup, identity verdict, environment)
    without the full per-row dump.
    """
    return {
        "history_schema": HISTORY_SCHEMA,
        "report_schema": SCHEMA_VERSION,
        "timestamp": report.timestamp,
        "python": report.python,
        "cpu_count": report.cpu_count,
        "benchmarks": list(report.benchmarks),
        "trace_length": report.trace_length,
        "jobs": report.jobs,
        "timings_s": dict(report.timings_s),
        "engine_timings_s": dict(report.engine_timings_s),
        "engine_speedup": report.engine_speedup,
        "identical": report.identical,
        "divergences": len(report.divergences),
    }


def append_bench_history(path, report: "BenchReport") -> dict:
    """Durably append one run's record to the history file; returns it."""
    record = history_record(report)
    append_jsonl_line(path, record)
    return record


@dataclass
class BenchReport:
    """Everything ``repro bench`` measured, JSON-serialisable."""

    benchmarks: list[str]
    trace_length: int
    jobs: int
    timings_s: dict[str, float]
    rows: list[dict]
    #: Per-sweep artifact-cache counters + hit rate (sweeps that ran
    #: with a cache attached; serial/parallel run cache-less by design).
    cache_stats: dict[str, dict]
    identical: bool
    divergences: list[str] = field(default_factory=list)
    #: Simulation-only seconds per kernel ("reference" / "batched") and
    #: the resulting speedup, from the engine comparison stage.
    engine_timings_s: dict[str, float] = field(default_factory=dict)
    engine_speedup: float = 0.0
    engine_floor: float = ENGINE_SPEEDUP_FLOOR
    timestamp: str = ""
    python: str = ""
    cpu_count: int = 0

    def as_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "timestamp": self.timestamp,
            "python": self.python,
            "cpu_count": self.cpu_count,
            "benchmarks": self.benchmarks,
            "trace_length": self.trace_length,
            "jobs": self.jobs,
            "timings_s": self.timings_s,
            "engine": {
                "timings_s": self.engine_timings_s,
                "speedup": self.engine_speedup,
                "floor": self.engine_floor,
            },
            "rows": self.rows,
            "cache_stats": self.cache_stats,
            "identical": self.identical,
            "divergences": self.divergences,
        }

    def format(self) -> str:
        lines = [
            f"bench: {len(self.benchmarks)} benchmarks @ trace_length="
            f"{self.trace_length}, jobs={self.jobs}",
            f"{'sweep':<12} {'seconds':>9}",
        ]
        serial = self.timings_s.get("serial")
        for name, seconds in self.timings_s.items():
            speedup = ""
            if serial and name != "serial":
                speedup = f"  ({serial / seconds:.2f}x vs serial)"
            lines.append(f"{name:<12} {seconds:>9.3f}{speedup}")
        ref = self.engine_timings_s.get("reference")
        bat = self.engine_timings_s.get("batched")
        if ref is not None and bat is not None:
            lines.append(
                f"engine (simulation only): reference {ref:.3f}s, "
                f"batched {bat:.3f}s -> {self.engine_speedup:.2f}x "
                f"(floor {self.engine_floor:.2f}x)"
            )
        lines.append(f"rows bit-identical across sweeps: {self.identical}")
        for divergence in self.divergences:
            lines.append(f"  divergence: {divergence}")
        return "\n".join(lines)


def _rows_payload(result: Table2Result) -> list[dict]:
    rows = []
    for row in result.rows:
        payload = {
            "benchmark": row.benchmark,
            "pct_none": row.pct_none,
            "pct_local": row.pct_local,
        }
        ev = row.evaluation
        if ev is not None:
            payload["cycles"] = {
                "single": ev.single.cycles,
                "dual_none": ev.dual_none.cycles,
                "dual_local": ev.dual_local.cycles,
            }
            # Fingerprint of every stats counter (not just the cycle
            # counts above), so the bit-identity check catches a sweep
            # path that drops or garbles any stat — e.g. a worker
            # failing to ship buffer stats home.
            payload["stats_fingerprint"] = {
                "single": fingerprint(ev.single.stats.as_dict()),
                "dual_none": fingerprint(ev.dual_none.stats.as_dict()),
                "dual_local": fingerprint(ev.dual_local.stats.as_dict()),
            }
        rows.append(payload)
    for failure in result.failures:
        rows.append(
            {
                "benchmark": failure.benchmark,
                "failed": True,
                "error_type": failure.error_type,
                "message": failure.message,
            }
        )
    return rows


def _compare(name: str, baseline: list[dict], candidate: list[dict]) -> list[str]:
    """Row-for-row comparison; returns human-readable divergences."""
    if baseline == candidate:
        return []
    divergences = []
    by_bench = {r["benchmark"]: r for r in candidate}
    for row in baseline:
        other = by_bench.get(row["benchmark"])
        if other is None:
            divergences.append(f"{name}: row {row['benchmark']!r} missing")
        elif other != row:
            divergences.append(
                f"{name}: row {row['benchmark']!r} differs "
                f"(serial {row} vs {other})"
            )
    for row in candidate:
        if not any(r["benchmark"] == row["benchmark"] for r in baseline):
            divergences.append(f"{name}: unexpected row {row['benchmark']!r}")
    return divergences or [f"{name}: rows differ"]


def _time_engines(
    names: Sequence[str], trace_length: int
) -> tuple[dict[str, float], dict[str, dict[str, str]]]:
    """Time each simulation kernel over every Table 2 part.

    One in-memory :class:`ArtifactCache` is prewarmed first, so the
    timed loops hit the cache for compile + tracegen and measure
    simulation alone.  Returns ``(seconds per engine, fingerprints)``
    where fingerprints maps ``"bench/part"`` -> per-engine stats
    fingerprint, for the bit-identity check against the serial sweep.
    """
    from repro.experiments.harness import PARTS, evaluate_workload_part

    cache = ArtifactCache()
    workloads = {name: SPEC92[name]() for name in names}
    warm = EvaluationOptions(
        trace_length=trace_length, cache=cache, engine="batched"
    )
    for name in names:
        for part in PARTS:
            evaluate_workload_part(workloads[name], part, warm, cache)

    timings: dict[str, float] = {}
    fingerprints: dict[str, dict[str, str]] = {}
    for engine in ("reference", "batched"):
        options = EvaluationOptions(
            trace_length=trace_length, cache=cache, engine=engine
        )
        outcomes = []
        start = time.perf_counter()
        for name in names:
            for part in PARTS:
                outcomes.append(
                    (name, part, evaluate_workload_part(
                        workloads[name], part, options, cache
                    ))
                )
        timings[engine] = time.perf_counter() - start
        for name, part, outcome in outcomes:
            fingerprints.setdefault(f"{name}/{part}", {})[engine] = fingerprint(
                outcome.sim.stats.as_dict()
            )
    return timings, fingerprints


def run_bench(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    quick: bool = False,
    jobs: int = 0,
    output: Optional[os.PathLike] = "BENCH_table2.json",
    cache_dir: Optional[os.PathLike] = None,
    min_engine_speedup: Optional[float] = None,
) -> BenchReport:
    """Run the four timed sweeps and write the report.

    Args:
        benchmarks: benchmark subset (default: all of SPEC92).
        trace_length: per-run trace length; default is the full
            ``DEFAULT_TRACE_LENGTH``, or :data:`QUICK_TRACE_LENGTH` with
            ``quick``.
        quick: CI-friendly preset (short traces).
        jobs: worker count for the parallel sweep; ``0`` resolves to the
            CPU count, floored at 2 so the pool path is always exercised.
        output: report path (``None`` skips writing).
        cache_dir: directory for the disk cache tier; default is a fresh
            temporary directory (hermetic — timings never depend on a
            previous bench run's leftovers).
        min_engine_speedup: perf-regression floor for the batched
            kernel's simulation-only speedup; ``None`` uses the
            committed :data:`ENGINE_SPEEDUP_FLOOR`, ``0`` disables the
            gate (the comparison still runs and is still recorded).

    Raises:
        SimulationError: if any sweep's rows diverge from the serial
            sweep's, the two kernels disagree on any stats fingerprint,
            or the batched kernel's speedup falls below the floor (all
            raised after the report is written).
    """
    names = list(benchmarks) if benchmarks is not None else sorted(SPEC92)
    if trace_length is None:
        trace_length = QUICK_TRACE_LENGTH if quick else DEFAULT_TRACE_LENGTH
    pool_jobs = max(2, resolve_jobs(jobs))

    timings: dict[str, float] = {}
    cache_stats: dict[str, dict] = {}

    def timed(label: str, options: EvaluationOptions) -> Table2Result:
        start = time.perf_counter()
        result = run_table2(names, options)
        timings[label] = time.perf_counter() - start
        if options.cache is not None:
            cache_stats[label] = options.cache.stats.as_dict()
        return result

    serial = timed("serial", EvaluationOptions(trace_length=trace_length))
    parallel = timed(
        "parallel", EvaluationOptions(trace_length=trace_length, jobs=pool_jobs)
    )

    own_tmp = None
    if cache_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = own_tmp.name
    try:
        cold = timed(
            "cache-cold",
            EvaluationOptions(
                trace_length=trace_length, cache=ArtifactCache(cache_dir)
            ),
        )
        warm = timed(
            "cache-warm",
            EvaluationOptions(
                trace_length=trace_length, cache=ArtifactCache(cache_dir)
            ),
        )
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    engine_timings, engine_fps = _time_engines(names, trace_length)
    engine_speedup = engine_timings["reference"] / engine_timings["batched"]

    baseline = _rows_payload(serial)
    divergences = []
    for label, result in (
        ("parallel", parallel),
        ("cache-cold", cold),
        ("cache-warm", warm),
    ):
        divergences.extend(_compare(label, baseline, _rows_payload(result)))

    # Kernel bit-identity: reference vs batched, and both against the
    # serial sweep's fingerprints (same trace length/seed/options).
    serial_fps = {
        f"{row['benchmark']}/{part}": fp
        for row in baseline
        for part, fp in row.get("stats_fingerprint", {}).items()
    }
    for key, by_engine in engine_fps.items():
        if by_engine["reference"] != by_engine["batched"]:
            divergences.append(
                f"engine: {key} fingerprints differ "
                f"(reference {by_engine['reference']} "
                f"vs batched {by_engine['batched']})"
            )
        expected = serial_fps.get(key)
        if expected is not None and by_engine["reference"] != expected:
            divergences.append(
                f"engine: {key} reference fingerprint differs from the "
                f"serial sweep ({by_engine['reference']} vs {expected})"
            )

    floor = ENGINE_SPEEDUP_FLOOR if min_engine_speedup is None else min_engine_speedup

    report = BenchReport(
        benchmarks=names,
        trace_length=trace_length,
        jobs=pool_jobs,
        timings_s={k: round(v, 6) for k, v in timings.items()},
        rows=baseline,
        cache_stats=cache_stats,
        identical=not divergences,
        divergences=divergences,
        engine_timings_s={k: round(v, 6) for k, v in engine_timings.items()},
        engine_speedup=round(engine_speedup, 4),
        engine_floor=floor,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        python=platform.python_version(),
        cpu_count=os.cpu_count() or 1,
    )

    if output is not None:
        # Atomic + fsync'd: a bench killed mid-write must never leave a
        # torn BENCH_table2.json for CI trend tooling to choke on.
        atomic_write_json(Path(output), report.as_dict(), sort_keys=False)
        # Appended *before* the gates below can raise: a failing run is
        # exactly the data point the trend history is for.
        append_bench_history(Path(output).parent / HISTORY_FILE, report)

    if divergences:
        raise SimulationError(
            "bench sweeps are not bit-identical to the serial sweep "
            "(report written; see its 'divergences' field)",
            divergences=divergences,
            output=str(output) if output is not None else None,
        )
    if floor and engine_speedup < floor:
        raise SimulationError(
            f"batched engine speedup {engine_speedup:.2f}x is below the "
            f"floor {floor:.2f}x (report written; see its 'engine' field)",
            engine_speedup=engine_speedup,
            floor=floor,
            output=str(output) if output is not None else None,
        )
    return report
