"""The ``repro bench`` harness: time Table 2 serial vs parallel vs cached.

Four sweeps over the same benchmark set, in order:

1. **serial** — ``jobs=1``, no shared cache (the PR 1 baseline path);
2. **parallel** — ``jobs=N`` through the process-pool sweep engine;
3. **cache-cold** — serial against an empty disk-backed artifact cache
   (pays the pickling/writing overhead);
4. **cache-warm** — serial against the now-populated cache (measures what
   a re-run of an unchanged experiment costs).

Every sweep must produce bit-identical rows — the harness checks this
and records the verdict in the report; a divergence raises
:class:`~repro.errors.SimulationError` *after* the report is written, so
the failing numbers are always available for inspection.

The report is written as ``BENCH_table2.json`` (schema below), the
artifact CI's perf-smoke job uploads.
"""

from __future__ import annotations

import os
import platform
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.errors import SimulationError
from repro.experiments.harness import EvaluationOptions
from repro.experiments.table2 import Table2Result, run_table2
from repro.perf.cache import ArtifactCache
from repro.perf.fingerprint import fingerprint
from repro.perf.parallel import resolve_jobs
from repro.robustness.atomicio import atomic_write_json
from repro.workloads.spec92 import DEFAULT_TRACE_LENGTH, SPEC92

#: JSON schema version of BENCH_table2.json.
SCHEMA_VERSION = 1

#: Trace length used by ``repro bench --quick`` (CI's perf-smoke job).
QUICK_TRACE_LENGTH = 2_000


@dataclass
class BenchReport:
    """Everything ``repro bench`` measured, JSON-serialisable."""

    benchmarks: list[str]
    trace_length: int
    jobs: int
    timings_s: dict[str, float]
    rows: list[dict]
    #: Per-sweep artifact-cache counters + hit rate (sweeps that ran
    #: with a cache attached; serial/parallel run cache-less by design).
    cache_stats: dict[str, dict]
    identical: bool
    divergences: list[str] = field(default_factory=list)
    timestamp: str = ""
    python: str = ""
    cpu_count: int = 0

    def as_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "timestamp": self.timestamp,
            "python": self.python,
            "cpu_count": self.cpu_count,
            "benchmarks": self.benchmarks,
            "trace_length": self.trace_length,
            "jobs": self.jobs,
            "timings_s": self.timings_s,
            "rows": self.rows,
            "cache_stats": self.cache_stats,
            "identical": self.identical,
            "divergences": self.divergences,
        }

    def format(self) -> str:
        lines = [
            f"bench: {len(self.benchmarks)} benchmarks @ trace_length="
            f"{self.trace_length}, jobs={self.jobs}",
            f"{'sweep':<12} {'seconds':>9}",
        ]
        serial = self.timings_s.get("serial")
        for name, seconds in self.timings_s.items():
            speedup = ""
            if serial and name != "serial":
                speedup = f"  ({serial / seconds:.2f}x vs serial)"
            lines.append(f"{name:<12} {seconds:>9.3f}{speedup}")
        lines.append(f"rows bit-identical across sweeps: {self.identical}")
        for divergence in self.divergences:
            lines.append(f"  divergence: {divergence}")
        return "\n".join(lines)


def _rows_payload(result: Table2Result) -> list[dict]:
    rows = []
    for row in result.rows:
        payload = {
            "benchmark": row.benchmark,
            "pct_none": row.pct_none,
            "pct_local": row.pct_local,
        }
        ev = row.evaluation
        if ev is not None:
            payload["cycles"] = {
                "single": ev.single.cycles,
                "dual_none": ev.dual_none.cycles,
                "dual_local": ev.dual_local.cycles,
            }
            # Fingerprint of every stats counter (not just the cycle
            # counts above), so the bit-identity check catches a sweep
            # path that drops or garbles any stat — e.g. a worker
            # failing to ship buffer stats home.
            payload["stats_fingerprint"] = {
                "single": fingerprint(ev.single.stats.as_dict()),
                "dual_none": fingerprint(ev.dual_none.stats.as_dict()),
                "dual_local": fingerprint(ev.dual_local.stats.as_dict()),
            }
        rows.append(payload)
    for failure in result.failures:
        rows.append(
            {
                "benchmark": failure.benchmark,
                "failed": True,
                "error_type": failure.error_type,
                "message": failure.message,
            }
        )
    return rows


def _compare(name: str, baseline: list[dict], candidate: list[dict]) -> list[str]:
    """Row-for-row comparison; returns human-readable divergences."""
    if baseline == candidate:
        return []
    divergences = []
    by_bench = {r["benchmark"]: r for r in candidate}
    for row in baseline:
        other = by_bench.get(row["benchmark"])
        if other is None:
            divergences.append(f"{name}: row {row['benchmark']!r} missing")
        elif other != row:
            divergences.append(
                f"{name}: row {row['benchmark']!r} differs "
                f"(serial {row} vs {other})"
            )
    for row in candidate:
        if not any(r["benchmark"] == row["benchmark"] for r in baseline):
            divergences.append(f"{name}: unexpected row {row['benchmark']!r}")
    return divergences or [f"{name}: rows differ"]


def run_bench(
    benchmarks: Optional[Sequence[str]] = None,
    trace_length: Optional[int] = None,
    quick: bool = False,
    jobs: int = 0,
    output: Optional[os.PathLike] = "BENCH_table2.json",
    cache_dir: Optional[os.PathLike] = None,
) -> BenchReport:
    """Run the four timed sweeps and write the report.

    Args:
        benchmarks: benchmark subset (default: all of SPEC92).
        trace_length: per-run trace length; default is the full
            ``DEFAULT_TRACE_LENGTH``, or :data:`QUICK_TRACE_LENGTH` with
            ``quick``.
        quick: CI-friendly preset (short traces).
        jobs: worker count for the parallel sweep; ``0`` resolves to the
            CPU count, floored at 2 so the pool path is always exercised.
        output: report path (``None`` skips writing).
        cache_dir: directory for the disk cache tier; default is a fresh
            temporary directory (hermetic — timings never depend on a
            previous bench run's leftovers).

    Raises:
        SimulationError: if any sweep's rows diverge from the serial
            sweep's (raised after the report is written).
    """
    names = list(benchmarks) if benchmarks is not None else sorted(SPEC92)
    if trace_length is None:
        trace_length = QUICK_TRACE_LENGTH if quick else DEFAULT_TRACE_LENGTH
    pool_jobs = max(2, resolve_jobs(jobs))

    timings: dict[str, float] = {}
    cache_stats: dict[str, dict] = {}

    def timed(label: str, options: EvaluationOptions) -> Table2Result:
        start = time.perf_counter()
        result = run_table2(names, options)
        timings[label] = time.perf_counter() - start
        if options.cache is not None:
            cache_stats[label] = options.cache.stats.as_dict()
        return result

    serial = timed("serial", EvaluationOptions(trace_length=trace_length))
    parallel = timed(
        "parallel", EvaluationOptions(trace_length=trace_length, jobs=pool_jobs)
    )

    own_tmp = None
    if cache_dir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = own_tmp.name
    try:
        cold = timed(
            "cache-cold",
            EvaluationOptions(
                trace_length=trace_length, cache=ArtifactCache(cache_dir)
            ),
        )
        warm = timed(
            "cache-warm",
            EvaluationOptions(
                trace_length=trace_length, cache=ArtifactCache(cache_dir)
            ),
        )
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()

    baseline = _rows_payload(serial)
    divergences = []
    for label, result in (
        ("parallel", parallel),
        ("cache-cold", cold),
        ("cache-warm", warm),
    ):
        divergences.extend(_compare(label, baseline, _rows_payload(result)))

    report = BenchReport(
        benchmarks=names,
        trace_length=trace_length,
        jobs=pool_jobs,
        timings_s={k: round(v, 6) for k, v in timings.items()},
        rows=baseline,
        cache_stats=cache_stats,
        identical=not divergences,
        divergences=divergences,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        python=platform.python_version(),
        cpu_count=os.cpu_count() or 1,
    )

    if output is not None:
        # Atomic + fsync'd: a bench killed mid-write must never leave a
        # torn BENCH_table2.json for CI trend tooling to choke on.
        atomic_write_json(Path(output), report.as_dict(), sort_keys=False)

    if divergences:
        raise SimulationError(
            "bench sweeps are not bit-identical to the serial sweep "
            "(report written; see its 'divergences' field)",
            divergences=divergences,
            output=str(output) if output is not None else None,
        )
    return report
